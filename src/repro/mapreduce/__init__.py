"""In-process MapReduce over the cluster simulator.

Sigmund structures both training and inference as MapReduce jobs for
manageability (sections IV-B, IV-C, V).  This package provides the
substrate: input splits (including the contiguous-by-retailer
organization inference depends on), mapper/reducer interfaces, a shuffle,
and a runtime that *really executes* user code while *simulating* task
scheduling, pre-emptions, retries, cost, and makespan on a
:class:`~repro.cluster.cell.Cell`.
"""

from repro.mapreduce.runtime import (
    DeadLetter,
    FaultPlan,
    JobStats,
    MapReduceJob,
    MapReduceRuntime,
)
from repro.mapreduce.splits import (
    InputSplit,
    contiguous_splits_by_key,
    random_permutation_splits,
    uniform_splits,
)

__all__ = [
    "InputSplit",
    "uniform_splits",
    "random_permutation_splits",
    "contiguous_splits_by_key",
    "MapReduceJob",
    "MapReduceRuntime",
    "JobStats",
    "DeadLetter",
    "FaultPlan",
]
