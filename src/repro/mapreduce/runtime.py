"""The MapReduce runtime: real computation, simulated scheduling.

Design: user mapper/reducer code is executed exactly once per record in
process (so jobs produce real outputs), while scheduling is *simulated*
against the cluster — per-task durations come from a caller-supplied cost
model, tasks run on pre-emptible VMs whose uptimes are sampled from the
pre-emption model, pre-empted attempts are re-queued and re-billed, and
the ledger collects the money.  This separation lets experiments measure
makespan/cost effects (pre-emption rates, split strategies, threading)
without re-running expensive user code per attempt.

Scheduling model: the job holds ``n_workers`` single-task VM slots; each
map task goes to the earliest-free worker (list scheduling), which is how
a MapReduce master assigns splits to a fixed worker pool.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cluster.cost import CostLedger, ResourcePricing
from repro.cluster.machine import Priority, VMRequest
from repro.cluster.preemption import PreemptionModel
from repro.exceptions import MapReduceError
from repro.mapreduce.splits import InputSplit
from repro.rng import SeedLike, make_rng

#: A mapper takes one record and yields (key, value) pairs.
MapperFn = Callable[[object], Iterable[Tuple[object, object]]]
#: A reducer takes (key, values) and yields output records.
ReducerFn = Callable[[object, List[object]], Iterable[object]]
#: Returns simulated seconds of compute for one record.
RecordCostFn = Callable[[object], float]

#: Attempts per task before the whole job fails (MapReduce semantics).
MAX_TASK_ATTEMPTS = 50


def _identity_reducer(key: object, values: List[object]) -> Iterable[object]:
    """Default reducer: pass every value through."""
    del key
    return values


@dataclass
class MapReduceJob:
    """Specification of one job (what Sigmund's config files declare)."""

    name: str
    mapper: MapperFn
    reducer: ReducerFn = _identity_reducer
    n_workers: int = 4
    vm_request: VMRequest = field(
        default_factory=lambda: VMRequest(cpus=4, memory_gb=32, priority=Priority.PREEMPTIBLE)
    )
    #: Simulated seconds of map compute per record (default: 1s each).
    record_cost_fn: RecordCostFn = lambda record: 1.0
    #: Fixed simulated seconds per task attempt (scheduling + data fetch).
    task_startup_seconds: float = 5.0
    #: Simulated seconds per reduce output record (writes are cheap).
    reduce_record_seconds: float = 0.01
    #: Launch a backup copy of straggling tasks (Dean & Ghemawat's
    #: speculative execution) — whichever copy finishes first wins.
    speculative_execution: bool = False
    #: A task whose wall time exceeds this multiple of its ideal duration
    #: (because of pre-emption retries) gets a backup copy.
    speculation_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise MapReduceError("a job needs at least one worker")


@dataclass
class JobStats:
    """Simulated execution statistics of one job run."""

    job_name: str
    makespan_seconds: float = 0.0
    billed_vm_seconds: float = 0.0
    cost: float = 0.0
    map_tasks: int = 0
    map_attempts: int = 0
    preemptions: int = 0
    reduce_seconds: float = 0.0
    speculative_copies: int = 0
    #: Total simulated busy seconds per worker slot (skew diagnostics).
    worker_busy_seconds: List[float] = field(default_factory=list)

    @property
    def load_imbalance(self) -> float:
        """max/mean worker busy time; 1.0 means perfectly balanced."""
        busy = [b for b in self.worker_busy_seconds]
        if not busy or sum(busy) == 0:
            return 1.0
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean > 0 else 1.0


class MapReduceRuntime:
    """Runs jobs: executes user code once, simulates the cluster around it."""

    def __init__(
        self,
        pricing: ResourcePricing = ResourcePricing(),
        preemption_model: PreemptionModel = PreemptionModel(),
        ledger: Optional[CostLedger] = None,
        seed: SeedLike = 0,
    ):
        self.pricing = pricing
        self.preemption_model = preemption_model
        self.ledger = ledger or CostLedger(pricing)
        self._rng = make_rng(seed)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self, job: MapReduceJob, splits: Sequence[InputSplit]
    ) -> Tuple[List[object], JobStats]:
        """Execute ``job`` over ``splits``; returns (outputs, stats)."""
        stats = JobStats(job_name=job.name, map_tasks=len(splits))
        intermediate = self._map_phase(job, splits, stats)
        outputs = self._reduce_phase(job, intermediate, stats)
        stats.cost = self.ledger.charge(
            job.name, job.vm_request, stats.billed_vm_seconds
        )
        return outputs, stats

    # ------------------------------------------------------------------
    # Map phase
    # ------------------------------------------------------------------
    def _map_phase(
        self, job: MapReduceJob, splits: Sequence[InputSplit], stats: JobStats
    ) -> Dict[object, List[object]]:
        # Real execution: each record through the mapper exactly once.
        intermediate: Dict[object, List[object]] = defaultdict(list)
        durations: List[float] = []
        for split in splits:
            seconds = job.task_startup_seconds
            for record in split.records:
                seconds += float(job.record_cost_fn(record))
                for key, value in job.mapper(record):
                    intermediate[key].append(value)
            durations.append(seconds)

        # Simulated scheduling: list-schedule task durations over workers,
        # sampling VM uptime per attempt.
        workers = [0.0] * job.n_workers
        for duration in durations:
            worker = min(range(job.n_workers), key=lambda w: workers[w])
            elapsed, billed, attempts, preemptions = self._simulate_attempts(
                duration, job.vm_request.priority
            )
            if (
                job.speculative_execution
                and elapsed > job.speculation_factor * duration
            ):
                # Straggler: a backup copy races the original; the winner
                # defines wall time, both copies are billed until then.
                backup_elapsed, _, backup_attempts, backup_preempt = (
                    self._simulate_attempts(duration, job.vm_request.priority)
                )
                winner = min(elapsed, backup_elapsed)
                billed = min(billed, winner) + winner  # loser killed at win
                elapsed = winner
                attempts += backup_attempts
                preemptions += backup_preempt
                stats.speculative_copies += 1
            workers[worker] += elapsed
            stats.billed_vm_seconds += billed
            stats.map_attempts += attempts
            stats.preemptions += preemptions
        stats.worker_busy_seconds = workers
        stats.makespan_seconds = max(workers) if workers else 0.0
        return intermediate

    def _simulate_attempts(
        self, duration: float, priority: Priority
    ) -> Tuple[float, float, int, int]:
        """(wall, billed, attempts, preemptions) to finish one map task.

        Map tasks are idempotent and restart from scratch on pre-emption
        (training-internal checkpointing is layered above, in the record
        cost model — see :mod:`repro.core.training`).
        """
        wall = billed = 0.0
        attempts = preemptions = 0
        while True:
            attempts += 1
            if attempts > MAX_TASK_ATTEMPTS:
                raise MapReduceError(
                    f"map task exceeded {MAX_TASK_ATTEMPTS} attempts "
                    f"(duration {duration:.0f}s too long for pre-emptible VMs?)"
                )
            uptime = self.preemption_model.sample_time_to_preemption(
                priority, self._rng
            )
            if duration <= uptime:
                wall += duration
                billed += duration
                return wall, billed, attempts, preemptions
            wall += uptime
            billed += uptime
            preemptions += 1

    # ------------------------------------------------------------------
    # Reduce phase
    # ------------------------------------------------------------------
    def _reduce_phase(
        self,
        job: MapReduceJob,
        intermediate: Dict[object, List[object]],
        stats: JobStats,
    ) -> List[object]:
        outputs: List[object] = []
        for key in sorted(intermediate, key=repr):
            outputs.extend(job.reducer(key, intermediate[key]))
        stats.reduce_seconds = len(outputs) * job.reduce_record_seconds
        stats.makespan_seconds += stats.reduce_seconds
        stats.billed_vm_seconds += stats.reduce_seconds
        return outputs
