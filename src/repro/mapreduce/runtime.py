"""The MapReduce runtime: real computation, simulated scheduling.

Design: user mapper/reducer code is executed exactly once per record in
process (so jobs produce real outputs), while scheduling is *simulated*
against the cluster — per-task durations come from a caller-supplied cost
model, tasks run on pre-emptible VMs whose uptimes are sampled from the
pre-emption model, pre-empted attempts are re-queued and re-billed, and
the ledger collects the money.  This separation lets experiments measure
makespan/cost effects (pre-emption rates, split strategies, threading)
without re-running expensive user code per attempt.

Scheduling model: the job holds ``n_workers`` single-task VM slots; each
map task goes to the earliest-free worker (list scheduling), which is how
a MapReduce master assigns splits to a fixed worker pool.

Failure semantics: a job declares a :data:`failure policy
<MapReduceJob.failure_policy>`.  Under ``"fail_job"`` (classic MapReduce)
any mapper exception or task that exhausts :data:`MAX_TASK_ATTEMPTS`
aborts the whole job.  Under ``"skip_record"`` the offending records are
diverted to a dead-letter list on :class:`JobStats` and the rest of the
job completes — the mode Sigmund's multi-tenant daily loop runs in, so
one retailer's bad day cannot take down the fleet.  :class:`FaultPlan`
injects deterministic failures (mapper exceptions or doomed task
attempts) so both policies are testable without relying on luck.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cluster.cost import CostLedger, ResourcePricing
from repro.cluster.machine import Priority, VMRequest
from repro.cluster.preemption import PreemptionModel
from repro.exceptions import FaultInjectedError, MapReduceError
from repro.mapreduce.splits import InputSplit
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracing import NULL_TRACER
from repro.rng import SeedLike, make_rng

#: A mapper takes one record and yields (key, value) pairs.
MapperFn = Callable[[object], Iterable[Tuple[object, object]]]
#: A reducer takes (key, values) and yields output records.
ReducerFn = Callable[[object, List[object]], Iterable[object]]
#: Returns simulated seconds of compute for one record.
RecordCostFn = Callable[[object], float]

#: Attempts per task before it fails permanently (MapReduce semantics).
MAX_TASK_ATTEMPTS = 50

#: Failure policies a job can declare.
FAIL_JOB = "fail_job"
SKIP_RECORD = "skip_record"
FAILURE_POLICIES = (FAIL_JOB, SKIP_RECORD)


def _identity_reducer(key: object, values: List[object]) -> Iterable[object]:
    """Default reducer: pass every value through."""
    del key
    return values


@dataclass(frozen=True)
class RemoteMapSpec:
    """How to run a job's map records on a fleet executor.

    The in-process ``mapper`` closure cannot cross a process boundary (it
    closes over live registries, managers, datasets), so a job that wants
    real parallelism declares the three picklable-friendly pieces instead:

    * ``task_fn`` — a module-level function the worker runs; receives the
      payload, returns a picklable result.
    * ``payload_fn(record)`` — coordinator-side: builds the picklable
      payload for one record (resolving everything that must stay
      coordinator-side, e.g. warm-model state and resume checkpoints).
    * ``collect_fn(record, result)`` — coordinator-side: turns a worker
      result into the mapper's ``(key, value)`` pairs, applying any
      recorded side effects (checkpoint writes, crash probes) in record
      order — this runs sequentially, preserving serial semantics.

    Results are consumed in record order regardless of completion order,
    so a remote run's outputs are byte-identical to the inline path.
    """

    task_fn: Callable[[object], object]
    payload_fn: Callable[[object], object]
    collect_fn: Callable[[object, object], Iterable[Tuple[object, object]]]


@dataclass(frozen=True)
class DeadLetter:
    """One record the job gave up on, with why and after how many tries."""

    record: object
    exception: BaseException
    attempts: int


class FaultPlan:
    """Deterministic fault injection for robustness tests and benchmarks.

    Two kinds of faults, both keyed by a record predicate:

    * :meth:`fail_mapper` — the mapper raises for matching records (a
      poison record / bad tenant data), optionally only the first
      ``times`` matches.
    * :meth:`fail_attempts` — the first ``failures`` scheduling attempts
      of any task containing a matching record die at launch
      (``failures=None`` dooms the task permanently, e.g. a config whose
      memory ask no machine survives).

    Rules are consulted in registration order; plans are reusable across
    jobs (mapper-fault counters persist, attempt counters are per task
    copy).
    """

    def __init__(self) -> None:
        self._mapper_rules: List[dict] = []
        self._attempt_rules: List[dict] = []

    # ------------------------------------------------------------------
    # Declaring faults
    # ------------------------------------------------------------------
    def fail_mapper(
        self,
        match: Callable[[object], bool],
        exception: Optional[BaseException] = None,
        times: Optional[int] = None,
    ) -> "FaultPlan":
        """Raise ``exception`` from the mapper for matching records."""
        self._mapper_rules.append(
            {"match": match, "exception": exception, "times": times, "fired": 0}
        )
        return self

    def fail_attempts(
        self,
        match: Callable[[object], bool],
        failures: Optional[int] = None,
    ) -> "FaultPlan":
        """Kill the first ``failures`` attempts of matching tasks (None = all)."""
        self._attempt_rules.append({"match": match, "failures": failures})
        return self

    # ------------------------------------------------------------------
    # Runtime-facing queries
    # ------------------------------------------------------------------
    def mapper_fault(self, record: object) -> Optional[BaseException]:
        """The exception to raise for ``record``, or None."""
        for rule in self._mapper_rules:
            if rule["times"] is not None and rule["fired"] >= rule["times"]:
                continue
            if rule["match"](record):
                rule["fired"] += 1
                if rule["exception"] is not None:
                    return rule["exception"]
                return FaultInjectedError(f"injected mapper fault for {record!r}")
        return None

    def attempt_fails(self, records: Sequence[object], attempt: int) -> bool:
        """Whether attempt number ``attempt`` (1-based) of a task dies."""
        for rule in self._attempt_rules:
            if any(rule["match"](record) for record in records):
                if rule["failures"] is None or attempt <= rule["failures"]:
                    return True
        return False


@dataclass
class MapReduceJob:
    """Specification of one job (what Sigmund's config files declare)."""

    name: str
    mapper: MapperFn
    reducer: ReducerFn = _identity_reducer
    n_workers: int = 4
    vm_request: VMRequest = field(
        default_factory=lambda: VMRequest(cpus=4, memory_gb=32, priority=Priority.PREEMPTIBLE)
    )
    #: Simulated seconds of map compute per record (default: 1s each).
    record_cost_fn: RecordCostFn = lambda record: 1.0
    #: Fixed simulated seconds per task attempt (scheduling + data fetch).
    task_startup_seconds: float = 5.0
    #: Simulated seconds per reduce output record (writes are cheap).
    reduce_record_seconds: float = 0.01
    #: Launch a backup copy of straggling tasks (Dean & Ghemawat's
    #: speculative execution) — whichever copy finishes first wins.
    speculative_execution: bool = False
    #: A task whose wall time exceeds this multiple of its ideal duration
    #: (because of pre-emption retries) gets a backup copy.
    speculation_factor: float = 2.0
    #: ``"fail_job"`` aborts on the first bad record or doomed task;
    #: ``"skip_record"`` dead-letters them and completes the rest.
    failure_policy: str = FAIL_JOB
    #: Optional picklable decomposition of the mapper; when set *and* the
    #: runtime holds an executor, map records run on the fleet instead of
    #: inline (outputs stay byte-identical — see :class:`RemoteMapSpec`).
    remote: Optional[RemoteMapSpec] = None

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise MapReduceError("a job needs at least one worker")
        if self.failure_policy not in FAILURE_POLICIES:
            raise MapReduceError(
                f"unknown failure policy {self.failure_policy!r}; "
                f"expected one of {FAILURE_POLICIES}"
            )


@dataclass
class JobStats:
    """Simulated execution statistics of one job run."""

    job_name: str
    makespan_seconds: float = 0.0
    billed_vm_seconds: float = 0.0
    cost: float = 0.0
    map_tasks: int = 0
    map_attempts: int = 0
    preemptions: int = 0
    reduce_seconds: float = 0.0
    speculative_copies: int = 0
    #: Map tasks that exhausted their attempts (skip_record policy only).
    tasks_failed: int = 0
    #: Records skipped under the skip_record policy (mapper faults plus
    #: records on permanently failed tasks); mirrors ``dead_letters``.
    records_skipped: int = 0
    #: The records the job gave up on, with exceptions and attempt counts.
    dead_letters: List[DeadLetter] = field(default_factory=list)
    #: Total simulated busy seconds per worker slot (skew diagnostics).
    worker_busy_seconds: List[float] = field(default_factory=list)

    @property
    def load_imbalance(self) -> float:
        """max/mean worker busy time; 1.0 means perfectly balanced."""
        busy = [b for b in self.worker_busy_seconds]
        if not busy or sum(busy) == 0:
            return 1.0
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean > 0 else 1.0


@dataclass
class _TaskRun:
    """Outcome of simulating one task copy's scheduling attempts."""

    wall: float
    billed: float
    attempts: int
    preemptions: int
    completed: bool
    failure: Optional[MapReduceError] = None


class MapReduceRuntime:
    """Runs jobs: executes user code once, simulates the cluster around it."""

    def __init__(
        self,
        pricing: ResourcePricing = ResourcePricing(),
        preemption_model: PreemptionModel = PreemptionModel(),
        ledger: Optional[CostLedger] = None,
        seed: SeedLike = 0,
        fault_plan: Optional[FaultPlan] = None,
        executor=None,
    ):
        self.pricing = pricing
        self.preemption_model = preemption_model
        self.ledger = ledger or CostLedger(pricing)
        self.fault_plan = fault_plan
        #: A :class:`repro.fleet.executor.Executor`; jobs that declare a
        #: :class:`RemoteMapSpec` run their map records through it.
        self.executor = executor
        self._rng = make_rng(seed)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self,
        job: MapReduceJob,
        splits: Sequence[InputSplit],
        metrics=NULL_METRICS,
        tracer=NULL_TRACER,
    ) -> Tuple[List[object], JobStats]:
        """Execute ``job`` over ``splits``; returns (outputs, stats).

        ``metrics`` receives job-level counters; ``tracer`` receives one
        span per map-task copy (including speculative backups) on the
        job-relative simulated timeline.  Both default to the shared
        no-op singletons, so uninstrumented callers pay nothing.
        """
        stats = JobStats(job_name=job.name, map_tasks=len(splits))
        intermediate = self._map_phase(job, splits, stats, tracer)
        outputs = self._reduce_phase(job, intermediate, stats, tracer)
        stats.cost = self.ledger.charge(
            job.name, job.vm_request, stats.billed_vm_seconds
        )
        metrics.counter("mapreduce_tasks_total", job=job.name).inc(
            stats.map_tasks
        )
        metrics.counter("mapreduce_attempts_total", job=job.name).inc(
            stats.map_attempts
        )
        metrics.counter("mapreduce_records_skipped_total", job=job.name).inc(
            stats.records_skipped
        )
        return outputs, stats

    # ------------------------------------------------------------------
    # Map phase
    # ------------------------------------------------------------------
    def _map_phase(
        self,
        job: MapReduceJob,
        splits: Sequence[InputSplit],
        stats: JobStats,
        tracer=NULL_TRACER,
    ) -> Dict[object, List[object]]:
        if self.executor is not None and job.remote is not None:
            tasks = self._execute_remote(job, splits, stats)
        else:
            tasks = self._execute_inline(job, splits, stats)

        # Simulated scheduling: list-schedule task durations over workers,
        # sampling VM uptime per attempt.
        skip = job.failure_policy == SKIP_RECORD
        intermediate: Dict[object, List[object]] = defaultdict(list)
        workers = [0.0] * job.n_workers
        for task_index, (split, duration, pairs) in enumerate(tasks):
            worker = min(range(job.n_workers), key=lambda w: workers[w])
            task_start = workers[worker]
            run = self._simulate_attempts(
                duration, job.vm_request.priority, split.records
            )
            elapsed, billed = run.wall, run.billed
            attempts, preemptions = run.attempts, run.preemptions
            if run.completed and (
                job.speculative_execution
                and elapsed > job.speculation_factor * duration
            ):
                # Straggler: a backup copy races the original; the winner
                # defines wall time, and each copy is billed its own time
                # truncated at the winner's wall-clock (the loser is
                # killed the moment the winner reports in).
                backup = self._simulate_attempts(
                    duration, job.vm_request.priority, split.records
                )
                winner = min(elapsed, backup.wall) if backup.completed else elapsed
                billed = min(billed, winner) + min(backup.billed, winner)
                elapsed = winner
                attempts += backup.attempts
                preemptions += backup.preemptions
                stats.speculative_copies += 1
                tracer.record_span(
                    "speculative_copy",
                    task_start,
                    task_start + min(backup.wall, winner),
                    job=job.name,
                    task=task_index,
                    attempts=backup.attempts,
                    preemptions=backup.preemptions,
                    won=backup.completed and backup.wall < run.wall,
                )
            tracer.record_span(
                "map_task",
                task_start,
                task_start + elapsed,
                job=job.name,
                task=task_index,
                worker=worker,
                attempts=attempts,
                preemptions=preemptions,
                completed=run.completed,
            )
            workers[worker] += elapsed
            stats.billed_vm_seconds += billed
            stats.map_attempts += attempts
            stats.preemptions += preemptions
            if run.completed:
                for key, value in pairs:
                    intermediate[key].append(value)
            else:
                # The task died for good: classic MapReduce aborts the
                # job; skip_record dead-letters the task's records (the
                # attempts' wall and billed time stay on the books — the
                # cluster really burned them).
                if not skip:
                    raise run.failure
                stats.tasks_failed += 1
                already_dead = {
                    id(letter.record) for letter in stats.dead_letters
                }
                for record in split.records:
                    if id(record) in already_dead:
                        continue
                    stats.dead_letters.append(
                        DeadLetter(record, run.failure, attempts=run.attempts)
                    )
                    stats.records_skipped += 1
        stats.worker_busy_seconds = workers
        stats.makespan_seconds = max(workers) if workers else 0.0
        return intermediate

    def _execute_inline(
        self,
        job: MapReduceJob,
        splits: Sequence[InputSplit],
        stats: JobStats,
    ) -> List[Tuple[InputSplit, float, List[Tuple[object, object]]]]:
        """Reference execution: every record through the mapper, in order.

        Output pairs are buffered per task so a task that later fails its
        scheduling permanently can be dropped without side effects leaking
        into the shuffle.
        """
        skip = job.failure_policy == SKIP_RECORD
        tasks: List[Tuple[InputSplit, float, List[Tuple[object, object]]]] = []
        for split in splits:
            seconds = job.task_startup_seconds
            pairs: List[Tuple[object, object]] = []
            for record in split.records:
                try:
                    seconds += float(job.record_cost_fn(record))
                    fault = (
                        self.fault_plan.mapper_fault(record)
                        if self.fault_plan is not None
                        else None
                    )
                    if fault is not None:
                        raise fault
                    pairs.extend(job.mapper(record))
                except Exception as exc:
                    if not skip:
                        raise MapReduceError(
                            f"mapper failed on record {record!r} in job "
                            f"{job.name!r}: {exc}"
                        ) from exc
                    stats.dead_letters.append(DeadLetter(record, exc, attempts=1))
                    stats.records_skipped += 1
            tasks.append((split, seconds, pairs))
        return tasks

    def _execute_remote(
        self,
        job: MapReduceJob,
        splits: Sequence[InputSplit],
        stats: JobStats,
    ) -> List[Tuple[InputSplit, float, List[Tuple[object, object]]]]:
        """Fleet execution: records fan out to worker processes.

        Three passes, two of them sequential in record order so every
        order-sensitive effect matches :meth:`_execute_inline` exactly:

        1. **Pre-pass (record order)** — consult the fault plan (its
           counters are order-sensitive) and build payloads for the
           healthy records.
        2. **Fan-out** — the executor runs all tasks; completion order is
           its business, outcomes come back keyed by record position.
        3. **Collect (record order)** — charge record costs, dead-letter
           faults/errors/crashes, and run ``collect_fn`` (which replays
           worker-recorded side effects through coordinator state).

        A worker that *dies* (SIGKILL, OOM) is retried by the executor;
        a task still dead after those attempts lands in the dead letters
        under ``skip_record`` — a crashing config never hangs or aborts
        the fleet's sweep — and aborts the job under ``fail_job``.
        """
        from repro.fleet.executor import OK, FleetTask

        remote = job.remote
        skip = job.failure_policy == SKIP_RECORD
        ordered = [record for split in splits for record in split.records]
        faults: Dict[int, BaseException] = {}
        fleet_tasks: List[FleetTask] = []
        for position, record in enumerate(ordered):
            fault = (
                self.fault_plan.mapper_fault(record)
                if self.fault_plan is not None
                else None
            )
            if fault is not None:
                # fail_job aborts here, before any fan-out: the serial
                # path would have died on this record anyway and every
                # output of a failed job is discarded.
                if not skip:
                    raise MapReduceError(
                        f"mapper failed on record {record!r} in job "
                        f"{job.name!r}: {fault}"
                    ) from fault
                faults[position] = fault
                continue
            fleet_tasks.append(
                FleetTask(
                    task_id=str(position),
                    fn=remote.task_fn,
                    payload=remote.payload_fn(record),
                )
            )
        outcomes = self.executor.run_tasks(fleet_tasks)

        tasks: List[Tuple[InputSplit, float, List[Tuple[object, object]]]] = []
        position = 0
        for split in splits:
            seconds = job.task_startup_seconds
            pairs: List[Tuple[object, object]] = []
            for record in split.records:
                record_position = position
                position += 1
                try:
                    seconds += float(job.record_cost_fn(record))
                    if record_position in faults:
                        raise faults[record_position]
                    outcome = outcomes[str(record_position)]
                    if outcome.status != OK:
                        raise outcome.error
                    pairs.extend(remote.collect_fn(record, outcome.value))
                except Exception as exc:
                    if not skip:
                        raise MapReduceError(
                            f"mapper failed on record {record!r} in job "
                            f"{job.name!r}: {exc}"
                        ) from exc
                    attempts = (
                        outcomes[str(record_position)].attempts
                        if record_position not in faults
                        and str(record_position) in outcomes
                        else 1
                    )
                    stats.dead_letters.append(
                        DeadLetter(record, exc, attempts=attempts)
                    )
                    stats.records_skipped += 1
            tasks.append((split, seconds, pairs))
        return tasks

    def _simulate_attempts(
        self,
        duration: float,
        priority: Priority,
        records: Sequence[object] = (),
    ) -> _TaskRun:
        """Simulate scheduling attempts for one map task copy.

        Map tasks are idempotent and restart from scratch on pre-emption
        (training-internal checkpointing is layered above, in the record
        cost model — see :mod:`repro.core.training`).  Injected attempt
        faults (see :class:`FaultPlan`) kill an attempt at launch:
        they consume an attempt but no simulated time.
        """
        wall = billed = 0.0
        attempts = preemptions = 0
        while True:
            attempts += 1
            if attempts > MAX_TASK_ATTEMPTS:
                failure = MapReduceError(
                    f"map task exceeded {MAX_TASK_ATTEMPTS} attempts "
                    f"(duration {duration:.0f}s too long for pre-emptible VMs?)"
                )
                return _TaskRun(
                    wall, billed, attempts - 1, preemptions, False, failure
                )
            if self.fault_plan is not None and self.fault_plan.attempt_fails(
                records, attempts
            ):
                continue
            uptime = self.preemption_model.sample_time_to_preemption(
                priority, self._rng
            )
            if duration <= uptime:
                wall += duration
                billed += duration
                return _TaskRun(wall, billed, attempts, preemptions, True)
            wall += uptime
            billed += uptime
            preemptions += 1

    # ------------------------------------------------------------------
    # Reduce phase
    # ------------------------------------------------------------------
    def _reduce_phase(
        self,
        job: MapReduceJob,
        intermediate: Dict[object, List[object]],
        stats: JobStats,
        tracer=NULL_TRACER,
    ) -> List[object]:
        outputs: List[object] = []
        for key in sorted(intermediate, key=repr):
            outputs.extend(job.reducer(key, intermediate[key]))
        stats.reduce_seconds = len(outputs) * job.reduce_record_seconds
        map_makespan = stats.makespan_seconds
        stats.makespan_seconds += stats.reduce_seconds
        stats.billed_vm_seconds += stats.reduce_seconds
        if stats.reduce_seconds > 0:
            tracer.record_span(
                "reduce_phase",
                map_makespan,
                stats.makespan_seconds,
                job=job.name,
                outputs=len(outputs),
            )
        return outputs
