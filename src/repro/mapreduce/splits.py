"""Input splits: how records are chunked across map tasks.

Three strategies from the paper:

* :func:`uniform_splits` — plain contiguous chunking.
* :func:`random_permutation_splits` — the training pipeline randomly
  permutes config records before writing them "so that training tasks are
  randomly divided across different MapReduces ... to balance the work"
  (section IV-B1).
* :func:`contiguous_splits_by_key` — the inference pipeline organizes the
  input "in such a way that data from a single retailer is in one
  contiguous chunk" so a mapper rarely reloads models (section IV-C2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, TypeVar

from repro.exceptions import MapReduceError
from repro.rng import SeedLike, make_rng

Record = TypeVar("Record")


@dataclass
class InputSplit:
    """A chunk of input records processed by one map task."""

    split_id: int
    records: List[object]

    def __len__(self) -> int:
        return len(self.records)


def uniform_splits(records: Sequence[Record], n_splits: int) -> List[InputSplit]:
    """Contiguous chunks of (nearly) equal record count."""
    if n_splits < 1:
        raise MapReduceError("need at least one split")
    records = list(records)
    n_splits = min(n_splits, max(1, len(records)))
    base, remainder = divmod(len(records), n_splits)
    splits: List[InputSplit] = []
    start = 0
    for split_id in range(n_splits):
        size = base + (1 if split_id < remainder else 0)
        splits.append(InputSplit(split_id, records[start : start + size]))
        start += size
    return splits


def random_permutation_splits(
    records: Sequence[Record], n_splits: int, seed: SeedLike = None
) -> List[InputSplit]:
    """Shuffle records, then chunk — the training pipeline's load balancer.

    With skewed per-record costs (tiny vs huge retailers), contiguous
    chunking can put all the expensive records in one split; a random
    permutation spreads them so "workers assigned small retailers process
    more training tasks, and those with larger retailers process fewer".
    """
    rng = make_rng(seed)
    shuffled = list(records)
    rng.shuffle(shuffled)
    return uniform_splits(shuffled, n_splits)


def contiguous_splits_by_key(
    records: Sequence[Record],
    key_fn: Callable[[Record], object],
    n_splits: int,
) -> List[InputSplit]:
    """Sort records by key, then chunk — keeps each key's records together.

    Inference wants all of one retailer's items adjacent so the mapper
    loads each model at most twice (once per split boundary it straddles).
    The sort is stable, preserving within-retailer order.
    """
    ordered = sorted(records, key=lambda record: _orderable(key_fn(record)))
    return uniform_splits(ordered, n_splits)


def _orderable(key: object) -> object:
    """Keys may be arbitrary; compare by (type name, repr) when needed."""
    if isinstance(key, (int, float, str)):
        return (0, str(type(key).__name__), key if isinstance(key, str) else "", float(key) if isinstance(key, (int, float)) else 0.0)
    return (1, str(type(key).__name__), repr(key), 0.0)
