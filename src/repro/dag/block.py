"""Declarative blocks: the unit of work in the daily-run DAG.

The paper's daily pipeline — sweep, train, infer, publish, monitor — is
an unattended production run over thousands of retailers; its recovery
and gating behaviour must be *structural*, not hand-placed.  A
:class:`Block` declares everything the orchestrator needs to run one
unit of work safely:

* ``depends_on`` — names of blocks whose side effects must land first,
* ``journal`` — the ``(phase, task_id)`` under which the block's payload
  is write-ahead-logged; a journaled block is **replayed** (payload read
  back, side effects skipped) when the day is recovered after a crash,
* ``pre_kill`` / ``post_kill`` — the named coordinator kill points that
  used to be hand-woven through ``SigmundService._execute_day``; the
  runner checks them immediately before the block runs and immediately
  after its completion is journaled,
* ``fold`` — how the block's payload is absorbed into day-level state
  (report fields, the day metrics registry); folding happens on fresh
  runs *and* on journal replays, which is what makes a recovered day
  seal byte-identical metrics,
* ``max_attempts`` / ``on_failure`` — the retry budget and what a final
  failure does to the rest of the graph,
* ``expand`` — dynamic fan-out: a block whose payload determines more
  blocks (the inference cell assignment is only known once the plan
  block has run).

Blocks carry no scheduling state; :class:`~repro.dag.runner.GraphRunner`
owns execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Tuple, Union

from repro.exceptions import SigmundError

#: Failure policies: a block that exhausts ``max_attempts`` either halts
#: the whole run (the exception propagates, like a coordinator death) or
#: is recorded as failed while its transitive dependents are skipped and
#: every independent block still runs.
HALT = "halt"
SKIP_DEPENDENTS = "skip"
FAILURE_POLICIES = (HALT, SKIP_DEPENDENTS)

Payload = Dict[str, object]


class DagError(SigmundError):
    """The DAG was declared or used out of protocol."""


class CycleError(DagError):
    """The dependency graph contains a cycle (named in the message)."""


@dataclass
class Block:
    """One declarative unit of the daily run.

    ``run`` performs the side effects and returns the journal payload;
    ``None`` makes the block a pure synchronization point (it "runs"
    instantly with an empty payload).  ``duration`` is the simulated
    seconds the block occupies its lane — a constant or a callable on
    the payload (e.g. the training makespan recorded inside it) — and
    only shapes the schedule, never the results.
    """

    name: str
    run: Optional[Callable[[], Payload]] = None
    depends_on: Tuple[str, ...] = ()
    #: Absorb the payload into day-level state; called exactly once per
    #: execution, for fresh runs and journal replays alike.
    fold: Optional[Callable[[Payload], None]] = None
    #: ``(phase, task_id)`` in the run journal; None = never journaled
    #: (the block re-runs on recovery, e.g. the wrap-up).
    journal: Optional[Tuple[str, str]] = None
    #: ``(stage, label)`` crash-plan checks around the journaled unit.
    pre_kill: Optional[Tuple[str, str]] = None
    post_kill: Optional[Tuple[str, str]] = None
    max_attempts: int = 1
    on_failure: str = HALT
    #: Evaluated once its dependencies are done; False skips the block
    #: entirely (no run, no journal, no fold) while dependents proceed —
    #: the graph form of the serial loop's guard-and-``continue``.
    enabled: Optional[Callable[[], bool]] = None
    #: Dynamic fan-out: blocks derived from this block's payload.  Runs
    #: on replays too, so a recovered day rebuilds the same sub-graph
    #: from the journaled payload.
    expand: Optional[Callable[[Payload], Iterable["Block"]]] = None
    duration: Union[float, Callable[[Payload], float]] = 0.0
    #: Free-form labels for introspection (retailer id, cell name, ...).
    labels: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or any(ch.isspace() for ch in self.name):
            raise DagError(f"block name {self.name!r} must be non-empty, no whitespace")
        if self.max_attempts < 1:
            raise DagError(f"block {self.name!r}: max_attempts must be >= 1")
        if self.on_failure not in FAILURE_POLICIES:
            raise DagError(
                f"block {self.name!r}: unknown failure policy {self.on_failure!r}; "
                f"expected one of {FAILURE_POLICIES}"
            )
        if self.name in self.depends_on:
            raise DagError(f"block {self.name!r} depends on itself")

    @property
    def family(self) -> str:
        """The block family: everything before the first ``/``.

        Names follow ``family/qualifier`` (``train/r3``, ``infer/cell_a``);
        partial-rerun selections and the progress display group by family.
        """
        return self.name.split("/", 1)[0]

    def duration_of(self, payload: Payload) -> float:
        if callable(self.duration):
            return max(0.0, float(self.duration(payload)))
        return max(0.0, float(self.duration))
