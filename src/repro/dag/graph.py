"""The day graph: named blocks wired by dependency edges.

:class:`DayGraph` is a plain, order-preserving container of
:class:`~repro.dag.block.Block` declarations with the structural
guarantees the runner relies on:

* names are unique and every ``depends_on`` edge points at a declared
  block (``validate`` raises :class:`~repro.dag.block.DagError`),
* the graph is acyclic (``validate`` raises
  :class:`~repro.dag.block.CycleError` naming the cycle),
* ``topological_order`` is *deterministic*: among blocks whose
  dependencies are all satisfied, declaration order wins.  The serial
  reference path of ``SigmundService._execute_day`` is exactly this
  order, which is what lets ``max_parallelism=1`` DAG runs be compared
  edge-for-edge against the imperative sequence.

Graphs stay mutable because the day's shape is partly data-dependent:
the inference cell assignment exists only after the plan block has run,
so :class:`~repro.dag.runner.GraphRunner` grows the graph mid-run via
``Block.expand`` (re-validating after every growth step).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

from repro.dag.block import Block, CycleError, DagError


class DayGraph:
    """An insertion-ordered DAG of named blocks."""

    def __init__(self, blocks: Iterable[Block] = ()) -> None:
        self._blocks: Dict[str, Block] = {}
        for block in blocks:
            self.add(block)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, block: Block) -> Block:
        if block.name in self._blocks:
            raise DagError(f"duplicate block name {block.name!r}")
        self._blocks[block.name] = block
        return block

    def add_dependencies(self, name: str, deps: Iterable[str]) -> None:
        """Append edges ``name -> dep`` for deps not already present."""
        block = self.block(name)
        extra = tuple(d for d in deps if d not in block.depends_on)
        if any(d == name for d in extra):
            raise DagError(f"block {name!r} depends on itself")
        block.depends_on = block.depends_on + extra

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def block(self, name: str) -> Block:
        try:
            return self._blocks[name]
        except KeyError:
            raise DagError(f"unknown block {name!r}") from None

    def names(self) -> List[str]:
        return list(self._blocks)

    def blocks(self) -> List[Block]:
        return list(self._blocks.values())

    def __contains__(self, name: object) -> bool:
        return name in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks.values())

    def dependents_of(self, name: str) -> List[str]:
        """Names of blocks that directly depend on ``name``, in declaration order."""
        self.block(name)
        return [b.name for b in self._blocks.values() if name in b.depends_on]

    # ------------------------------------------------------------------
    # structure checks
    # ------------------------------------------------------------------
    def validate(self) -> None:
        for block in self._blocks.values():
            for dep in block.depends_on:
                if dep not in self._blocks:
                    raise DagError(f"block {block.name!r} depends on unknown block {dep!r}")
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        WHITE, GREY, BLACK = 0, 1, 2
        color = {name: WHITE for name in self._blocks}
        for root in self._blocks:
            if color[root] != WHITE:
                continue
            # Iterative DFS along depends_on edges; a grey node on the
            # stack path means a cycle, reported by name.
            stack: List[Tuple[str, Iterator[str]]] = [(root, iter(self.block(root).depends_on))]
            color[root] = GREY
            path = [root]
            while stack:
                name, deps = stack[-1]
                advanced = False
                for dep in deps:
                    if color[dep] == GREY:
                        start = path.index(dep)
                        cycle = path[start:] + [dep]
                        raise CycleError(f"dependency cycle: {' -> '.join(cycle)}")
                    if color[dep] == WHITE:
                        color[dep] = GREY
                        path.append(dep)
                        stack.append((dep, iter(self.block(dep).depends_on)))
                        advanced = True
                        break
                if not advanced:
                    color[name] = BLACK
                    path.pop()
                    stack.pop()

    # ------------------------------------------------------------------
    # deterministic ordering
    # ------------------------------------------------------------------
    def topological_order(self) -> List[str]:
        """Kahn's algorithm with declaration order as the tie-break.

        Among ready blocks the earliest-declared runs first, so the
        result is a pure function of the declared graph — no set
        iteration order, no hashing.
        """
        self.validate()
        priority = {name: i for i, name in enumerate(self._blocks)}
        remaining_deps = {
            name: set(block.depends_on) for name, block in self._blocks.items()
        }
        dependents: Dict[str, List[str]] = {name: [] for name in self._blocks}
        for name, block in self._blocks.items():
            for dep in block.depends_on:
                dependents[dep].append(name)
        ready = sorted(
            (name for name, deps in remaining_deps.items() if not deps),
            key=priority.__getitem__,
        )
        order: List[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            newly = []
            for dep_name in dependents[name]:
                remaining_deps[dep_name].discard(name)
                if not remaining_deps[dep_name]:
                    newly.append(dep_name)
            if newly:
                ready = sorted(ready + newly, key=priority.__getitem__)
        return order
