"""Declarative DAG orchestration for the daily run.

``repro.dag`` turns ``SigmundService._execute_day``'s imperative
sequence into a dependency graph: :class:`~repro.dag.block.Block`
declares one unit of work (journal key, kill points, retry/failure
policy, metrics fold), :class:`~repro.dag.graph.DayGraph` holds the
wiring (cycle detection, deterministic topological order), and
:class:`~repro.dag.runner.GraphRunner` executes with bounded
parallelism over a simulated clock.  :mod:`repro.dag.dayplan` builds
the actual day graph and the single-retailer backfill graph.

The serial imperative path remains the reference;
``tests/test_dag_recovery.py`` pins both byte-identical on the sealed
day snapshot at every crash kill point.
"""

from repro.dag.block import (
    FAILURE_POLICIES,
    HALT,
    SKIP_DEPENDENTS,
    Block,
    CycleError,
    DagError,
)
from repro.dag.dayplan import (
    BackfillState,
    DayState,
    build_backfill_graph,
    build_day_graph,
    build_selection,
)
from repro.dag.graph import DayGraph
from repro.dag.runner import (
    BLOCKED,
    DISABLED,
    FAILED,
    RAN,
    REPLAYED,
    SKIPPED,
    UNSELECTED,
    BlockRun,
    GraphRunner,
    GraphRunResult,
)

__all__ = [
    "Block",
    "BlockRun",
    "BackfillState",
    "CycleError",
    "DagError",
    "DayGraph",
    "DayState",
    "GraphRunner",
    "GraphRunResult",
    "FAILURE_POLICIES",
    "HALT",
    "SKIP_DEPENDENTS",
    "RAN",
    "REPLAYED",
    "DISABLED",
    "UNSELECTED",
    "BLOCKED",
    "FAILED",
    "SKIPPED",
    "build_backfill_graph",
    "build_day_graph",
    "build_selection",
]
