"""The daily run, re-expressed as a declarative graph.

:func:`build_day_graph` produces the block structure of one Sigmund day:

* ``train/<rid>`` — one per retailer in the journaled sweep intent,
* ``retrieval/<rid>`` — one per onboarded retailer, depending only on
  *its own* train block (the ANN build reads nothing cross-retailer),
* ``infer_plan`` — depends on every train block (the healthy set needs
  all training verdicts); its journaled assignment payload **expands**
  into one ``infer/<cell>`` block per cell,
* ``infer_finalize`` — fan-in of every cell; derives the run-wide
  inference stats and expands into one ``publish/<rid>`` block per
  retailer with results,
* ``wrapup`` — the fan-in of everything: monitoring, detectors, seal,
  commit.

Every block's ``run`` body, ``journal`` key, kill points, and ``fold``
mirror the serial phases of ``SigmundService._execute_day`` line for
line — the crash-equivalence suite (``tests/test_dag_recovery.py``) pins
the two paths byte-identical on the day seal, and the fold closures are
written so their execution order matches the serial iteration order
whenever blocks become ready simultaneously (declaration order is the
scheduler's tie-break).

:func:`build_selection` turns a ``--blocks`` request (names or families)
into a selection predicate for partial reruns, closed over upstream
dependencies so a selected block never sits behind an unselected one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.config import ConfigRecord
from repro.core.inference import InferenceResult, InferenceStats
from repro.dag.block import Block, DagError
from repro.dag.graph import DayGraph
from repro.exceptions import SigmundError
from repro.obs.metrics import NULL_METRICS, MetricsRegistry


@dataclass
class DayState:
    """Mutable cross-block state of one day execution.

    The serial path threads these through ``_execute_day`` as locals and
    arguments; the graph threads them through fold closures.  Everything
    here is rebuilt per execution and populated *only* from journaled
    payloads (or values derived from them) — the invariant that makes a
    recovered day seal byte-identical.
    """

    report: object
    day_metrics: object = NULL_METRICS
    failure_reasons: Dict[str, str] = field(default_factory=dict)
    #: rid -> accepted ANN adapter (feeds inference candidate pools).
    retrieval: Dict[str, object] = field(default_factory=dict)
    stats: InferenceStats = field(default_factory=InferenceStats)
    results: Dict[str, InferenceResult] = field(default_factory=dict)
    infer_failed: Dict[str, str] = field(default_factory=dict)
    served: List[str] = field(default_factory=list)


# ----------------------------------------------------------------------
# The day graph
# ----------------------------------------------------------------------
def build_day_graph(service, day: int, intent: Dict[str, object], state: DayState):
    """Declare one day of ``service`` as a :class:`DayGraph`.

    Declaration order is the scheduler's tie-break, so it deliberately
    matches the serial path's iteration order: sorted train blocks, then
    sorted retrieval blocks, then the plan, finalize, and wrap-up.
    """
    report = state.report
    day_metrics = state.day_metrics
    graph = DayGraph()

    configs: List[ConfigRecord] = list(intent["configs"])  # type: ignore[arg-type]
    by_retailer: Dict[str, List[ConfigRecord]] = {}
    for config in configs:
        by_retailer.setdefault(config.retailer_id, []).append(config)

    # -- train/<rid> ----------------------------------------------------
    def make_train(rid: str) -> Block:
        def run():
            return service._train_retailer(day, rid, by_retailer[rid])

        def fold(payload):
            report.configs_trained += int(payload["trained"])
            report.configs_failed += int(payload["failed"])
            report.training_cost += float(payload["cost"])
            makespan = float(payload["makespan"])
            report.training_makespan = max(report.training_makespan, makespan)
            report.preemptions += int(payload["preemptions"])
            if payload.get("failure"):
                state.failure_reasons[rid] = str(payload["failure"])
            snapshot = payload.get("metrics")
            if snapshot is not None:
                day_metrics.fold(snapshot)
            day_metrics.gauge("train_makespan_seconds", retailer=rid).set(makespan)

        return Block(
            name=f"train/{rid}",
            run=run,
            fold=fold,
            journal=("train", rid),
            pre_kill=("train_task", rid),
            post_kill=("train_logged", rid),
            duration=lambda payload: float(payload["makespan"]),
            labels={"retailer": rid},
        )

    train_names = []
    for rid in sorted(by_retailer):
        graph.add(make_train(rid))
        train_names.append(f"train/{rid}")

    # -- retrieval/<rid> ------------------------------------------------
    def make_retrieval(rid: str) -> Block:
        def enabled():
            return rid not in state.failure_reasons and service.registry.has_models(rid)

        def run():
            return service._build_retrieval_index(day, rid)

        def fold(payload):
            snapshot = payload.get("metrics")
            if snapshot is not None:
                day_metrics.fold(snapshot)
            if not payload["built"]:
                return
            report.indexes_built += 1
            if payload["accepted"]:
                state.retrieval[rid] = payload["index"]
            else:
                report.indexes_rejected += 1

        deps = (f"train/{rid}",) if f"train/{rid}" in graph else ()
        return Block(
            name=f"retrieval/{rid}",
            run=run,
            depends_on=deps,
            fold=fold,
            journal=("retrieval", rid),
            pre_kill=("retrieval_build", rid),
            post_kill=("retrieval_logged", rid),
            enabled=enabled,
            labels={"retailer": rid},
        )

    retrieval_names = []
    for rid in sorted(service._datasets):
        graph.add(make_retrieval(rid))
        retrieval_names.append(f"retrieval/{rid}")

    # -- infer_plan (expands into one block per cell) -------------------
    def plan_run():
        # A retailer whose training failed outright is served from
        # yesterday's tables; inference on its stale registry entry
        # would hide the failure behind quietly old models.
        healthy = {
            rid: dataset
            for rid, dataset in service._datasets.items()
            if rid not in state.failure_reasons
        }
        # Journaled as *intent*: free capacity changes as jobs run, so a
        # recovery that replanned would bin retailers differently and
        # re-run work that already billed.
        return {"assignment": service.inference.plan(healthy)}

    def make_cell(cell_name: str, retailer_group: List[str]) -> Block:
        def run():
            group = {
                rid: service._datasets[rid]
                for rid in retailer_group
                if rid in service._datasets
            }
            cell_metrics = (
                MetricsRegistry() if service.metrics.enabled else NULL_METRICS
            )
            try:
                cell_results, job_stats, loads, cell_failed = (
                    service.inference.run_cell(
                        cell_name,
                        group,
                        day,
                        metrics=cell_metrics,
                        tracer=service.tracer,
                        retrieval=state.retrieval,
                    )
                )
            except SigmundError as exc:
                cell_failed = {rid: f"cell {cell_name!r}: {exc}" for rid in group}
                return {
                    "results": {},
                    "failed": cell_failed,
                    "job_stats": None,
                    "loads": 0,
                    "metrics": cell_metrics.snapshot(),
                }
            return {
                "results": cell_results,
                "failed": cell_failed,
                "job_stats": job_stats,
                "loads": loads,
                "metrics": cell_metrics.snapshot(),
            }

        def fold(payload):
            state.results.update(payload["results"])  # type: ignore[arg-type]
            state.infer_failed.update(payload["failed"])  # type: ignore[arg-type]
            if payload["job_stats"] is not None:
                service.inference.fold_cell(
                    state.stats,
                    cell_name,
                    payload["job_stats"],  # type: ignore[arg-type]
                    int(payload["loads"]),  # type: ignore[arg-type]
                )
            snapshot = payload.get("metrics")
            if snapshot is not None:
                day_metrics.fold(snapshot)

        def duration(payload):
            job_stats = payload.get("job_stats")
            return job_stats.makespan_seconds if job_stats is not None else 0.0

        # The cell reads the accepted ANN indexes of its own retailers
        # only, so it waits on exactly their retrieval blocks.
        deps = ("infer_plan",) + tuple(
            f"retrieval/{rid}" for rid in retailer_group if f"retrieval/{rid}" in graph
        )
        return Block(
            name=f"infer/{cell_name}",
            run=run,
            depends_on=deps,
            fold=fold,
            journal=("infer", cell_name),
            pre_kill=("infer_cell", cell_name),
            post_kill=("infer_logged", cell_name),
            expand=None,
            duration=duration,
            labels={"cell": cell_name},
        )

    def plan_expand(payload):
        assignment: List[Tuple[str, List[str]]] = list(payload["assignment"])  # type: ignore[arg-type]
        return [make_cell(cell_name, group) for cell_name, group in assignment]

    graph.add(
        Block(
            name="infer_plan",
            run=plan_run,
            depends_on=tuple(train_names),
            journal=("infer_plan", "assignment"),
            pre_kill=("inference_plan", ""),
            expand=plan_expand,
        )
    )

    # -- infer_finalize (expands into one publish block per retailer) ---
    def make_publish(rid: str) -> Block:
        def run():
            accepted, reason = service._publish_retailer(
                day, rid, state.results[rid], day + 1
            )
            return {"accepted": accepted, "reason": reason}

        def fold(payload):
            accepted = bool(payload["accepted"])
            reason = str(payload["reason"])
            day_metrics.counter(
                "publish_total",
                retailer=rid,
                outcome="accepted" if accepted else "rejected",
            ).inc()
            if accepted:
                state.served.append(rid)
            else:
                report.publishes_rejected += 1
                state.failure_reasons[rid] = reason
            report.retailers_served = len(state.served)

        return Block(
            name=f"publish/{rid}",
            run=run,
            depends_on=("infer_finalize",),
            fold=fold,
            journal=("publish", rid),
            pre_kill=("publish", rid),
            post_kill=("publish_logged", rid),
            labels={"retailer": rid},
        )

    def finalize_run():
        service.inference.finalize_stats(
            state.stats, state.results, state.infer_failed
        )
        for rid in state.stats.failed_retailers:
            state.failure_reasons.setdefault(
                rid,
                "inference: " + state.stats.failure_reasons.get(rid, "failed"),
            )
        report.inference_cost = state.stats.total_cost
        report.inference_makespan = state.stats.makespan_seconds
        report.preemptions += state.stats.preemptions
        return {"retailers": sorted(state.results)}

    def finalize_expand(payload):
        return [make_publish(rid) for rid in payload["retailers"]]  # type: ignore[union-attr]

    # Not journaled: its outputs are pure functions of the folded cell
    # payloads, so a recovered day re-derives them identically.  The
    # runner augments its dependencies with every expanded infer/<cell>.
    graph.add(
        Block(
            name="infer_finalize",
            run=finalize_run,
            depends_on=("infer_plan",),
            expand=finalize_expand,
        )
    )

    # -- wrapup ---------------------------------------------------------
    def wrapup_run():
        # _wrapup_phase carries its own "wrapup" kill point, the seal
        # build, the commit, and the monitor snapshot.
        service._wrapup_phase(
            day, state.served, state.failure_reasons, report, day_metrics
        )
        return {}

    graph.add(
        Block(
            name="wrapup",
            run=wrapup_run,
            depends_on=tuple(train_names)
            + tuple(retrieval_names)
            + ("infer_plan", "infer_finalize"),
        )
    )
    graph.validate()
    return graph


# ----------------------------------------------------------------------
# Partial-run selection
# ----------------------------------------------------------------------
#: Families in dependency order.  Selecting anything from the day's tail
#: (the plan onward) requires the whole fleet's training verdicts, so it
#: widens to the full graph.
FAMILIES = ("train", "retrieval", "infer_plan", "infer", "infer_finalize", "publish", "wrapup")
_TAIL_FAMILIES = {"infer_plan", "infer", "infer_finalize", "publish", "wrapup"}


def build_selection(
    graph: DayGraph, blocks: List[str]
) -> Optional[Callable[[str], bool]]:
    """A selection predicate for ``--blocks`` partial reruns.

    Tokens are block names (``train/r3``) or whole families (``train``).
    The selection is closed upward over dependencies: ``retrieval/r3``
    pulls in ``train/r3``; any tail family (``infer_plan``, ``infer``,
    ``publish``, ``wrapup``, ``infer_finalize``) pulls in the entire
    graph, because the inference plan consumes every retailer's training
    verdict.  Returns ``None`` (run everything) for an empty request or
    one that widened to the full graph.
    """
    if not blocks:
        return None
    names: Set[str] = set()
    for token in blocks:
        token = token.strip()
        if not token:
            continue
        family = token.split("/", 1)[0]
        if family not in FAMILIES:
            raise DagError(
                f"unknown block {token!r}; families are {', '.join(FAMILIES)}"
            )
        if family in _TAIL_FAMILIES:
            return None  # widened to the whole day
        if "/" in token:
            if token not in graph:
                known = sorted(n for n in graph.names() if n.startswith(family + "/"))
                raise DagError(
                    f"unknown block {token!r}; {family} blocks are {known}"
                )
            names.add(token)
        else:
            matched = [n for n in graph.names() if graph.block(n).family == family]
            if not matched:
                raise DagError(f"no {family!r} blocks in this day's graph")
            names.update(matched)
    # Close upward: a selected block must never wait on an unselected one.
    changed = True
    while changed:
        changed = False
        for name in list(names):
            for dep in graph.block(name).depends_on:
                if dep not in names:
                    names.add(dep)
                    changed = True
    selected = frozenset(names)
    return lambda name: name in selected


# ----------------------------------------------------------------------
# Single-retailer backfill
# ----------------------------------------------------------------------
@dataclass
class BackfillState:
    """Cross-block state of one retailer's backfill run."""

    failure: Optional[str] = None
    trained: int = 0
    cost: float = 0.0
    retrieval: Dict[str, object] = field(default_factory=dict)
    retrieval_payload: Optional[Dict[str, object]] = None
    result: Optional[InferenceResult] = None
    published: bool = False
    reason: str = ""


def build_backfill_graph(
    service,
    day: int,
    retailer_id: str,
    configs: List[ConfigRecord],
    version: int,
    state: BackfillState,
) -> DayGraph:
    """One retailer's train -> retrieval -> infer -> publish chain.

    Journaled under ``backfill_*`` phases of the (already committed) day,
    so a repeated backfill replays instead of re-billing.  No kill points
    and no day-seal mutation: the day's committed record stays untouched;
    only this retailer's tables, registry entries, and chargeback move.
    """
    rid = retailer_id
    graph = DayGraph()

    def train_run():
        return service._train_retailer(day, rid, configs)

    def train_fold(payload):
        state.trained += int(payload["trained"])
        state.cost += float(payload["cost"])
        if payload.get("failure"):
            state.failure = str(payload["failure"])

    graph.add(
        Block(
            name=f"backfill_train/{rid}",
            run=train_run,
            fold=train_fold,
            journal=("backfill_train", rid),
            labels={"retailer": rid},
        )
    )

    def retrieval_enabled():
        return state.failure is None and service.registry.has_models(rid)

    def retrieval_run():
        return service._build_retrieval_index(day, rid)

    def retrieval_fold(payload):
        state.retrieval_payload = payload
        if payload["built"] and payload["accepted"]:
            state.retrieval[rid] = payload["index"]

    graph.add(
        Block(
            name=f"backfill_retrieval/{rid}",
            run=retrieval_run,
            depends_on=(f"backfill_train/{rid}",),
            fold=retrieval_fold,
            journal=("backfill_retrieval", rid),
            enabled=retrieval_enabled,
            labels={"retailer": rid},
        )
    )

    def infer_enabled():
        return state.failure is None

    def infer_run():
        cell_metrics = MetricsRegistry() if service.metrics.enabled else NULL_METRICS
        results, stats = service.inference.run(
            {rid: service._datasets[rid]},
            day=day,
            metrics=cell_metrics,
            tracer=service.tracer,
            retrieval=state.retrieval,
        )
        return {
            "results": results,
            "failed": stats.failure_reasons,
            "cost": stats.total_cost,
        }

    def infer_fold(payload):
        state.cost += float(payload["cost"])
        failed = payload["failed"]
        if rid in failed:  # type: ignore[operator]
            state.failure = "inference: " + str(failed[rid])  # type: ignore[index]
        state.result = payload["results"].get(rid)  # type: ignore[union-attr]

    graph.add(
        Block(
            name=f"backfill_infer/{rid}",
            run=infer_run,
            depends_on=(f"backfill_retrieval/{rid}",),
            fold=infer_fold,
            journal=("backfill_infer", rid),
            enabled=infer_enabled,
            labels={"retailer": rid},
        )
    )

    def publish_enabled():
        return state.failure is None and state.result is not None

    def publish_run():
        accepted, reason = service._publish_retailer(day, rid, state.result, version)
        if accepted:
            payload = state.retrieval_payload
            if (
                payload is not None
                and payload["accepted"]
                and (service.retrieval_store.version_of(rid) or -1) < version
            ):
                # The day's own retrieval task was skipped (the retailer
                # had failed), so _load_retrieval_index finds nothing —
                # the backfilled index rides the version here instead.
                service.retrieval_store.load(rid, payload["index"], version)
        return {"accepted": accepted, "reason": reason}

    def publish_fold(payload):
        state.published = bool(payload["accepted"])
        state.reason = str(payload["reason"])
        if not state.published:
            state.failure = state.reason

    graph.add(
        Block(
            name=f"backfill_publish/{rid}",
            run=publish_run,
            depends_on=(f"backfill_infer/{rid}",),
            fold=publish_fold,
            journal=("backfill_publish", rid),
            enabled=publish_enabled,
            labels={"retailer": rid},
        )
    )
    graph.validate()
    return graph
