"""GraphRunner: deterministic bounded-parallel execution of a day graph.

The runner owns the concerns that used to be woven line-by-line through
``SigmundService._execute_day``:

* **Journaling** — a block with a ``journal`` key logs its payload to
  the WAL after its side effects land; on recovery the payload is read
  back and the block is *replayed* (fold only, no side effects).
* **Crash points** — ``pre_kill``/``post_kill`` stages are checked at
  exactly the positions the serial path checked them, so the fleet's
  kill-point matrix becomes a property of graph edges.
* **Retry / failure policy** — ``max_attempts`` retries catch
  ``Exception`` only; ``SimulatedCrash`` is a ``BaseException`` and
  pierces, exactly like a coordinator death.  A final failure either
  halts the run or skips the block's transitive dependents.
* **Bounded parallelism** — independent blocks overlap on up to
  ``max_parallelism`` lanes of a simulated clock.  Block bodies execute
  for real (sequentially, in deterministic pick order) at their
  simulated start time; ``duration`` shapes only the schedule and the
  makespan, never the results.  This mirrors how the cluster simulator
  treats machine time everywhere else in the repo.

Determinism: ready blocks are picked by declaration order (or by a
seeded tie-break when ``seed`` is given), so the same graph and seed
always produce the same execution order and the same schedule.  With
``max_parallelism=1`` the execution order *is*
``DayGraph.topological_order()``.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.dag.block import HALT, Block, DagError, Payload
from repro.dag.graph import DayGraph

# Terminal block statuses.
RAN = "ran"  # executed fresh this run; side effects + journal written
REPLAYED = "replayed"  # found in the journal; payload folded, no side effects
DISABLED = "disabled"  # enabled() returned False; dependents proceed
UNSELECTED = "unselected"  # outside the partial-run selection
BLOCKED = "blocked"  # a dependency was unselected/blocked, so it cannot run
FAILED = "failed"  # run() exhausted max_attempts (policy: skip)
SKIPPED = "skipped"  # a transitive dependency failed

EXECUTED_STATUSES = (RAN, REPLAYED)
#: Statuses whose block produced no effects; dependents cannot run.
DEAD_STATUSES = (FAILED, SKIPPED, UNSELECTED, BLOCKED)


@dataclass
class BlockRun:
    """The outcome of one block within a single graph run."""

    name: str
    status: str
    start: float = 0.0
    finish: float = 0.0
    lane: Optional[int] = None
    attempts: int = 0
    payload: Optional[Payload] = None
    error: Optional[str] = None


@dataclass
class GraphRunResult:
    runs: Dict[str, BlockRun]
    #: Names in the order their bodies executed (fresh or replayed).
    order: List[str] = field(default_factory=list)
    makespan: float = 0.0

    def __getitem__(self, name: str) -> BlockRun:
        return self.runs[name]

    def __contains__(self, name: object) -> bool:
        return name in self.runs

    def schedule(self) -> List[BlockRun]:
        """Lane-occupying runs (fresh + replayed) sorted by start time."""
        rows = [r for r in self.runs.values() if r.status in EXECUTED_STATUSES]
        return sorted(rows, key=lambda r: (r.start, r.finish, r.name))

    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for run in self.runs.values():
            counts[run.status] = counts.get(run.status, 0) + 1
        return counts

    def failures(self) -> List[BlockRun]:
        return [r for r in self.runs.values() if r.status == FAILED]


class GraphRunner:
    """Execute a :class:`DayGraph` under a simulated clock.

    ``journal``/``day`` wire block payloads into the WAL run journal;
    ``crash_check`` is called as ``crash_check(stage, label)`` at every
    declared kill point (the service passes ``SigmundService._check``).
    """

    def __init__(
        self,
        journal=None,
        day: int = 0,
        crash_check: Optional[Callable[[str, str], None]] = None,
        max_parallelism: int = 1,
        seed: Optional[int] = None,
    ) -> None:
        if max_parallelism < 1:
            raise DagError(f"max_parallelism must be >= 1, got {max_parallelism}")
        self.journal = journal
        self.day = day
        self.crash_check = crash_check
        self.max_parallelism = max_parallelism
        self.seed = seed

    # ------------------------------------------------------------------
    def run(
        self,
        graph: DayGraph,
        select: Optional[Callable[[str], bool]] = None,
    ) -> GraphRunResult:
        graph.validate()
        rng = random.Random(self.seed) if self.seed is not None else None
        pri: Dict[str, float] = {}
        for name in graph.names():
            pri[name] = rng.random() if rng is not None else float(len(pri))

        runs: Dict[str, BlockRun] = {}
        order: List[str] = []
        pending: Set[str] = set(graph.names())
        finished: Set[str] = set()  # effects complete; dependents may run
        dead: Set[str] = set()  # produced no effects; dependents may not
        running: List[Tuple[float, float, str]] = []  # (finish, priority, name)
        free_lanes = list(range(self.max_parallelism))
        heapq.heapify(free_lanes)
        now = 0.0

        def pick_key(name: str) -> Tuple[float, str]:
            return (pri[name], name)

        while pending or running:
            self._propagate_dead(graph, pending, dead, runs, pick_key)
            # Start every ready block a free lane allows, in priority order.
            while len(running) < self.max_parallelism:
                ready = [
                    n
                    for n in pending
                    if all(d in finished for d in graph.block(n).depends_on)
                ]
                if not ready:
                    break
                name = min(ready, key=pick_key)
                pending.discard(name)
                block_run = self._start(graph, name, now, select)
                runs[name] = block_run
                if block_run.status in EXECUTED_STATUSES:
                    order.append(name)
                    self._expand(graph, name, block_run, pri, pending, rng)
                if block_run.status == DISABLED:
                    finished.add(name)
                    continue
                if block_run.status in (FAILED, UNSELECTED):
                    dead.add(name)
                    self._propagate_dead(graph, pending, dead, runs, pick_key)
                    continue
                block_run.lane = heapq.heappop(free_lanes)
                heapq.heappush(running, (block_run.finish, pri[name], name))
            if running:
                now = max(now, running[0][0])
                while running and running[0][0] <= now:
                    _, _, name = heapq.heappop(running)
                    finished.add(name)
                    heapq.heappush(free_lanes, runs[name].lane)
            elif pending:
                # validate() rules out cycles, so this only happens when
                # every remaining block sits behind a dead subgraph that
                # _propagate_dead could not reach through finished deps.
                for name in sorted(pending, key=pick_key):
                    runs[name] = BlockRun(
                        name=name,
                        status=BLOCKED,
                        error="unreachable: dependencies never completed",
                    )
                    dead.add(name)
                pending.clear()
        return GraphRunResult(runs=runs, order=order, makespan=now)

    # ------------------------------------------------------------------
    def _propagate_dead(self, graph, pending, dead, runs, pick_key) -> None:
        changed = True
        while changed:
            changed = False
            for name in sorted(pending, key=pick_key):
                bad = next(
                    (d for d in graph.block(name).depends_on if d in dead), None
                )
                if bad is None:
                    continue
                cause = runs[bad].status
                status = SKIPPED if cause in (FAILED, SKIPPED) else BLOCKED
                runs[name] = BlockRun(
                    name=name, status=status, error=f"dependency {bad!r} was {cause}"
                )
                pending.discard(name)
                dead.add(name)
                changed = True

    def _start(
        self,
        graph: DayGraph,
        name: str,
        now: float,
        select: Optional[Callable[[str], bool]],
    ) -> BlockRun:
        block = graph.block(name)
        block_run = BlockRun(name=name, status=RAN, start=now, finish=now)
        # The guard runs first, exactly like the serial loop's
        # guard-and-continue, so a retailer knocked out upstream never
        # reaches the journal check.
        if block.enabled is not None and not block.enabled():
            block_run.status = DISABLED
            return block_run
        journaled = (
            self.journal is not None
            and block.journal is not None
            and self.journal.is_done(self.day, block.journal[0], block.journal[1])
        )
        if journaled:
            # Replays ignore the selection: a recovered day must fold the
            # complete journaled state even when only a slice reruns.
            payload = self.journal.task_payload(
                self.day, block.journal[0], block.journal[1]
            )
            block_run.status = REPLAYED
        else:
            if select is not None and not select(name):
                block_run.status = UNSELECTED
                return block_run
            if block.pre_kill is not None:
                self._check(*block.pre_kill)
            payload = self._attempt(block, block_run)
            if block_run.status == FAILED:
                return block_run
            if self.journal is not None and block.journal is not None:
                self.journal.log_task(
                    self.day, block.journal[0], block.journal[1], payload
                )
            if block.post_kill is not None:
                self._check(*block.post_kill)
            block_run.finish = now + block.duration_of(payload)
        block_run.payload = payload
        if block.fold is not None:
            block.fold(payload)
        return block_run

    def _attempt(self, block: Block, block_run: BlockRun) -> Optional[Payload]:
        error: Optional[Exception] = None
        for attempt in range(1, block.max_attempts + 1):
            block_run.attempts = attempt
            try:
                payload = block.run() if block.run is not None else {}
                return payload if payload is not None else {}
            except Exception as exc:  # SimulatedCrash is a BaseException: pierces
                error = exc
        block_run.status = FAILED
        block_run.error = f"{type(error).__name__}: {error}"
        if block.on_failure == HALT:
            raise error
        return None

    def _expand(self, graph, name, block_run, pri, pending, rng) -> None:
        block = graph.block(name)
        if block.expand is None:
            return
        new_blocks = list(block.expand(block_run.payload or {}))
        if not new_blocks:
            return
        # Blocks that already depend on the expander must also wait for
        # everything it spawned (wrapup waits for every inference cell).
        dependents = [d for d in graph.dependents_of(name) if d in pending]
        names = []
        for new_block in new_blocks:
            graph.add(new_block)
            pri[new_block.name] = rng.random() if rng is not None else float(len(pri))
            pending.add(new_block.name)
            names.append(new_block.name)
        for dep_name in dependents:
            graph.add_dependencies(dep_name, names)
        graph.validate()

    def _check(self, stage: str, label: str = "") -> None:
        if self.crash_check is not None:
            self.crash_check(stage, label)
