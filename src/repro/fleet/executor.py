"""Task executors: serial reference and the multiprocessing fleet pool.

An :class:`Executor` runs a batch of picklable :class:`FleetTask` items
and returns one :class:`TaskOutcome` per task.  Outcomes are keyed by
task id, so callers consume them in *their* order regardless of which
worker finished first — the property that keeps fleet runs byte-identical
to serial ones.

:class:`ProcessFleetExecutor` is the real pool: spawn-safe worker
processes (one pipe each), dispatched one task at a time so a crash is
attributable to exactly one task.  A worker that dies mid-task (SIGKILL,
OOM, segfault) is detected through its process sentinel, respawned, and
its task retried up to ``max_attempts`` times before the outcome comes
back :data:`CRASHED` — the pool never hangs and never shrinks.  Workers
persist across ``run_tasks`` calls, so the (substantial) spawn + import
cost is paid once per pool, not once per job.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import SigmundError, WorkerCrashError
from repro.obs.metrics import NULL_METRICS

#: Outcome statuses.
OK = "ok"
ERROR = "error"
CRASHED = "crashed"

#: Scheduling attempts per task before a crashing task is given up on.
#: Real MapReduce retries a task on worker death; two attempts catch the
#: transient kills (OOM from a co-tenant, a preempted container) while a
#: task that *deterministically* kills its worker fails fast instead of
#: cycling the pool MAX_TASK_ATTEMPTS times.
DEFAULT_MAX_ATTEMPTS = 2


@dataclass(frozen=True)
class FleetTask:
    """One unit of work: a picklable module-level callable plus payload."""

    task_id: str
    fn: Callable[[object], object]
    payload: object


@dataclass
class TaskOutcome:
    """What happened to one task."""

    task_id: str
    status: str  # OK | ERROR | CRASHED
    value: object = None
    #: The exception the task raised (ERROR) or the WorkerCrashError
    #: describing the worker death (CRASHED).
    error: Optional[BaseException] = None
    attempts: int = 1


class Executor:
    """Protocol for running fleet tasks; :class:`SerialExecutor` is the
    reference implementation, :class:`ProcessFleetExecutor` the pool."""

    name = "executor"
    #: Whether tasks may run concurrently (callers use this for sizing).
    parallel = False

    def run_tasks(self, tasks: Sequence[FleetTask]) -> Dict[str, TaskOutcome]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources; idempotent."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialExecutor(Executor):
    """Runs every task inline, in submission order.

    This is the executor-shaped form of the original serial path: the
    fleet parity suite compares it against :class:`ProcessFleetExecutor`
    to pin down that process placement changes nothing.
    """

    name = "serial"
    parallel = False

    def run_tasks(self, tasks: Sequence[FleetTask]) -> Dict[str, TaskOutcome]:
        outcomes: Dict[str, TaskOutcome] = {}
        for task in tasks:
            try:
                value = task.fn(task.payload)
            except Exception as exc:
                outcomes[task.task_id] = TaskOutcome(task.task_id, ERROR, error=exc)
            else:
                outcomes[task.task_id] = TaskOutcome(task.task_id, OK, value)
        return outcomes


def _fleet_worker_main(conn, worker_index: int) -> None:
    """Worker loop: receive ``(fn, payload)``, send ``(status, result)``.

    Module-level so it pickles by reference under the spawn start method.
    Any exception from the task function — including BaseExceptions like
    a stray SimulatedCrash — is shipped back as an ERROR rather than
    killing the worker; only a genuine process death (which this loop
    cannot observe) surfaces as a crash, detected parent-side via the
    process sentinel.
    """
    del worker_index
    while True:
        try:
            message = conn.recv()
        except (EOFError, KeyboardInterrupt, OSError):
            break
        if message is None:
            break
        fn, payload = message
        try:
            reply: Tuple[str, object] = (OK, fn(payload))
        except (KeyboardInterrupt, SystemExit):
            break
        except BaseException as exc:
            reply = (ERROR, exc)
        try:
            conn.send(reply)
        except Exception as exc:
            # The result (or the exception) did not pickle: the task is
            # still attributable, so report the transfer failure instead
            # of dying and looking like a worker crash.
            try:
                conn.send(
                    (ERROR, SigmundError(f"task result transfer failed: {exc!r}"))
                )
            except Exception:
                break
    conn.close()


@dataclass
class _Worker:
    process: multiprocessing.process.BaseProcess
    conn: object  # multiprocessing.connection.Connection
    restarts: int = 0


@dataclass
class _Inflight:
    task: FleetTask
    attempt: int


class ProcessFleetExecutor(Executor):
    """A fixed pool of spawned worker processes, one in-flight task each.

    * **Spawn-safe**: the ``spawn`` start method is the default (works on
      every platform and never inherits a half-locked fork state); tasks
      and results cross a per-worker pipe, so everything shipped must
      pickle.
    * **Sized by the machine**: ``n_workers`` defaults to
      ``os.cpu_count()`` — the fleet exists to turn cores into sweep
      throughput.
    * **Crash containment**: a worker death is observed on its process
      sentinel, attributed to its single in-flight task, the worker is
      respawned, and the task retried up to ``max_attempts`` times.
    * **Deterministic consumption**: outcomes are keyed by task id;
      completion order never leaks to callers.

    Pool metrics (worker crashes, restarts, task outcomes) go to the
    process-local registry passed here — never to a day registry, so a
    retried task cannot make a fleet day seal differ from a serial one.
    """

    name = "process"
    parallel = True

    def __init__(
        self,
        n_workers: Optional[int] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        start_method: str = "spawn",
        metrics=NULL_METRICS,
    ):
        if n_workers is not None and n_workers < 1:
            raise SigmundError("n_workers must be >= 1")
        if max_attempts < 1:
            raise SigmundError("max_attempts must be >= 1")
        self.n_workers = n_workers if n_workers else (os.cpu_count() or 1)
        self.max_attempts = max_attempts
        self.metrics = metrics
        self._ctx = multiprocessing.get_context(start_method)
        self._workers: List[Optional[_Worker]] = [None] * self.n_workers
        self._closed = False
        metrics.gauge("fleet_workers").set(self.n_workers)

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, index: int, restarts: int = 0) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_fleet_worker_main,
            args=(child_conn, index),
            name=f"fleet-worker-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # parent keeps only its end
        worker = _Worker(process=process, conn=parent_conn, restarts=restarts)
        self._workers[index] = worker
        return worker

    def _worker(self, index: int) -> _Worker:
        worker = self._workers[index]
        if worker is None or not worker.process.is_alive():
            restarts = worker.restarts if worker is not None else 0
            if worker is not None:
                self._reap(worker)
                restarts += 1
                self.metrics.counter("fleet_worker_restarts_total").inc()
            worker = self._spawn(index, restarts=restarts)
        return worker

    @staticmethod
    def _reap(worker: _Worker) -> None:
        try:
            worker.conn.close()
        except Exception:
            pass
        worker.process.join(timeout=5)
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=5)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_tasks(self, tasks: Sequence[FleetTask]) -> Dict[str, TaskOutcome]:
        if self._closed:
            raise SigmundError("executor is closed")
        from multiprocessing.connection import wait

        outcomes: Dict[str, TaskOutcome] = {}
        pending = deque(_Inflight(task, 1) for task in tasks)
        busy: Dict[int, _Inflight] = {}

        while pending or busy:
            # Fill every idle worker slot.
            for index in range(self.n_workers):
                if not pending:
                    break
                if index in busy:
                    continue
                inflight = pending.popleft()
                if not self._dispatch(index, inflight, busy):
                    self._crashed(inflight, pending, outcomes)
            if not busy:
                continue

            conn_index = {self._workers[i].conn: i for i in busy}
            sentinel_index = {
                self._workers[i].process.sentinel: i for i in busy
            }
            ready = wait(list(conn_index) + list(sentinel_index))
            handled = set()
            # Results first: a worker that answered and *then* died (e.g.
            # pool shutdown racing a late kill) still yields its result.
            for item in ready:
                if item in conn_index:
                    index = conn_index[item]
                    handled.add(index)
                    self._collect(index, busy, pending, outcomes)
            for item in ready:
                if item in sentinel_index:
                    index = sentinel_index[item]
                    if index in handled or index not in busy:
                        continue
                    # Dead process; drain a result that may have landed
                    # in the pipe just before death.
                    worker = self._workers[index]
                    if worker.conn.poll():
                        self._collect(index, busy, pending, outcomes)
                    else:
                        inflight = busy.pop(index)
                        self.metrics.counter("fleet_worker_crashes_total").inc()
                        self._reap(worker)
                        self._workers[index] = None
                        self._crashed(inflight, pending, outcomes)
        for outcome in outcomes.values():
            self.metrics.counter(
                "fleet_tasks_total", outcome=outcome.status
            ).inc()
        return outcomes

    def _dispatch(
        self, index: int, inflight: _Inflight, busy: Dict[int, _Inflight]
    ) -> bool:
        """Send a task to worker ``index``; False if the send itself died."""
        for _ in range(2):  # one respawn if the idle worker died in between
            worker = self._worker(index)
            try:
                worker.conn.send((inflight.task.fn, inflight.task.payload))
            except (BrokenPipeError, OSError):
                self._reap(worker)
                self._workers[index] = None
                continue
            busy[index] = inflight
            return True
        return False

    def _collect(
        self,
        index: int,
        busy: Dict[int, _Inflight],
        pending: deque,
        outcomes: Dict[str, TaskOutcome],
    ) -> None:
        worker = self._workers[index]
        inflight = busy.pop(index)
        try:
            status, value = worker.conn.recv()
        except (EOFError, OSError):
            # Died mid-send: treat as a crash of this task.
            self.metrics.counter("fleet_worker_crashes_total").inc()
            self._reap(worker)
            self._workers[index] = None
            self._crashed(inflight, pending, outcomes)
            return
        task_id = inflight.task.task_id
        if status == OK:
            outcomes[task_id] = TaskOutcome(
                task_id, OK, value, attempts=inflight.attempt
            )
        else:
            outcomes[task_id] = TaskOutcome(
                task_id, ERROR, error=value, attempts=inflight.attempt
            )

    def _crashed(
        self,
        inflight: _Inflight,
        pending: deque,
        outcomes: Dict[str, TaskOutcome],
    ) -> None:
        if inflight.attempt < self.max_attempts:
            pending.append(_Inflight(inflight.task, inflight.attempt + 1))
            return
        task_id = inflight.task.task_id
        error = WorkerCrashError(
            f"worker process died running task {task_id!r} "
            f"({inflight.attempt} attempts)",
            attempts=inflight.attempt,
        )
        outcomes[task_id] = TaskOutcome(
            task_id, CRASHED, error=error, attempts=inflight.attempt
        )

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            if worker is None:
                continue
            try:
                worker.conn.send(None)
            except Exception:
                pass
        for index, worker in enumerate(self._workers):
            if worker is None:
                continue
            self._reap(worker)
            self._workers[index] = None

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
