"""Picklable Train() task specs and the worker-side entry point.

One fleet task is one Train() invocation (the paper's per-config map
task).  The coordinator builds a :class:`TrainTaskSpec` — config, dataset,
settings, yesterday's model *state* (never the live object), and the
decoded resume checkpoint — ships it to a worker process, and gets a
:class:`TrainTaskResult` back: the output record, the trained state, a
metrics snapshot, and an ordered **event log** of the coordinator-side
effects the serial path would have performed inline.

The event log is what keeps crash-recovery equivalence intact: inside the
worker, checkpoint writes and ``CrashPlan`` probes are *recorded*, not
executed (a worker has no access to coordinator storage, and crash-plan
counters must observe the same global order as the serial run).  The
coordinator replays the log in record order through the real
:class:`~repro.core.checkpoint.CheckpointManager` (fault plans, stats)
and the real :class:`~repro.core.recovery.CrashPlan` — so a simulated
coordinator kill at ``train_epoch`` leaves byte-identical checkpoint
storage, and recovery resumes exactly as it does under the serial path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import ConfigRecord, OutputConfigRecord
from repro.data.datasets import RetailerDataset
from repro.obs.metrics import NULL_METRICS, MetricsRegistry, MetricsSnapshot

#: Event kinds recorded by the worker, replayed by the coordinator.
CHECKPOINT_EVENT = "checkpoint"
DISCARD_EVENT = "discard"
CRASH_CHECK_EVENT = "crash_check"


@dataclass(frozen=True)
class TrainTaskSpec:
    """Everything one worker process needs to run Train() for one config."""

    config: ConfigRecord
    dataset: RetailerDataset
    settings: object  # TrainerSettings (kept loose to avoid an import cycle)
    #: Yesterday's model as ``(model_kind, get_state() dict)``, or None.
    warm_state: Optional[Tuple[str, Dict[str, np.ndarray]]] = None
    #: Decoded resume checkpoint as ``(state, epoch)``, or None.
    resume: Optional[Tuple[Dict[str, np.ndarray], int]] = None
    #: Record crash-probe events (a CrashPlan is armed coordinator-side).
    record_crash_checks: bool = False
    #: Record per-task metrics into a fresh registry and ship the snapshot.
    metrics_enabled: bool = False


@dataclass
class TrainTaskResult:
    """What a Train() worker ships back to the coordinator."""

    output: OutputConfigRecord
    model_kind: str  # "bpr" | "wals"
    model_state: Dict[str, np.ndarray]
    #: Optimizer accumulators (BPR only; WALS has no optimizer state).
    optimizer_state: Dict[str, np.ndarray] = field(default_factory=dict)
    #: WALS hyper-params the worker trained with (rebuild needs them).
    wals_params: Optional[object] = None
    #: Ordered coordinator-side effects to replay (see module docstring).
    events: List[tuple] = field(default_factory=list)
    #: Per-task metrics snapshot (None when metrics are disabled).
    metrics: Optional[MetricsSnapshot] = None


class WorkerCheckpointRecorder:
    """Stands in for :class:`CheckpointManager` inside a worker process.

    Makes the same interval decisions the real manager would (first
    ``maybe_checkpoint`` for a key writes immediately; afterwards only
    once ``interval_seconds`` of simulated time elapsed; restore resets
    the clock), but *records* write/discard events instead of touching
    storage — fault plans, stats, and durability stay coordinator-side,
    where the replay applies them in record order.
    """

    def __init__(
        self,
        interval_seconds: float,
        resume: Optional[Tuple[Dict[str, np.ndarray], int]],
        events: List[tuple],
    ):
        self.interval_seconds = interval_seconds
        self._resume = resume
        self._events = events
        self._last_written: Dict[str, float] = {}

    def try_restore(self, key: str, model) -> Optional[int]:
        del key  # single-task recorder: the resume point is pre-resolved
        if self._resume is None:
            return None
        state, epoch = self._resume
        model.set_state(state)
        return epoch

    def maybe_checkpoint(self, key: str, model, now: float, epoch: int) -> bool:
        last = self._last_written.get(key)
        if last is not None and now - last < self.interval_seconds:
            return False
        self._last_written[key] = now
        self._events.append((CHECKPOINT_EVENT, epoch, now, model.get_state()))
        return True

    def discard(self, key: str) -> None:
        self._last_written.pop(key, None)
        self._events.append((DISCARD_EVENT,))


class WorkerCrashProbe:
    """Stands in for :class:`CrashPlan` inside a worker process.

    Never raises — a worker cannot know the plan's global counters (an
    ``nth`` rule counts across *all* configs in coordinator order), so it
    records every probe and lets the coordinator replay them against the
    one real plan.  A task that would have crashed mid-epoch therefore
    trains to completion in the worker; the replay fires the crash at the
    equivalent point and discards the surplus work, which is invisible to
    every output surface (nothing past the crash is published, journaled,
    billed, or sealed).
    """

    def __init__(self, events: List[tuple]):
        self._events = events

    def check(self, stage: str, label: str = "") -> None:
        self._events.append((CRASH_CHECK_EVENT, stage, label))


def run_train_task(spec: TrainTaskSpec) -> TrainTaskResult:
    """Worker entry point: one Train() invocation from a picklable spec.

    Module-level (pickles by reference under spawn) and usable inline by
    :class:`~repro.fleet.executor.SerialExecutor` — the parity suite runs
    the same function both ways.
    """
    from repro.core.training import train_config

    registry = MetricsRegistry() if spec.metrics_enabled else NULL_METRICS
    events: List[tuple] = []
    recorder = WorkerCheckpointRecorder(
        spec.settings.checkpoint_interval_seconds, spec.resume, events
    )
    probe = WorkerCrashProbe(events) if spec.record_crash_checks else None
    model, output = train_config(
        spec.config,
        spec.dataset,
        settings=spec.settings,
        warm_state=spec.warm_state,
        checkpoints=recorder,
        crash_plan=probe,
        metrics=registry,
    )
    if spec.config.model_kind == "wals":
        return TrainTaskResult(
            output=output,
            model_kind="wals",
            model_state=model.get_state(),
            wals_params=model.params,
            events=events,
            metrics=registry.snapshot() if spec.metrics_enabled else None,
        )
    return TrainTaskResult(
        output=output,
        model_kind="bpr",
        model_state=model.get_state(),
        optimizer_state=model.optimizer.get_state(),
        events=events,
        metrics=registry.snapshot() if spec.metrics_enabled else None,
    )


def rebuild_trained_model(
    config: ConfigRecord, dataset: RetailerDataset, result: TrainTaskResult
):
    """Coordinator-side model reconstruction from a task result.

    States cross the process boundary, objects do not: the rebuilt model
    shares the coordinator's catalog/taxonomy objects (exactly like the
    serial path's model) and carries the worker's trained parameters and
    optimizer accumulators.
    """
    if result.model_kind == "wals":
        from repro.models.wals import WALSModel

        model = WALSModel(
            dataset.n_items, result.wals_params, retailer_id=dataset.retailer_id
        )
        model.set_state(result.model_state)
        return model
    from repro.models.bpr import BPRModel

    model = BPRModel(dataset.catalog, dataset.taxonomy, config.params)
    model.set_state(result.model_state)
    model.optimizer.set_state(result.optimizer_state)
    return model
