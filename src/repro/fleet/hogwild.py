"""Shared-memory Hogwild: lock-free SGD across worker *processes*.

:class:`~repro.core.training.HogwildTrainer` reproduces the paper's
lock-free threading semantics, but CPython threads share one GIL, so its
real wall-clock speedup is nil.  This module is the fleet's real-memory
version: every model parameter and Adagrad accumulator lives in one
``multiprocessing.shared_memory`` segment
(:class:`~repro.fleet.sharedmem.SharedArrayBlock`), and ``n_processes``
spawned workers run :meth:`BPRModel.sgd_step` against the *same physical
arrays* with no locks — exactly the benign-race recipe of Niu et
al. [24], with processes standing in for threads.

Determinism: every lane seeds from
:func:`repro.rng.derive_worker_seed(seed, process_index, 0, ...)` —
logical lane indices, never pids — and each worker rebuilds the identical
example list from the dataset (same construction seed), then takes the
``examples[p::n]`` shard.  With ``n_processes=1`` the run is exactly
reproducible; with more, losses vary benignly with interleaving while
the update *schedule* per lane stays fixed.

The E25 bench times this class under a wall clock — replacing the
``TrainerSettings.thread_speedup()`` analytical model with a measured
speedup — while the cluster simulator keeps using the analytical model
for scheduling, billing, and preemption.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
from typing import Dict, List

from repro.data.datasets import RetailerDataset
from repro.exceptions import ConfigError, SigmundError
from repro.fleet.sharedmem import SharedArrayBlock, attach_shared_arrays
from repro.models.bpr import BPRModel
from repro.models.trainer import BPRTrainer, TrainingReport
from repro.rng import derive_worker_seed, make_rng

#: Namespace prefix for optimizer accumulators inside the shared block
#: ("//" cannot collide with parameter names).
OPT_PREFIX = "opt//"

#: Per-epoch synchronization timeout; a worker that stalls this long is
#: considered lost and the run aborts instead of hanging forever.
_SYNC_TIMEOUT_SECONDS = 300.0


def _epoch_pass(model: BPRModel, sampler, shard, rng) -> float:
    """One lock-free pass of one lane over its shard; returns loss total."""
    total = 0.0
    order = rng.permutation(len(shard))
    for position in order:
        example = shard[position]
        negative = example.negative
        if negative is None:
            negative = sampler.sample(example.context, example.positive, rng)
        total += model.sgd_step(example.context, example.positive, negative)
    return total


def _hogwild_worker_main(
    handle,
    worker_index: int,
    n_processes: int,
    dataset: RetailerDataset,
    params,
    max_epochs: int,
    seed: int,
    barrier,
    results,
) -> None:
    """One Hogwild lane (module-level: pickles by reference under spawn).

    Attaches the shared segment, points a fresh model (and its optimizer)
    at the shared buffers, and trains its shard.  The per-epoch barrier
    keeps lanes on the same epoch — the paper's threads also advance an
    epoch together — so "epoch e mean loss" is well-defined.
    """
    views, shm = attach_shared_arrays(handle)
    try:
        model = BPRModel(dataset.catalog, dataset.taxonomy, params)
        model.bind_parameters(
            {
                name: view
                for name, view in views.items()
                if not name.startswith(OPT_PREFIX)
            }
        )
        accumulators = {
            name[len(OPT_PREFIX) :]: view
            for name, view in views.items()
            if name.startswith(OPT_PREFIX)
        }
        if accumulators:
            model.optimizer.bind_state(accumulators)
        # Same construction seed in every lane -> identical example list;
        # the lane trains only its examples[p::n] shard of it.
        base = BPRTrainer(model, dataset, max_epochs=max_epochs, seed=seed)
        shard = base.examples[worker_index::n_processes]
        for epoch in range(max_epochs):
            rng = make_rng(
                derive_worker_seed(seed, worker_index, 0, "hogwild", epoch)
            )
            total = _epoch_pass(model, base.sampler, shard, rng)
            results.put((worker_index, epoch, total, len(shard)))
            barrier.wait(timeout=_SYNC_TIMEOUT_SECONDS)
    finally:
        shm.close()


class SharedMemoryHogwild:
    """Trains one model with ``n_processes`` lock-free worker processes.

    The caller's ``model`` provides the initial parameters and receives
    the trained ones back (optimizer accumulators included), so it slots
    in wherever a serial :class:`BPRTrainer` result is expected.
    """

    def __init__(
        self,
        model: BPRModel,
        dataset: RetailerDataset,
        n_processes: int = 2,
        max_epochs: int = 5,
        seed: int = 0,
        start_method: str = "spawn",
    ):
        if n_processes < 1:
            raise ConfigError("n_processes must be >= 1")
        if dataset.retailer_id != model.retailer_id:
            raise ConfigError(
                f"model for {model.retailer_id!r} cannot train on "
                f"{dataset.retailer_id!r} data"
            )
        self.model = model
        self.dataset = dataset
        self.n_processes = n_processes
        self.max_epochs = max_epochs
        self.seed = seed
        self._start_method = start_method

    def train(self) -> TrainingReport:
        if self.n_processes == 1:
            return self._train_inline()
        return self._train_processes()

    def _train_inline(self) -> TrainingReport:
        """Single-lane reference path: no shared memory, fully deterministic."""
        base = BPRTrainer(
            self.model, self.dataset, max_epochs=self.max_epochs, seed=self.seed
        )
        report = TrainingReport()
        shard = base.examples
        if not shard:
            return report
        for epoch in range(self.max_epochs):
            rng = make_rng(derive_worker_seed(self.seed, 0, 0, "hogwild", epoch))
            total = _epoch_pass(self.model, base.sampler, shard, rng)
            report.epochs_run = epoch + 1
            report.sgd_steps += len(shard)
            report.epoch_losses.append(total / len(shard))
        return report

    def _train_processes(self) -> TrainingReport:
        model = self.model
        shared: Dict[str, object] = dict(model.get_state())
        for name, values in model.optimizer.get_state().items():
            shared[OPT_PREFIX + name] = values
        block = SharedArrayBlock(shared)  # type: ignore[arg-type]
        ctx = multiprocessing.get_context(self._start_method)
        barrier = ctx.Barrier(self.n_processes)
        results = ctx.Queue()
        workers: List[multiprocessing.process.BaseProcess] = []
        try:
            for index in range(self.n_processes):
                process = ctx.Process(
                    target=_hogwild_worker_main,
                    args=(
                        block.handle,
                        index,
                        self.n_processes,
                        self.dataset,
                        model.params,
                        self.max_epochs,
                        self.seed,
                        barrier,
                        results,
                    ),
                    name=f"hogwild-lane-{index}",
                    daemon=True,
                )
                process.start()
                workers.append(process)
            report = self._drain(results, workers)
            for process in workers:
                process.join(timeout=_SYNC_TIMEOUT_SECONDS)
            # Copy the shared (trained) arrays back into the caller's model.
            model.set_state(
                {
                    name: array
                    for name, array in block.arrays.items()
                    if not name.startswith(OPT_PREFIX)
                }
            )
            model.optimizer.set_state(
                {
                    name[len(OPT_PREFIX) :]: array
                    for name, array in block.arrays.items()
                    if name.startswith(OPT_PREFIX)
                }
            )
            return report
        finally:
            for process in workers:
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5)
            block.close()
            block.unlink()

    def _drain(self, results, workers) -> TrainingReport:
        """Collect every lane's per-epoch message; abort if a lane is lost."""
        epoch_losses = [0.0] * self.max_epochs
        epoch_counts = [0] * self.max_epochs
        expected = self.n_processes * self.max_epochs
        for _ in range(expected):
            stalled = 0.0
            while True:
                try:
                    _, epoch, total, count = results.get(timeout=5.0)
                    break
                except queue_module.Empty:
                    stalled += 5.0
                    # A lane that exited cleanly has already flushed all
                    # its messages; only an abnormal exit (or a full sync
                    # timeout with nothing arriving) is a lost lane.
                    crashed = any(
                        process.exitcode not in (None, 0)
                        for process in workers
                    )
                    if crashed or stalled >= _SYNC_TIMEOUT_SECONDS:
                        raise SigmundError(
                            "hogwild lane died before finishing its epochs"
                        ) from None
            epoch_losses[epoch] += total
            epoch_counts[epoch] += count
        report = TrainingReport()
        report.epochs_run = self.max_epochs
        report.sgd_steps = sum(epoch_counts)
        report.epoch_losses = [
            epoch_losses[epoch] / max(1, epoch_counts[epoch])
            for epoch in range(self.max_epochs)
        ]
        return report
