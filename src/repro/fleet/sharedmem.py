"""Shared-memory array blocks for cross-process Hogwild.

One :class:`SharedArrayBlock` packs a named set of numpy arrays into a
single ``multiprocessing.shared_memory`` segment.  The owner copies the
initial values in and hands workers a picklable
:class:`SharedStateHandle`; :func:`attach_shared_arrays` in a worker maps
the *same physical pages*, so lock-free updates from any process are
immediately visible to all — the property Hogwild (Niu et al. [24])
relies on.

Offsets are 64-byte aligned so concurrently-updated arrays never share a
cache line at their boundaries (false sharing would serialize the very
updates Hogwild leaves unsynchronized).
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Tuple

import numpy as np

from repro.exceptions import SigmundError

#: Cache-line alignment for array offsets within the segment.
_ALIGN = 64


@dataclass(frozen=True)
class SharedArraySpec:
    """Placement of one named array inside the shared segment."""

    name: str
    shape: Tuple[int, ...]
    dtype: str
    offset: int


@dataclass(frozen=True)
class SharedStateHandle:
    """Picklable description of a shared segment; workers attach via
    :func:`attach_shared_arrays`."""

    shm_name: str
    specs: Tuple[SharedArraySpec, ...]
    size: int


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class SharedArrayBlock:
    """Owner side of a shared segment: allocates, seeds, and unlinks.

    ``block.arrays`` are numpy views over the shared pages — the owner
    trains through them exactly like private arrays, then
    :meth:`close`/:meth:`unlink` when the workers are done.
    """

    def __init__(self, arrays: Dict[str, np.ndarray]):
        if not arrays:
            raise SigmundError("shared block needs at least one array")
        specs: List[SharedArraySpec] = []
        offset = 0
        for name, values in arrays.items():
            offset = _aligned(offset)
            specs.append(
                SharedArraySpec(
                    name=name,
                    shape=tuple(values.shape),
                    dtype=values.dtype.str,
                    offset=offset,
                )
            )
            offset += values.nbytes
        size = max(offset, 1)
        self._shm = shared_memory.SharedMemory(create=True, size=size)
        self.handle = SharedStateHandle(
            shm_name=self._shm.name, specs=tuple(specs), size=size
        )
        self.arrays: Dict[str, np.ndarray] = {}
        for spec in specs:
            view = _view(self._shm, spec)
            view[...] = arrays[spec.name]
            self.arrays[spec.name] = view
        self._closed = False

    def close(self) -> None:
        """Drop this process's mapping (views become invalid)."""
        if self._closed:
            return
        self._closed = True
        self.arrays = {}
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment itself; call once, after every close()."""
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedArrayBlock":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
        self.unlink()


def _view(shm: shared_memory.SharedMemory, spec: SharedArraySpec) -> np.ndarray:
    return np.ndarray(
        spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf, offset=spec.offset
    )


def attach_shared_arrays(
    handle: SharedStateHandle,
) -> Tuple[Dict[str, np.ndarray], shared_memory.SharedMemory]:
    """Worker side: map the segment and return ``(views, shm)``.

    The caller must keep ``shm`` alive as long as the views are in use
    and ``shm.close()`` when done.  The worker never unlinks — the owner
    does — so the attach must not be resource-tracked: spawn children
    share the parent's tracker process, and registering (or
    unregistering) the name here would clobber the owner's registration
    and either unlink the segment under the owner or make the owner's
    own cleanup fail.  Python 3.13 exposes this as ``track=False``;
    suppressing ``register`` during attach is the supported-on-3.11
    equivalent.
    """
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        shm = shared_memory.SharedMemory(name=handle.shm_name)
    finally:
        resource_tracker.register = original_register
    views = {spec.name: _view(shm, spec) for spec in handle.specs}
    return views, shm
