"""The process-parallel training fleet.

The cluster simulator schedules thousands of Train() tasks in *simulated*
parallel, but until this package existed every map task's real compute ran
in one Python process.  ``repro.fleet`` adds the missing real parallelism
at both levels the paper describes (section IV-B):

* **Across configs** — :class:`ProcessFleetExecutor` fans per-config map
  tasks over a pool of spawned worker processes behind the
  :class:`Executor` protocol; the serial in-process path stays the
  reference implementation and the simulated-clock billing/preemption/
  checkpoint semantics remain the scheduling layer on top.
* **Within one config** — :class:`SharedMemoryHogwild` trains one model
  with lock-free worker *processes* updating embedding and optimizer
  arrays allocated in ``multiprocessing.shared_memory``, the real-memory
  version of the paper's Hogwild threads.

Determinism contract: every Train() task is fully seeded from its config
record and every Hogwild lane from :func:`repro.rng.derive_worker_seed`,
so a sweep run through the fleet is byte-identical to the serial run —
worker placement never moves a random draw.
"""

from repro.fleet.executor import (
    CRASHED,
    ERROR,
    OK,
    Executor,
    FleetTask,
    ProcessFleetExecutor,
    SerialExecutor,
    TaskOutcome,
)
from repro.fleet.hogwild import SharedMemoryHogwild
from repro.fleet.sharedmem import SharedArrayBlock, attach_shared_arrays
from repro.fleet.tasks import TrainTaskResult, TrainTaskSpec, run_train_task

__all__ = [
    "CRASHED",
    "ERROR",
    "OK",
    "Executor",
    "FleetTask",
    "ProcessFleetExecutor",
    "SerialExecutor",
    "TaskOutcome",
    "SharedMemoryHogwild",
    "SharedArrayBlock",
    "attach_shared_arrays",
    "TrainTaskResult",
    "TrainTaskSpec",
    "run_train_task",
]
