"""The distributed serving tier (paper section II-A).

"The recommendations are loaded into a distributed serving system that
leverages main-memory and flash to serve low-latency requests."

This module simulates that system faithfully enough to study its
behaviour:

* recommendations are **sharded** by (retailer, item) hash across
  serving nodes, with **replication** for availability,
* each node holds a **memory tier** (hot entries, ~sub-millisecond) and
  a **flash tier** (everything else, ~an order of magnitude slower);
  hot/cold placement follows item popularity, since head items take most
  of the traffic,
* batch updates **roll out replica by replica** so the fleet keeps
  serving during a load (and a reader sees one version per replica,
  never a torn table),
* node failures route lookups to surviving replicas.

Latencies are simulated (deterministic per tier plus per-node constants)
so tests and benches can assert on them exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ServingError
from repro.models.base import ScoredItem
from repro.rng import hash_string

#: Simulated lookup latencies by tier, in milliseconds.
MEMORY_LATENCY_MS = 0.3
FLASH_LATENCY_MS = 4.0
#: Per-extra-replica-hop penalty when failing over.
FAILOVER_PENALTY_MS = 0.8


@dataclass
class LookupResult:
    """One lookup's answer plus where/how it was served."""

    recommendations: List[ScoredItem]
    latency_ms: float
    node_id: int
    tier: str
    version: int


@dataclass
class _ShardReplica:
    """One replica of one shard on one node.

    Versions are tracked **per retailer**: several retailers hash into
    the same shard, each with its own batch cadence, so a single replica
    version would lie for every retailer except whichever loaded last.
    """

    versions: Dict[str, int] = field(default_factory=dict)
    memory: Dict[Tuple[str, int], List[ScoredItem]] = field(default_factory=dict)
    flash: Dict[Tuple[str, int], List[ScoredItem]] = field(default_factory=dict)

    def version_of(self, retailer_id: str) -> int:
        return self.versions.get(retailer_id, 0)


class ServingNode:
    """A serving machine holding replicas of several shards."""

    def __init__(self, node_id: int, memory_capacity_entries: int = 10_000):
        self.node_id = node_id
        self.memory_capacity_entries = memory_capacity_entries
        self.replicas: Dict[int, _ShardReplica] = {}
        self.alive = True
        self.lookups = 0
        #: Hot entries pushed down to flash because the memory tier was full.
        self.demotions = 0

    def memory_entries(self) -> int:
        return sum(len(replica.memory) for replica in self.replicas.values())

    def install(
        self,
        shard_id: int,
        version: int,
        hot: Mapping[Tuple[str, int], List[ScoredItem]],
        cold: Mapping[Tuple[str, int], List[ScoredItem]],
        versions: Optional[Mapping[str, int]] = None,
    ) -> None:
        """Atomically replace this node's replica of one shard.

        ``versions`` maps retailer id -> table version for every retailer
        present in the replica; when omitted, every retailer appearing in
        the keys is assumed to be at ``version`` (the single-tenant case).
        """
        if versions is None:
            versions = {key[0]: version for key in (*hot, *cold)}
        replica = _ShardReplica(
            versions=dict(versions), memory=dict(hot), flash=dict(cold)
        )
        self.replicas[shard_id] = replica
        self._enforce_memory_capacity()

    def _enforce_memory_capacity(self) -> None:
        """Demote the weakest hot entries to flash once memory is full.

        The memory tier is the scarce resource; when installs push it past
        ``memory_capacity_entries`` the entries with the weakest top
        recommendation score (the proxy for traffic) spill to flash —
        they stay servable, just an order of magnitude slower.
        """
        overflow = self.memory_entries() - self.memory_capacity_entries
        if overflow <= 0:
            return
        ranked = sorted(
            (
                (recs[0].score if recs else float("-inf"), shard_id, key)
                for shard_id, replica in self.replicas.items()
                for key, recs in replica.memory.items()
            ),
        )
        for _, shard_id, key in ranked[:overflow]:
            replica = self.replicas[shard_id]
            replica.flash[key] = replica.memory.pop(key)
            self.demotions += 1

    def lookup(self, shard_id: int, key: Tuple[str, int]) -> Optional[LookupResult]:
        if not self.alive:
            return None
        replica = self.replicas.get(shard_id)
        if replica is None:
            return None
        self.lookups += 1
        version = replica.version_of(key[0])
        if key in replica.memory:
            return LookupResult(
                list(replica.memory[key]), MEMORY_LATENCY_MS,
                self.node_id, "memory", version,
            )
        if key in replica.flash:
            return LookupResult(
                list(replica.flash[key]), FLASH_LATENCY_MS,
                self.node_id, "flash", version,
            )
        return LookupResult([], MEMORY_LATENCY_MS, self.node_id, "memory",
                            version)


class ServingCluster:
    """Sharded, replicated, tiered serving of precomputed recommendations."""

    def __init__(
        self,
        n_nodes: int = 4,
        n_shards: int = 16,
        replication: int = 2,
        hot_fraction: float = 0.2,
        memory_capacity_entries: int = 10_000,
    ):
        if n_nodes < 1:
            raise ServingError("need at least one serving node")
        if not 1 <= replication <= n_nodes:
            raise ServingError("replication must be in [1, n_nodes]")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ServingError("hot_fraction must be in [0, 1]")
        self.nodes = [
            ServingNode(node_id, memory_capacity_entries)
            for node_id in range(n_nodes)
        ]
        self.n_shards = n_shards
        self.replication = replication
        self.hot_fraction = hot_fraction
        self._versions: Dict[str, int] = {}
        self.failovers = 0
        #: Replica probes skipped for free because their circuit breaker
        #: was open (vs. ``failovers``, each of which costs a penalty).
        self.breaker_skips = 0
        #: Called with the retailer id after every completed batch load,
        #: so caches layered above the cluster (the frontend's response
        #: cache) can drop entries computed against the old version.
        self._invalidation_listeners: List[Callable[[str], None]] = []

    def subscribe_invalidation(self, listener: Callable[[str], None]) -> None:
        """Register a callback fired after each retailer's batch load."""
        self._invalidation_listeners.append(listener)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def shard_of(self, retailer_id: str, item_index: int) -> int:
        return hash_string(f"{retailer_id}#{item_index}") % self.n_shards

    def replica_nodes(self, shard_id: int) -> List[ServingNode]:
        """The nodes hosting a shard (primary first, deterministic)."""
        start = shard_id % len(self.nodes)
        return [
            self.nodes[(start + offset) % len(self.nodes)]
            for offset in range(self.replication)
        ]

    # ------------------------------------------------------------------
    # Batch loading with staged rollout
    # ------------------------------------------------------------------
    def load_batch(
        self,
        retailer_id: str,
        recommendations: Mapping[int, Sequence[ScoredItem]],
        version: int,
    ) -> None:
        """Install a retailer's new table across all shards and replicas.

        Rollout is staged per replica index: every shard's replica 0 is
        updated first, then replica 1, and so on — at any instant each
        shard still has replicas serving, so a load never causes
        downtime.  Hot/cold placement: the strongest ``hot_fraction`` of
        items (by top recommendation score, the proxy for traffic) go to
        the memory tier.
        """
        current = self._versions.get(retailer_id, 0)
        if version <= current:
            raise ServingError(
                f"stale batch for {retailer_id!r}: {version} <= {current}"
            )
        per_shard: Dict[int, Dict[Tuple[str, int], List[ScoredItem]]] = {}
        for item, recs in recommendations.items():
            shard_id = self.shard_of(retailer_id, int(item))
            per_shard.setdefault(shard_id, {})[(retailer_id, int(item))] = list(recs)

        hot_keys = self._choose_hot(recommendations, retailer_id)
        for replica_index in range(self.replication):
            for shard_id, table in per_shard.items():
                node = self.replica_nodes(shard_id)[replica_index]
                hot = {k: v for k, v in table.items() if k in hot_keys}
                cold = {k: v for k, v in table.items() if k not in hot_keys}
                # Merge with whatever other retailers already live in this
                # shard replica (batch swap is per retailer), keeping each
                # co-tenant's own version — this retailer's load must not
                # clobber what version their lookups report.
                versions = {retailer_id: version}
                existing = node.replicas.get(shard_id)
                if existing is not None:
                    for key, value in existing.memory.items():
                        if key[0] != retailer_id:
                            hot[key] = value
                    for key, value in existing.flash.items():
                        if key[0] != retailer_id:
                            cold[key] = value
                    for other, other_version in existing.versions.items():
                        if other != retailer_id:
                            versions[other] = other_version
                node.install(shard_id, version, hot, cold, versions=versions)
        self._versions[retailer_id] = version
        for listener in self._invalidation_listeners:
            listener(retailer_id)

    def _choose_hot(
        self,
        recommendations: Mapping[int, Sequence[ScoredItem]],
        retailer_id: str,
    ) -> set:
        # Items with no recommendations can never be hot: they carry no
        # traffic worth sub-millisecond latency and must not occupy the
        # scarce memory tier ahead of real head items.
        ranked = sorted(
            (pair for pair in recommendations.items() if pair[1]),
            key=lambda pair: (-pair[1][0].score, int(pair[0])),
        )
        n_hot = int(round(len(recommendations) * self.hot_fraction))
        return {
            (retailer_id, int(item)) for item, _ in ranked[:n_hot]
        }

    # ------------------------------------------------------------------
    # Lookups with failover
    # ------------------------------------------------------------------
    def lookup(
        self,
        retailer_id: str,
        item_index: int,
        breakers=None,
        now_ms: float = 0.0,
    ) -> LookupResult:
        """Serve one lookup, failing over across replicas as needed.

        With a :class:`~repro.serving.overload.BreakerBoard` supplied,
        replicas whose breaker is open are skipped *for free* (no
        failover penalty — the whole point of tripping the breaker), and
        every probe outcome is recorded back into the board.  Without
        one, the walk is the original blind failover: each dead replica
        costs :data:`FAILOVER_PENALTY_MS` on every single request.
        """
        if retailer_id not in self._versions:
            raise ServingError(f"no data loaded for {retailer_id!r}")
        shard_id = self.shard_of(retailer_id, item_index)
        penalty = 0.0
        for node in self.replica_nodes(shard_id):
            if breakers is not None and not breakers.allow(node.node_id, now_ms):
                self.breaker_skips += 1
                continue
            result = node.lookup(shard_id, (retailer_id, item_index))
            if result is not None:
                if breakers is not None:
                    breakers.record_success(node.node_id, now_ms)
                result.latency_ms += penalty
                return result
            if breakers is not None:
                breakers.record_failure(node.node_id, now_ms)
            self.failovers += 1
            penalty += FAILOVER_PENALTY_MS
        raise ServingError(
            f"shard {shard_id} unavailable: all {self.replication} replicas "
            "down or circuit-broken"
        )

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def fail_node(self, node_id: int) -> None:
        self.nodes[node_id].alive = False

    def recover_node(self, node_id: int) -> None:
        self.nodes[node_id].alive = True

    def version_of(self, retailer_id: str) -> Optional[int]:
        return self._versions.get(retailer_id)

    def shard_balance(self) -> float:
        """max/mean entries per node (1.0 = perfectly even placement)."""
        sizes = [
            sum(
                len(replica.memory) + len(replica.flash)
                for replica in node.replicas.values()
            )
            for node in self.nodes
        ]
        total = sum(sizes)
        if total == 0:
            return 1.0
        mean = total / len(sizes)
        return max(sizes) / mean if mean else 1.0
