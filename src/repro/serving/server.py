"""The request-time recommendation path.

Serving-time computation is deliberately trivial (section II-A): look up
the precomputed recommendations for the context's recent items, merge
with recency weights, drop items the user has already touched, return the
top K.  No model evaluation happens here — new users work immediately
because everything is keyed by item, not user.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.data.events import EventType
from repro.data.sessions import UserContext
from repro.models.bpr import EVENT_CONTEXT_WEIGHT
from repro.serving.store import RecommendationStore

#: How many recent context items contribute lookups per request.
DEFAULT_CONTEXT_LOOKUPS = 3


@dataclass(frozen=True)
class ServedRecommendation:
    """One recommendation as returned to the frontend."""

    item_index: int
    score: float
    source_item: int


class RecommendationServer:
    """Merges precomputed per-item recommendations for a live context."""

    def __init__(
        self,
        store: RecommendationStore,
        context_lookups: int = DEFAULT_CONTEXT_LOOKUPS,
        recency_decay: float = 0.7,
    ):
        self.store = store
        self.context_lookups = context_lookups
        self.recency_decay = recency_decay

    def recommend(
        self,
        retailer_id: str,
        context: UserContext,
        k: int = 10,
    ) -> List[ServedRecommendation]:
        """Top-``k`` merged recommendations for a context.

        The most recent ``context_lookups`` context items each contribute
        their precomputed list; scores are blended with recency decay and
        the context event's strength, and already-seen items are dropped.
        """
        if len(context) == 0:
            return []
        seen = set(context.item_indices)
        merged: Dict[int, ServedRecommendation] = {}
        recent = list(zip(context.item_indices, context.events))[-self.context_lookups :]
        for age, (item, event) in enumerate(reversed(recent)):
            weight = (self.recency_decay ** age) * float(
                EVENT_CONTEXT_WEIGHT[EventType(event)]
            )
            for scored in self.store.lookup(retailer_id, item):
                if scored.item_index in seen:
                    continue
                blended = weight * scored.score
                existing = merged.get(scored.item_index)
                if existing is None or blended > existing.score:
                    merged[scored.item_index] = ServedRecommendation(
                        item_index=scored.item_index,
                        score=blended,
                        source_item=item,
                    )
        ranked = sorted(merged.values(), key=lambda rec: (-rec.score, rec.item_index))
        return ranked[:k]

    def recommend_for_item(
        self, retailer_id: str, item_index: int, k: int = 10
    ) -> List[ServedRecommendation]:
        """Item-page recommendations (single-item context)."""
        recs = self.store.lookup(retailer_id, item_index)
        return [
            ServedRecommendation(r.item_index, r.score, item_index)
            for r in recs[:k]
            if r.item_index != item_index
        ]
