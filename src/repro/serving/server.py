"""The request-time recommendation path.

Serving-time computation is deliberately trivial (section II-A): look up
the precomputed recommendations for the context's recent items, merge
with recency weights, drop items the user has already touched, return the
top K.  No model evaluation happens here — new users work immediately
because everything is keyed by item, not user.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Set, Tuple

from repro.data.events import EventType
from repro.data.sessions import UserContext
from repro.models.base import ScoredItem
from repro.models.bpr import EVENT_CONTEXT_WEIGHT
from repro.serving.store import RecommendationStore

#: How many recent context items contribute lookups per request.
DEFAULT_CONTEXT_LOOKUPS = 3


@dataclass(frozen=True)
class ServedRecommendation:
    """One recommendation as returned to the frontend."""

    item_index: int
    score: float
    source_item: int


def blend_context_lookups(
    recent: Sequence[Tuple[int, EventType]],
    recs_for: Callable[[int], Iterable[ScoredItem]],
    recency_decay: float,
    seen: Set[int],
    k: int,
) -> List[ServedRecommendation]:
    """Merge per-item lookups into one ranked list (the serving blend).

    ``recent`` is the context's most recent ``(item, event)`` pairs,
    oldest first; each contributes the lookup ``recs_for(item)``, its
    scores weighted by recency decay and the event's context strength.
    Items in ``seen`` are dropped; on collisions the strongest blended
    score wins.  Shared by the in-process :class:`RecommendationServer`
    and the online :class:`~repro.serving.frontend.ServingFrontend`, so
    both tiers rank identically given the same lookups.
    """
    merged: Dict[int, ServedRecommendation] = {}
    for age, (item, event) in enumerate(reversed(list(recent))):
        weight = (recency_decay ** age) * float(
            EVENT_CONTEXT_WEIGHT[EventType(event)]
        )
        for scored in recs_for(item):
            if scored.item_index in seen:
                continue
            blended = weight * scored.score
            existing = merged.get(scored.item_index)
            if existing is None or blended > existing.score:
                merged[scored.item_index] = ServedRecommendation(
                    item_index=scored.item_index,
                    score=blended,
                    source_item=item,
                )
    ranked = sorted(merged.values(), key=lambda rec: (-rec.score, rec.item_index))
    return ranked[:k]


class RecommendationServer:
    """Merges precomputed per-item recommendations for a live context."""

    def __init__(
        self,
        store: RecommendationStore,
        context_lookups: int = DEFAULT_CONTEXT_LOOKUPS,
        recency_decay: float = 0.7,
    ):
        self.store = store
        self.context_lookups = context_lookups
        self.recency_decay = recency_decay

    def recommend(
        self,
        retailer_id: str,
        context: UserContext,
        k: int = 10,
    ) -> List[ServedRecommendation]:
        """Top-``k`` merged recommendations for a context.

        The most recent ``context_lookups`` context items each contribute
        their precomputed list; scores are blended with recency decay and
        the context event's strength, and already-seen items are dropped.
        """
        if len(context) == 0:
            return []
        recent = list(zip(context.item_indices, context.events))[-self.context_lookups :]
        return blend_context_lookups(
            recent,
            lambda item: self.store.lookup(retailer_id, item),
            self.recency_decay,
            set(context.item_indices),
            k,
        )

    def recommend_for_item(
        self, retailer_id: str, item_index: int, k: int = 10
    ) -> List[ServedRecommendation]:
        """Item-page recommendations (single-item context).

        Self-recommendations are filtered *before* taking the top ``k``,
        so an item appearing in its own list never shortens the page.
        """
        recs = [
            r for r in self.store.lookup(retailer_id, item_index)
            if r.item_index != item_index
        ]
        return [
            ServedRecommendation(r.item_index, r.score, item_index)
            for r in recs[:k]
        ]
