"""The online serving frontend: the request path in front of the cluster.

The paper's architecture (section II-A) makes serving-time computation
trivial — precomputed per-item tables behind a low-latency distributed
store — so the frontend's job is plumbing, not math:

* resolve a user request (retailer, context) into per-item lookups
  against the sharded :class:`~repro.serving.cluster.ServingCluster`,
* blend the lookups with recency/strength weights (the exact
  :func:`~repro.serving.server.blend_context_lookups` semantics the
  in-process server uses),
* apply the head/tail hybrid policy at request time: head contexts are
  fully covered by precomputed tables; thin tail results are topped up
  from the co-occurrence/popularity fallback,
* degrade instead of failing — the **fallback chain** is
  fresh table -> stale table (counted, still served) -> popularity
  fallback -> empty list.  The request path never raises
  :class:`~repro.exceptions.ServingError`,
* cache responses in an **LRU + TTL** cache keyed by
  ``(retailer_id, context signature)`` and **coalesce** identical
  in-flight requests so one computation feeds every duplicate,
* account **simulated latency** per request: the sum of cluster tier
  latencies (memory/flash plus failover penalties) plus fixed costs for
  blending, fallback, cache hits, and coalesced waits,
* under an :class:`~repro.serving.overload.OverloadProtection` bundle,
  survive hostile workloads: token-bucket **admission control** sheds
  excess load to the popularity fallback before the
  :class:`~repro.serving.overload.ServerQueue` can collapse, per-replica
  **circuit breakers** skip dead replicas for free instead of paying the
  blind failover walk, and per-request **deadline budgets** (bounded
  retry + backoff, every millisecond charged) guarantee
  ``latency_ms <= deadline_ms`` on every protected response.

Every request terminates in **exactly one** serving bucket — cache,
coalesced, fresh, stale, fallback, shed, or empty — so the counts
conserve: their sum always equals ``requests`` (the availability
accounting the chaos acceptance checks read).

Counters (``frontend_requests_total``, ``frontend_cache_hits_total``,
``frontend_stale_serves_total``, ``frontend_fallback_total`` labeled by
stage, ``frontend_shed_total`` labeled by reason, ...) flow into a
:mod:`repro.obs` metrics registry.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.data.sessions import UserContext
from repro.exceptions import ServingError
from repro.models.base import ScoredItem
from repro.obs.metrics import NULL_METRICS
from repro.rng import hash_string
from repro.serving.cluster import (
    FAILOVER_PENALTY_MS,
    FLASH_LATENCY_MS,
    ServingCluster,
)
from repro.serving.overload import (
    SHED_LATENCY_MS,
    OverloadProtection,
    ServerQueue,
)
from repro.serving.server import (
    DEFAULT_CONTEXT_LOOKUPS,
    ServedRecommendation,
    blend_context_lookups,
)

#: Simulated fixed costs on the request path, in milliseconds.
CACHE_HIT_LATENCY_MS = 0.05
COALESCED_LATENCY_MS = 0.05
BLEND_LATENCY_MS = 0.1
FALLBACK_LATENCY_MS = 0.5
#: One ANN index probe (in-memory inverted lists; cheaper than the
#: popularity scan but pricier than a cache hit).
RETRIEVAL_LATENCY_MS = 0.3

#: Bucket bounds for the request latency histogram; the implicit +inf
#: bucket catches queueing-collapse outliers.
LATENCY_BUCKETS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0)
QUEUE_WAIT_BUCKETS = (0.1, 1.0, 5.0, 25.0, 100.0, 500.0, 2_000.0)


@dataclass(frozen=True)
class FrontendResponse:
    """One answered request: recommendations plus how they were served.

    ``served_from`` is one of ``"fresh"``, ``"stale"``, ``"fallback"``,
    ``"shed"``, ``"empty"``, or ``"cache"`` — the terminal stage of the
    fallback chain that produced the payload.
    """

    retailer_id: str
    recommendations: Tuple[ServedRecommendation, ...]
    latency_ms: float
    served_from: str
    version: int = 0
    stale: bool = False
    cache_hit: bool = False
    coalesced: bool = False
    fallback_stage: Optional[str] = None
    tail_augmented: int = 0
    #: Simulated wait for a free server charged by the queue model.
    queue_wait_ms: float = 0.0
    #: The compute path was cut short by the deadline budget.
    deadline_truncated: bool = False


@dataclass
class FrontendStats:
    """Request-path counters (mirrored into the metrics registry).

    The seven serving buckets — ``cache_hits``, ``coalesced``,
    ``fresh_serves``, ``stale_serves``, ``fallbacks``,
    ``empty_responses``, ``shed`` — are **mutually exclusive and
    exhaustive**: every request lands in exactly one, so
    :meth:`serving_buckets` always sums to ``requests``.
    """

    requests: int = 0
    cache_hits: int = 0
    coalesced: int = 0
    fresh_serves: int = 0
    stale_serves: int = 0
    fallbacks: int = 0
    empty_responses: int = 0
    #: Requests shed by admission control to the cheap fallback path.
    shed: int = 0
    shed_by_reason: Dict[str, int] = field(default_factory=dict)
    #: Requests whose compute path was truncated by the deadline budget.
    deadline_truncated: int = 0
    #: Bounded shard-walk retries charged with backoff.
    retries: int = 0
    #: Circuit breaker state transitions observed on this frontend.
    breaker_transitions: int = 0
    tail_augmented: int = 0
    cache_evictions: int = 0
    cache_expirations: int = 0
    #: Cached responses dropped because their table version was replaced
    #: (publish/rollback) before the TTL ran out.
    cache_invalidations: int = 0
    #: Coalesced joins refused because an invalidation landed between the
    #: leader's computation and the follower's arrival.
    coalesce_fenced: int = 0
    #: Tail slots filled from the retrieval index (before popularity).
    retrieval_topups: int = 0

    @property
    def cache_hit_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.cache_hits / self.requests

    def serving_buckets(self) -> Dict[str, int]:
        """The exclusive terminal buckets (sum == ``requests``)."""
        return {
            "cache": self.cache_hits,
            "coalesced": self.coalesced,
            "fresh": self.fresh_serves,
            "stale": self.stale_serves,
            "fallback": self.fallbacks,
            "shed": self.shed,
            "empty": self.empty_responses,
        }


class PopularityFallback:
    """Per-retailer ranked fallback lists (co-occurrence / popularity).

    The last resort of the fallback chain and the tail half of the
    request-time hybrid policy: a plain ranked list of a retailer's most
    popular items, built offline from view counts (or any co-occurrence
    marginal), served when personalized tables are missing or thin.
    """

    def __init__(self) -> None:
        self._tables: Dict[str, List[ScoredItem]] = {}

    def load(self, retailer_id: str, ranked: Sequence[ScoredItem]) -> None:
        """Install a retailer's ranked fallback list (strongest first)."""
        self._tables[retailer_id] = sorted(
            (ScoredItem(int(s.item_index), float(s.score)) for s in ranked),
            key=lambda s: (-s.score, s.item_index),
        )

    def load_view_counts(
        self, retailer_id: str, view_counts: Mapping[int, float]
    ) -> None:
        """Build the ranked list from raw item view counts."""
        self.load(
            retailer_id,
            [ScoredItem(int(item), float(count))
             for item, count in view_counts.items()],
        )

    def drop(self, retailer_id: str) -> None:
        """Remove a retailer's fallback list (offboarding / merges)."""
        self._tables.pop(retailer_id, None)

    def has_retailer(self, retailer_id: str) -> bool:
        return retailer_id in self._tables

    def recommend(
        self, retailer_id: str, exclude: Iterable[int], k: int
    ) -> List[ScoredItem]:
        """Top-``k`` fallback items, skipping ``exclude`` (empty if unknown)."""
        table = self._tables.get(retailer_id)
        if not table:
            return []
        blocked = set(exclude)
        picked: List[ScoredItem] = []
        for scored in table:
            if scored.item_index in blocked:
                continue
            picked.append(scored)
            if len(picked) >= k:
                break
        return picked


@dataclass
class _CacheEntry:
    response: FrontendResponse
    inserted_ms: float
    version: int


class ServingFrontend:
    """Answers per-user recommendation requests against the cluster.

    Time is simulated: callers pass ``now_ms`` (e.g. the traffic
    generator's arrival timestamps); without one the frontend advances an
    internal clock by one millisecond per request.  TTL expiry, latency
    accounting, and the benchmark's QPS math all run on this clock, so
    identical request streams produce byte-identical results.

    ``protection`` enables the overload-protection layer and ``queue``
    the finite-server capacity model; both default to off, leaving the
    original request path untouched.
    """

    def __init__(
        self,
        cluster: ServingCluster,
        fallback: Optional[PopularityFallback] = None,
        context_lookups: int = DEFAULT_CONTEXT_LOOKUPS,
        recency_decay: float = 0.7,
        cache_capacity: int = 10_000,
        cache_ttl_ms: float = 60_000.0,
        metrics=NULL_METRICS,
        protection: Optional[OverloadProtection] = None,
        queue: Optional[ServerQueue] = None,
    ):
        if cache_capacity < 0:
            raise ServingError("cache_capacity must be >= 0")
        if cache_ttl_ms <= 0:
            raise ServingError("cache_ttl_ms must be > 0")
        self.cluster = cluster
        self.fallback = fallback
        self.context_lookups = context_lookups
        self.recency_decay = recency_decay
        self.cache_capacity = cache_capacity
        self.cache_ttl_ms = cache_ttl_ms
        self.metrics = metrics
        self.protection = protection
        self.queue = queue
        self.stats = FrontendStats()
        self._cache: "OrderedDict[Tuple[str, int], _CacheEntry]" = OrderedDict()
        self._expected_versions: Dict[str, int] = {}
        self._now_ms = 0.0
        #: Worst-case cost of one guarded lookup: fail over past every
        #: replica but the last, then hit flash on it.
        self._worst_lookup_ms = (
            (cluster.replication - 1) * FAILOVER_PENALTY_MS + FLASH_LATENCY_MS
        )
        #: Minimum budget the compute path needs to finish with at least
        #: a fallback answer without blowing a deadline.
        self._deadline_floor_ms = (
            self._worst_lookup_ms + BLEND_LATENCY_MS + FALLBACK_LATENCY_MS
        )
        if protection is not None:
            protection.validate_for(cluster, self._deadline_floor_ms)
            protection.breakers.on_transition = self._on_breaker_transition
        #: Published ANN adapters for request-time tail top-up, keyed by
        #: retailer (see :meth:`load_retrieval_index`).
        self._retrieval: Dict[str, object] = {}
        #: Per-retailer invalidation epochs: bumped by every
        #: :meth:`invalidate_retailer`, checked before a coalesced
        #: follower may join an in-flight leader (the fence that keeps a
        #: mid-batch publish from leaking pre-publish results).
        self._invalidation_epochs: Dict[str, int] = {}
        # A batch load changes what every cached response for that
        # retailer should contain; subscribe so the cluster tells us
        # instead of serving stale entries until their TTL runs out.
        subscribe = getattr(cluster, "subscribe_invalidation", None)
        if subscribe is not None:
            subscribe(self.invalidate_retailer)

    # ------------------------------------------------------------------
    # Freshness expectations
    # ------------------------------------------------------------------
    def expect_version(self, retailer_id: str, version: int) -> None:
        """Declare the version a retailer *should* be serving.

        The daily loop calls this when it publishes (or fails to publish)
        day N: a cluster table older than the expectation is served as
        **stale** — degraded but alive — and counted, never refused.
        """
        self._expected_versions[retailer_id] = int(version)

    # ------------------------------------------------------------------
    # Cache
    # ------------------------------------------------------------------
    def cache_key(
        self, retailer_id: str, context: UserContext, k: int
    ) -> Tuple[str, int]:
        """``(retailer, context signature)`` — only the lookups that matter.

        The signature hashes the ``context_lookups`` most recent
        ``(item, event)`` pairs plus ``k``: older context items never
        influence the answer, so two users with the same recent trail
        share one cache entry.
        """
        recent = list(zip(context.item_indices, context.events))
        recent = recent[-self.context_lookups:]
        payload = f"{k}|" + "|".join(
            f"{item}:{int(event)}" for item, event in recent
        )
        return (retailer_id, hash_string(payload))

    def _cache_get(
        self, key: Tuple[str, int], now_ms: float
    ) -> Optional[FrontendResponse]:
        entry = self._cache.get(key)
        if entry is None:
            return None
        current = self.cluster.version_of(key[0])
        if current is not None and entry.version != current:
            # The table moved under this entry (publish or rollback);
            # serving it would pin users to a version that no longer
            # exists.  Belt-and-suspenders with the load-time listener:
            # this also catches loads that bypassed the subscription.
            del self._cache[key]
            self.stats.cache_invalidations += 1
            self.metrics.counter("frontend_cache_invalidated_total").inc()
            return None
        if now_ms - entry.inserted_ms > self.cache_ttl_ms:
            del self._cache[key]
            self.stats.cache_expirations += 1
            self.metrics.counter("frontend_cache_expired_total").inc()
            return None
        self._cache.move_to_end(key)
        return entry.response

    def _cache_put(
        self, key: Tuple[str, int], response: FrontendResponse, now_ms: float
    ) -> None:
        if self.cache_capacity == 0:
            return
        current = self.cluster.version_of(key[0])
        if current is not None and response.version not in (0, current):
            # A publish/rollback landed while this response was being
            # computed; inserting it would cache a table that is already
            # retired.  The per-read version check would catch it, but
            # there is no reason to store a known-dead entry.
            return
        self._cache[key] = _CacheEntry(
            response=response, inserted_ms=now_ms, version=response.version
        )
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_capacity:
            self._cache.popitem(last=False)
            self.stats.cache_evictions += 1
            self.metrics.counter("frontend_cache_evicted_total").inc()

    def invalidate_retailer(self, retailer_id: str) -> int:
        """Drop a retailer's cached responses (call after a batch load).

        Also bumps the retailer's invalidation epoch, fencing in-flight
        coalesced leaders: a follower arriving after the bump recomputes
        instead of receiving the leader's pre-publish result.
        """
        self._invalidation_epochs[retailer_id] = (
            self._invalidation_epochs.get(retailer_id, 0) + 1
        )
        doomed = [key for key in self._cache if key[0] == retailer_id]
        for key in doomed:
            del self._cache[key]
        if doomed:
            self.stats.cache_invalidations += len(doomed)
            self.metrics.counter("frontend_cache_invalidated_total").inc(
                len(doomed)
            )
        return len(doomed)

    # ------------------------------------------------------------------
    # Retrieval top-up
    # ------------------------------------------------------------------
    def load_retrieval_index(self, retailer_id: str, adapter) -> None:
        """Install a retailer's published ANN index for tail top-up.

        Thin tail responses are topped up from the index (personalized
        neighbours of the query item) before falling back to popularity.
        Cached responses are dropped: their tails were computed without
        the index.
        """
        self._retrieval[retailer_id] = adapter
        self.invalidate_retailer(retailer_id)

    def drop_retrieval_index(self, retailer_id: str) -> None:
        self._retrieval.pop(retailer_id, None)
        self.invalidate_retailer(retailer_id)

    def cache_size(self) -> int:
        return len(self._cache)

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def request(
        self,
        retailer_id: str,
        context: UserContext,
        k: int = 10,
        now_ms: Optional[float] = None,
        client_id: Optional[object] = None,
        priority: str = "normal",
    ) -> FrontendResponse:
        """Answer one request; never raises on a degraded retailer."""
        now = self._advance_clock(now_ms)
        self.stats.requests += 1
        self.metrics.counter(
            "frontend_requests_total", retailer=retailer_id
        ).inc()
        key = self.cache_key(retailer_id, context, k)
        cached = self._cache_get(key, now)
        if cached is not None:
            return self._serve_cached(retailer_id, cached)
        response = self._serve_uncached(
            retailer_id, context, k, now, key, client_id, priority
        )
        self._observe_latency(response)
        return response

    def request_batch(
        self,
        requests: Sequence[Tuple[str, UserContext]],
        k: int = 10,
        now_ms: Optional[float] = None,
        client_ids: Optional[Sequence[object]] = None,
        priority: str = "normal",
    ) -> List[FrontendResponse]:
        """Answer a batch of concurrent requests, coalescing duplicates.

        Requests in one batch are in flight *together*: a duplicate
        ``(retailer, context signature)`` cannot be saved by the cache
        (the leader's response is not cached yet when the duplicate
        arrives), so it attaches to the leader's in-flight computation
        and pays only a coalesced-wait latency.

        A follower only joins a leader whose invalidation epoch is still
        current: if a publish or rollback landed between the leader's
        computation and the follower's arrival, the follower recomputes
        against the new table instead of inheriting a retired result.
        """
        now = self._advance_clock(now_ms)
        # leader entries: key -> (response, invalidation epoch at start)
        leaders: Dict[Tuple[str, int], Tuple[FrontendResponse, int]] = {}
        responses: List[Optional[FrontendResponse]] = [None] * len(requests)
        for position, (retailer_id, context) in enumerate(requests):
            client_id = client_ids[position] if client_ids is not None else None
            self.stats.requests += 1
            self.metrics.counter(
                "frontend_requests_total", retailer=retailer_id
            ).inc()
            key = self.cache_key(retailer_id, context, k)
            leader = leaders.get(key)
            if leader is not None:
                leader_response, leader_epoch = leader
                if leader_epoch == self._invalidation_epochs.get(retailer_id, 0):
                    self.stats.coalesced += 1
                    self.metrics.counter(
                        "frontend_coalesced_total", retailer=retailer_id
                    ).inc()
                    follower = replace(
                        leader_response,
                        latency_ms=leader_response.latency_ms
                        + COALESCED_LATENCY_MS,
                        coalesced=True,
                    )
                    responses[position] = follower
                    self._observe_latency(follower)
                    continue
                # Fenced: the table moved mid-flight; this request
                # becomes the new leader against the fresh version.
                self.stats.coalesce_fenced += 1
                self.metrics.counter(
                    "frontend_coalesce_fenced_total", retailer=retailer_id
                ).inc()
                del leaders[key]
            cached = self._cache_get(key, now)
            if cached is not None:
                response = self._serve_cached(retailer_id, cached)
                responses[position] = response
                continue
            epoch = self._invalidation_epochs.get(retailer_id, 0)
            response = self._serve_uncached(
                retailer_id, context, k, now, key, client_id, priority
            )
            leaders[key] = (response, epoch)
            responses[position] = response
            self._observe_latency(response)
        return [r for r in responses if r is not None]

    def _serve_cached(
        self, retailer_id: str, cached: FrontendResponse
    ) -> FrontendResponse:
        self.stats.cache_hits += 1
        self.metrics.counter(
            "frontend_cache_hits_total", retailer=retailer_id
        ).inc()
        response = replace(
            cached,
            latency_ms=CACHE_HIT_LATENCY_MS,
            served_from="cache",
            cache_hit=True,
            coalesced=False,
            queue_wait_ms=0.0,
        )
        self._observe_latency(response)
        return response

    def _serve_uncached(
        self,
        retailer_id: str,
        context: UserContext,
        k: int,
        now: float,
        key: Tuple[str, int],
        client_id: Optional[object],
        priority: str,
    ) -> FrontendResponse:
        """Admission -> queue -> deadline-budgeted compute -> cache."""
        budget: Optional[float] = None
        wait = 0.0
        if self.protection is not None:
            decision = self.protection.admission.admit(now, client_id, priority)
            if not decision.admitted:
                return self._shed_response(
                    retailer_id, context, k, decision.reason
                )
            deadline = self.protection.deadline.deadline_ms
            if self.queue is not None:
                wait = self.queue.wait_time(now)
                if deadline - wait < self._deadline_floor_ms:
                    # Queuing for a slot would blow the deadline; shed
                    # to the cheap path instead of joining the backlog.
                    return self._shed_response(
                        retailer_id, context, k, "queue_full"
                    )
            budget = deadline - wait
        response = self._compute(retailer_id, context, k, now, budget)
        if self.queue is not None:
            wait = self.queue.occupy(now, response.latency_ms)
            if wait > 0.0:
                self.metrics.histogram(
                    "frontend_queue_wait_ms", buckets=QUEUE_WAIT_BUCKETS
                ).observe(wait)
            response = replace(
                response,
                latency_ms=response.latency_ms + wait,
                queue_wait_ms=wait,
            )
        self._cache_put(key, response, now)
        return response

    def _shed_response(
        self, retailer_id: str, context: UserContext, k: int, reason: str
    ) -> FrontendResponse:
        """Admission shed: popularity fallback on the cheap path.

        Shed requests never touch the cluster and never occupy a queue
        server — that is the protection.  The payload is still a full
        page whenever a fallback table exists.
        """
        self.stats.shed += 1
        self.stats.shed_by_reason[reason] = (
            self.stats.shed_by_reason.get(reason, 0) + 1
        )
        if self.protection is not None:
            self.protection.stats.shed += 1
            self.protection.stats.shed_by_reason[reason] = (
                self.protection.stats.shed_by_reason.get(reason, 0) + 1
            )
        self.metrics.counter("frontend_shed_total", reason=reason).inc()
        items: List[ScoredItem] = []
        if self.fallback is not None:
            items = self.fallback.recommend(
                retailer_id, set(context.item_indices), k
            )
        version = self.cluster.version_of(retailer_id) or 0
        return FrontendResponse(
            retailer_id=retailer_id,
            recommendations=tuple(
                ServedRecommendation(s.item_index, s.score, -1) for s in items
            ),
            latency_ms=SHED_LATENCY_MS,
            served_from="shed",
            version=version,
            fallback_stage=reason,
        )

    # ------------------------------------------------------------------
    # The fallback chain
    # ------------------------------------------------------------------
    def _compute(
        self,
        retailer_id: str,
        context: UserContext,
        k: int,
        now: float = 0.0,
        budget_ms: Optional[float] = None,
    ) -> FrontendResponse:
        version = self.cluster.version_of(retailer_id)
        if version is None:
            return self._fallback_response(
                retailer_id, context, k, stage="unserved", base_latency=0.0
            )
        if len(context) == 0:
            return self._fallback_response(
                retailer_id, context, k, stage="empty_context",
                base_latency=0.0, version=version,
            )

        latency = 0.0
        degraded = False
        truncated = False
        breakers = self.protection.breakers if self.protection else None
        max_retries = (
            self.protection.deadline.max_retries if self.protection else 0
        )
        #: Budget that must stay reserved past the lookup phase: the
        #: blend constant plus a terminal fallback answer.
        reserve = BLEND_LATENCY_MS + FALLBACK_LATENCY_MS

        def within_budget(cost: float) -> bool:
            return (
                budget_ms is None or latency + cost + reserve <= budget_ms
            )

        def recs_for(item: int) -> List[ScoredItem]:
            nonlocal latency, degraded, truncated
            attempt = 0
            while True:
                if not within_budget(self._worst_lookup_ms):
                    truncated = True
                    return []
                failovers_before = self.cluster.failovers
                try:
                    result = self.cluster.lookup(
                        retailer_id, item, breakers=breakers, now_ms=now
                    )
                except ServingError:
                    # Every reachable replica of this item's shard failed;
                    # charge exactly the probes that were walked (open
                    # breakers were skipped for free) and either retry
                    # with backoff or move on with nothing — the
                    # remaining lookups (and the chain) still serve.
                    degraded = True
                    probed = self.cluster.failovers - failovers_before
                    latency += probed * FAILOVER_PENALTY_MS
                    if attempt < max_retries:
                        backoff = self.protection.deadline.backoff_for(attempt)
                        if within_budget(backoff + self._worst_lookup_ms):
                            latency += backoff
                            attempt += 1
                            self.stats.retries += 1
                            self.protection.stats.retries += 1
                            self.metrics.counter(
                                "frontend_retries_total"
                            ).inc()
                            continue
                    return []
                latency += result.latency_ms
                return result.recommendations

        recent = list(zip(context.item_indices, context.events))
        recent = recent[-self.context_lookups:]
        recommendations = blend_context_lookups(
            recent, recs_for, self.recency_decay, set(context.item_indices), k
        )
        latency += BLEND_LATENCY_MS
        if truncated:
            self.stats.deadline_truncated += 1
            if self.protection is not None:
                self.protection.stats.deadline_truncated += 1
            self.metrics.counter("frontend_deadline_truncated_total").inc()

        if not recommendations:
            if truncated:
                stage = "deadline"
            elif degraded:
                stage = "degraded"
            else:
                stage = "no_results"
            return self._fallback_response(
                retailer_id, context, k, stage=stage,
                base_latency=latency, version=version,
            )

        tail_augmented = 0
        need = k - len(recommendations)
        index = self._retrieval.get(retailer_id)
        if need > 0 and (self.fallback is not None or index is not None):
            # Request-time hybrid head/tail policy: head contexts fill k
            # from precomputed tables alone; thin tail results are topped
            # up so every page is full — personalized neighbours from the
            # retrieval index first, popularity for whatever remains.
            # Under deadline pressure the top-ups are the first work to
            # be skipped: a slightly short page beats a blown deadline.
            exclude = set(context.item_indices)
            exclude.update(rec.item_index for rec in recommendations)
            floor = recommendations[-1].score
            extras: List[ScoredItem] = []
            if index is not None and (
                budget_ms is None
                or latency + RETRIEVAL_LATENCY_MS + FALLBACK_LATENCY_MS
                <= budget_ms
            ):
                extras = self._retrieval_extras(context, exclude, need, index)
                if extras:
                    latency += RETRIEVAL_LATENCY_MS
                    exclude.update(s.item_index for s in extras)
                    self.stats.retrieval_topups += len(extras)
                    self.metrics.counter(
                        "frontend_retrieval_topup_total", retailer=retailer_id
                    ).inc(len(extras))
            if (
                len(extras) < need
                and self.fallback is not None
                and (budget_ms is None
                     or latency + FALLBACK_LATENCY_MS <= budget_ms)
            ):
                popular = self.fallback.recommend(
                    retailer_id, exclude, need - len(extras)
                )
                if popular:
                    latency += FALLBACK_LATENCY_MS
                    extras.extend(popular)
            if extras:
                for position, scored in enumerate(extras):
                    # Slot below the personalized floor so topped-up items
                    # never outrank a real recommendation.
                    recommendations.append(
                        ServedRecommendation(
                            item_index=scored.item_index,
                            score=floor - (position + 1) * (abs(floor) * 1e-3 + 1e-9),
                            source_item=-1,
                        )
                    )
                tail_augmented = len(extras)
                self.stats.tail_augmented += tail_augmented
                self.metrics.counter(
                    "frontend_tail_augmented_total", retailer=retailer_id
                ).inc(tail_augmented)

        expected = self._expected_versions.get(retailer_id)
        stale = expected is not None and version < expected
        if stale:
            self.stats.stale_serves += 1
            self.metrics.counter(
                "frontend_stale_serves_total", retailer=retailer_id
            ).inc()
        else:
            self.stats.fresh_serves += 1
            self.metrics.counter(
                "frontend_fresh_serves_total", retailer=retailer_id
            ).inc()
        return FrontendResponse(
            retailer_id=retailer_id,
            recommendations=tuple(recommendations),
            latency_ms=latency,
            served_from="stale" if stale else "fresh",
            version=version,
            stale=stale,
            tail_augmented=tail_augmented,
            deadline_truncated=truncated,
        )

    def _retrieval_extras(
        self,
        context: UserContext,
        exclude: set,
        need: int,
        index,
    ) -> List[ScoredItem]:
        """Neighbours of the most recent context item, minus exclusions.

        Over-fetches by the exclusion size so filtering still leaves
        ``need`` items; any index trouble (item outside the indexed
        catalog) degrades to an empty list — the chain continues.
        """
        query = context.most_recent_item
        if query is None or query >= index.n_items or query < 0:
            return []
        ids, scores = index.search_items(
            np.array([query], dtype=np.int64), need + len(exclude) + 1
        )
        extras: List[ScoredItem] = []
        for item, score in zip(ids[0].tolist(), scores[0].tolist()):
            if item < 0 or item in exclude:
                continue
            extras.append(ScoredItem(int(item), float(score)))
            if len(extras) >= need:
                break
        return extras

    def _fallback_response(
        self,
        retailer_id: str,
        context: UserContext,
        k: int,
        stage: str,
        base_latency: float,
        version: int = 0,
    ) -> FrontendResponse:
        """Terminal chain stages: popularity fallback, then empty.

        Exactly one bucket is charged: ``fallbacks`` when the popularity
        table produced a page, ``empty_responses`` when it could not —
        never both (the conservation invariant the chaos checks audit).
        """
        latency = base_latency + FALLBACK_LATENCY_MS
        items: List[ScoredItem] = []
        if self.fallback is not None:
            items = self.fallback.recommend(
                retailer_id, set(context.item_indices), k
            )
        if not items:
            self.stats.empty_responses += 1
            self.metrics.counter("frontend_empty_total", stage=stage).inc()
            return FrontendResponse(
                retailer_id=retailer_id,
                recommendations=(),
                latency_ms=latency,
                served_from="empty",
                version=version,
                fallback_stage=stage,
            )
        self.stats.fallbacks += 1
        self.metrics.counter("frontend_fallback_total", stage=stage).inc()
        return FrontendResponse(
            retailer_id=retailer_id,
            recommendations=tuple(
                ServedRecommendation(s.item_index, s.score, -1) for s in items
            ),
            latency_ms=latency,
            served_from="fallback",
            version=version,
            fallback_stage=stage,
        )

    # ------------------------------------------------------------------
    # Clock / latency accounting
    # ------------------------------------------------------------------
    def _advance_clock(self, now_ms: Optional[float]) -> float:
        if now_ms is None:
            self._now_ms += 1.0
        elif now_ms >= self._now_ms:
            self._now_ms = float(now_ms)
        return self._now_ms

    def _on_breaker_transition(self, node_id: int, old: str, new: str) -> None:
        self.stats.breaker_transitions += 1
        if self.protection is not None:
            self.protection.stats.breaker_transitions += 1
        self.metrics.counter(
            "serving_breaker_transitions_total", to_state=new
        ).inc()

    def _observe_latency(self, response: FrontendResponse) -> None:
        self.metrics.histogram(
            "frontend_latency_ms",
            buckets=LATENCY_BUCKETS,
            served=response.served_from,
        ).observe(response.latency_ms)
