"""The publish gate: validate every table before it reaches the store.

Production recommenders treat the model-publish step as the highest-risk
moment of the pipeline — a plausible-looking but broken table silently
degrades every user session until someone notices (cf. the eBay
production system's validation-gated index swaps).  Sigmund's batch
stores make the defence cheap: because loads are atomic and versioned,
rejecting a bad batch simply keeps the last-good table serving.

Checks, per retailer table:

1. **non-empty / coverage** — the table must recommend for at least
   ``min_coverage`` of the catalog; an empty or near-empty table means
   the inference pipeline silently lost its inputs.
2. **finite scores** — any NaN or infinite score is an immediate reject
   (a diverged model must never reach serving).
3. **version monotonicity** — the batch must be strictly newer than the
   version currently served (a stale replay must not clobber freshness).
4. **MAP sanity** — today's model-selection MAP must not have collapsed
   relative to the previous run's; a drop beyond ``max_map_drop`` keeps
   yesterday's table serving and raises an alert instead.

A rejection is surfaced through ``QualityMonitor.record_failure`` by the
service layer and shows up as ``stale`` in the freshness report — never
as a half-published or silently broken table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence

from repro.exceptions import PublishRejectedError
from repro.models.base import ScoredItem
from repro.obs.metrics import NULL_METRICS
from repro.serving.store import RecommendationStore

#: Fraction of the catalog that must have at least one recommendation.
#: Deliberately permissive: sparse long-tail retailers legitimately cover
#: little; the gate exists to catch *collapse*, not to tune quality.
DEFAULT_MIN_COVERAGE = 0.02

#: Maximum tolerated relative MAP drop vs the previous run.  Far looser
#: than the monitoring alert threshold (0.30): an alert asks a human to
#: look, the gate unilaterally blocks a publish — it fires only on
#: collapse-grade regressions.
DEFAULT_MAX_MAP_DROP = 0.90


@dataclass
class GateDecision:
    """The outcome of validating one retailer's candidate table."""

    retailer_id: str
    accepted: bool
    #: Human-readable reason per failed check (empty when accepted).
    reasons: List[str] = field(default_factory=list)

    @property
    def reason(self) -> str:
        return "; ".join(self.reasons)


class PublishGate:
    """Validates candidate tables against the store they would replace."""

    def __init__(
        self,
        min_coverage: float = DEFAULT_MIN_COVERAGE,
        max_map_drop: float = DEFAULT_MAX_MAP_DROP,
        metrics=NULL_METRICS,
    ):
        if not 0.0 <= min_coverage <= 1.0:
            raise ValueError("min_coverage must be in [0, 1]")
        if not 0.0 < max_map_drop <= 1.0:
            raise ValueError("max_map_drop must be in (0, 1]")
        self.min_coverage = min_coverage
        self.max_map_drop = max_map_drop
        #: Process-level registry: validations accumulate across days, so
        #: these counters are not part of the crash-parity contract.
        self.metrics = metrics
        #: Every rejection, for dashboards/tests: (retailer_id, reason).
        self.rejections: List[GateDecision] = []

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(
        self,
        retailer_id: str,
        recommendations: Mapping[int, Sequence[ScoredItem]],
        version: int,
        store: RecommendationStore,
        n_items: int,
        current_map: Optional[float] = None,
        previous_map: Optional[float] = None,
        allow_empty: bool = False,
    ) -> GateDecision:
        """Check one candidate table; never mutates the store.

        ``allow_empty`` relaxes the coverage checks for surfaces where an
        empty table is a legitimate state — e.g. the purchase-based
        complements surface of a retailer whose log has no conversion
        co-occurrence yet.  Finite-score and version checks still apply.
        """
        reasons: List[str] = []

        covered = sum(1 for recs in recommendations.values() if recs)
        if covered == 0:
            if not allow_empty:
                reasons.append("empty table: no item has any recommendation")
        elif n_items > 0 and not allow_empty and covered / n_items < self.min_coverage:
            reasons.append(
                f"coverage {covered}/{n_items} below minimum "
                f"{self.min_coverage:.0%}"
            )

        bad_scores = sum(
            1
            for recs in recommendations.values()
            for rec in recs
            if not math.isfinite(rec.score)
        )
        if bad_scores:
            reasons.append(f"{bad_scores} non-finite recommendation scores")

        served = store.version_of(retailer_id)
        if served is not None and version <= served:
            reasons.append(
                f"version {version} is not newer than served version {served}"
            )

        if (
            current_map is not None
            and previous_map is not None
            and previous_map > 0
        ):
            drop = (previous_map - current_map) / previous_map
            if drop >= self.max_map_drop:
                reasons.append(
                    f"MAP collapsed {drop:.0%} vs previous run "
                    f"({previous_map:.4f} -> {current_map:.4f})"
                )

        decision = GateDecision(
            retailer_id=retailer_id, accepted=not reasons, reasons=reasons
        )
        if not decision.accepted:
            self.rejections.append(decision)
        self.metrics.counter(
            "gate_validations_total",
            outcome="accepted" if decision.accepted else "rejected",
        ).inc()
        return decision

    def validate_or_raise(self, *args, **kwargs) -> GateDecision:
        """Like :meth:`validate` but raises on rejection (library callers)."""
        decision = self.validate(*args, **kwargs)
        if not decision.accepted:
            raise PublishRejectedError(
                f"publish rejected for {decision.retailer_id!r}: "
                f"{decision.reason}"
            )
        return decision
