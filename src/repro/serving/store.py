"""The versioned, batch-swapped recommendation store.

Each retailer's recommendations are loaded as one atomic batch: readers
see either yesterday's complete table or today's complete table, never a
mix.  All reads are namespaced by retailer id and cross-retailer access
is impossible by construction — the privacy guarantee of section I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.exceptions import ServingError
from repro.models.base import ScoredItem
from repro.obs.metrics import NULL_METRICS


@dataclass
class StoreStats:
    """Operational counters for monitoring dashboards."""

    batches_loaded: int = 0
    lookups: int = 0
    misses: int = 0
    #: Batches rejected for version monotonicity — a stale late-arriving
    #: publish (e.g. a delayed pipeline replaying yesterday) that must
    #: not clobber a fresher table.  Silent rejection would hide a
    #: misbehaving publisher, so the rejection is counted here as well
    #: as raised.
    stale_batches_rejected: int = 0
    #: Tables rolled back to their last-good predecessor.
    rollbacks: int = 0

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return 1.0 - self.misses / self.lookups


@dataclass
class _RetailerTable:
    """One retailer's current recommendation table plus its version."""

    version: int
    recommendations: Dict[int, List[ScoredItem]] = field(default_factory=dict)


class RecommendationStore:
    """In-memory item -> top-N recommendations, per retailer, versioned."""

    def __init__(self, metrics=NULL_METRICS, name: str = "store") -> None:
        self._tables: Dict[str, _RetailerTable] = {}
        #: Last-good predecessor of each current table, kept so a table
        #: that passed the publish gate but turns out bad in production
        #: can be rolled back without a republish.
        self._previous: Dict[str, _RetailerTable] = {}
        self.stats = StoreStats()
        #: Process-level registry mirroring :attr:`stats`; store state
        #: accumulates across days so these counters are not part of the
        #: crash-parity contract.  ``name`` distinguishes the two serving
        #: surfaces (substitutes vs accessories).
        self.metrics = metrics
        self.name = name

    # ------------------------------------------------------------------
    # Batch loading (the only write path)
    # ------------------------------------------------------------------
    def load_batch(
        self,
        retailer_id: str,
        recommendations: Mapping[int, Sequence[ScoredItem]],
        version: int,
    ) -> None:
        """Atomically replace a retailer's table with a new batch.

        Versions must be monotonically increasing per retailer — loading a
        stale batch (e.g. a delayed pipeline replaying yesterday) is
        rejected rather than silently clobbering fresher data.
        """
        current = self._tables.get(retailer_id)
        if current is not None and version <= current.version:
            self.stats.stale_batches_rejected += 1
            self.metrics.counter(
                "store_stale_rejected_total", store=self.name
            ).inc()
            raise ServingError(
                f"stale batch for {retailer_id!r}: version {version} <= "
                f"current {current.version}"
            )
        table = _RetailerTable(
            version=version,
            recommendations={
                int(item): list(recs) for item, recs in recommendations.items()
            },
        )
        if current is not None:
            self._previous[retailer_id] = current
        self._tables[retailer_id] = table
        self.stats.batches_loaded += 1
        self.metrics.counter(
            "store_batches_loaded_total", store=self.name
        ).inc()

    def rollback(self, retailer_id: str) -> int:
        """Re-serve the last-good table (the one the current load replaced).

        The escape hatch behind the publish gate: if a table that passed
        validation regresses in production, the previous complete table
        comes back atomically.  Returns the version now being served.
        Raises :class:`ServingError` when there is nothing to roll back
        to — a retailer on its first table keeps it (serving something
        beats serving nothing).
        """
        previous = self._previous.pop(retailer_id, None)
        if previous is None:
            raise ServingError(
                f"no last-good table to roll back to for {retailer_id!r}"
            )
        self._tables[retailer_id] = previous
        self.stats.rollbacks += 1
        self.metrics.counter("store_rollbacks_total", store=self.name).inc()
        return previous.version

    def drop_retailer(self, retailer_id: str) -> None:
        """Delete a retailer's table outright (offboarding purge).

        Subsequent lookups raise :class:`ServingError` exactly like a
        retailer that was never loaded — a departed tenant must not be
        served stale recommendations.  Dropping an unknown retailer is a
        no-op so offboarding stays idempotent.
        """
        self._tables.pop(retailer_id, None)
        self._previous.pop(retailer_id, None)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def lookup(self, retailer_id: str, item_index: int) -> List[ScoredItem]:
        """Precomputed recommendations for one item (empty when unknown)."""
        self.stats.lookups += 1
        self.metrics.counter("store_lookups_total", store=self.name).inc()
        table = self._tables.get(retailer_id)
        if table is None:
            self.stats.misses += 1
            self.metrics.counter("store_misses_total", store=self.name).inc()
            raise ServingError(f"no recommendations loaded for {retailer_id!r}")
        recs = table.recommendations.get(int(item_index))
        if recs is None:
            self.stats.misses += 1
            self.metrics.counter("store_misses_total", store=self.name).inc()
            return []
        return list(recs)

    def has_retailer(self, retailer_id: str) -> bool:
        return retailer_id in self._tables

    def version_of(self, retailer_id: str) -> Optional[int]:
        table = self._tables.get(retailer_id)
        return table.version if table is not None else None

    def items_covered(self, retailer_id: str) -> int:
        """How many items of a retailer have at least one recommendation."""
        table = self._tables.get(retailer_id)
        if table is None:
            return 0
        return sum(1 for recs in table.recommendations.values() if recs)

    def retailers(self) -> List[str]:
        return sorted(self._tables)

    def versions(self) -> Dict[str, int]:
        """Current table version per loaded retailer."""
        return {rid: table.version for rid, table in self._tables.items()}

    def freshness(
        self, retailer_ids: Sequence[str], expected_version: int
    ) -> Dict[str, str]:
        """Classify each retailer as ``fresh``, ``stale``, or ``unserved``.

        The availability view of graceful degradation: after day N every
        retailer should be at version N+1 (*fresh*); one whose pipeline
        failed still serves an older table (*stale* — degraded but alive);
        *unserved* means no table at all (failed before its first load)
        and is the state the daily loop exists to avoid.
        """
        states: Dict[str, str] = {}
        for rid in retailer_ids:
            table = self._tables.get(rid)
            if table is None:
                states[rid] = "unserved"
            elif table.version >= expected_version:
                states[rid] = "fresh"
            else:
                states[rid] = "stale"
        return states
