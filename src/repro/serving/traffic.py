"""Deterministic power-law traffic for the online serving tier.

Real recommendation traffic is brutally skewed: a few head users and
head items generate most requests, and the long tail is nearly silent.
The :class:`TrafficGenerator` replays that shape deterministically —
Zipf-distributed users drawn from a population of millions, Zipf item
interest within each retailer's catalog, retailer weight falling with
rank — so that cache hit rates, tier mixes, and latency distributions in
the E24 benchmark are properties of the *distribution*, not of a lucky
seed.

Determinism has two layers:

* the request stream (who arrives when, at which retailer) comes from
  one seeded generator, so a given ``(seed, n)`` always produces the
  same stream;
* each user's **context is a pure function of their id** (derived-seed
  RNG per ``(seed, retailer, user)``), so a returning user carries the
  same recent trail — which is exactly what makes response caching and
  request coalescing worth simulating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from repro.data.events import EventType
from repro.data.sessions import UserContext
from repro.exceptions import SigmundError
from repro.models.base import ScoredItem
from repro.rng import derive_seed, make_rng

#: Event mix of simulated browse traffic (views dominate, paper III-A).
EVENT_MIX: Tuple[Tuple[EventType, float], ...] = (
    (EventType.VIEW, 0.82),
    (EventType.SEARCH, 0.10),
    (EventType.CART, 0.06),
    (EventType.CONVERSION, 0.02),
)


@dataclass(frozen=True)
class SimRequest:
    """One simulated frontend request."""

    retailer_id: str
    user_id: int
    context: UserContext
    timestamp_ms: float


def zipf_weights(n: int, exponent: float) -> np.ndarray:
    """Normalized Zipf pmf over ranks ``1..n`` (rank 0 is the head)."""
    if n < 1:
        raise SigmundError("zipf_weights needs n >= 1")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-float(exponent))
    return weights / weights.sum()


class TrafficGenerator:
    """Replays Zipf-shaped request load across retailers.

    ``catalog_sizes`` maps retailer id -> number of items; retailers are
    weighted by a power law over their size rank (the biggest tenant
    takes the most traffic, mirroring the fleet's skew).  ``n_users`` is
    the *population* — millions of distinct ids — while the Zipf exponent
    concentrates actual arrivals on the head of that population.
    """

    def __init__(
        self,
        catalog_sizes: Mapping[str, int],
        n_users: int = 1_000_000,
        user_exponent: float = 1.1,
        item_exponent: float = 0.9,
        retailer_exponent: float = 0.8,
        qps: float = 1_000.0,
        max_context: int = 4,
        seed: int = 0,
    ):
        if not catalog_sizes:
            raise SigmundError("traffic needs at least one retailer")
        if n_users < 1:
            raise SigmundError("n_users must be >= 1")
        if qps <= 0:
            raise SigmundError("qps must be > 0")
        # Biggest catalog first: retailer rank drives its traffic share.
        self.retailers = sorted(
            catalog_sizes, key=lambda rid: (-int(catalog_sizes[rid]), rid)
        )
        self.catalog_sizes = {
            rid: int(catalog_sizes[rid]) for rid in self.retailers
        }
        self.n_users = int(n_users)
        self.user_exponent = float(user_exponent)
        self.item_exponent = float(item_exponent)
        self.retailer_exponent = float(retailer_exponent)
        self.qps = float(qps)
        self.max_context = int(max_context)
        self.seed = int(seed)
        self._rng = make_rng(derive_seed(self.seed, "traffic"))
        #: Scenario-driven multiplicative traffic boosts (flash sales).
        self._boosts: Dict[str, float] = {}
        self._retailer_weights = self._compute_weights()
        self._clock_ms = 0.0
        self._context_cache: Dict[Tuple[str, int], UserContext] = {}

    def _compute_weights(self) -> np.ndarray:
        weights = zipf_weights(len(self.retailers), self.retailer_exponent)
        if self._boosts:
            weights = weights * np.array(
                [self._boosts.get(rid, 1.0) for rid in self.retailers]
            )
            weights = weights / weights.sum()
        return weights

    # ------------------------------------------------------------------
    # Scenario hooks (world events over the traffic shape)
    # ------------------------------------------------------------------
    def set_qps(self, qps: float) -> None:
        """Change the arrival rate (takes effect on the next request)."""
        if qps <= 0:
            raise SigmundError("qps must be > 0")
        self.qps = float(qps)

    def set_retailer_boost(self, retailer_id: str, factor: float) -> None:
        """Multiply one retailer's traffic share (flash-sale spikes)."""
        if retailer_id not in self.catalog_sizes:
            raise SigmundError(f"unknown retailer {retailer_id!r}")
        if factor <= 0:
            raise SigmundError("boost factor must be > 0")
        self._boosts[retailer_id] = float(factor)
        self._retailer_weights = self._compute_weights()

    def clear_boosts(self) -> None:
        self._boosts.clear()
        self._retailer_weights = self._compute_weights()

    def add_retailer(self, retailer_id: str, catalog_size: int) -> None:
        """Onboard a retailer mid-stream (cold-start waves)."""
        if retailer_id in self.catalog_sizes:
            raise SigmundError(f"retailer {retailer_id!r} already present")
        if catalog_size < 1:
            raise SigmundError("catalog_size must be >= 1")
        self.catalog_sizes[retailer_id] = int(catalog_size)
        self.retailers = sorted(
            self.catalog_sizes,
            key=lambda rid: (-self.catalog_sizes[rid], rid),
        )
        self._retailer_weights = self._compute_weights()

    def remove_retailer(self, retailer_id: str) -> None:
        """Offboard a retailer (catalog merges); its traffic redistributes."""
        if retailer_id not in self.catalog_sizes:
            raise SigmundError(f"unknown retailer {retailer_id!r}")
        if len(self.catalog_sizes) == 1:
            raise SigmundError("cannot remove the last retailer")
        del self.catalog_sizes[retailer_id]
        self._boosts.pop(retailer_id, None)
        self.retailers = [r for r in self.retailers if r != retailer_id]
        self._retailer_weights = self._compute_weights()

    def resize_retailer(self, retailer_id: str, catalog_size: int) -> None:
        """Grow/shrink a catalog in place (merges, bulk imports).

        Rank order may change, which shifts traffic shares — exactly what
        a merged catalog does.  Cached contexts stay valid: their items
        were sampled inside the old (smaller) catalog.
        """
        if retailer_id not in self.catalog_sizes:
            raise SigmundError(f"unknown retailer {retailer_id!r}")
        if catalog_size < 1:
            raise SigmundError("catalog_size must be >= 1")
        self.catalog_sizes[retailer_id] = int(catalog_size)
        self.retailers = sorted(
            self.catalog_sizes,
            key=lambda rid: (-self.catalog_sizes[rid], rid),
        )
        self._retailer_weights = self._compute_weights()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _sample_user_ranks(self, n: int) -> np.ndarray:
        """Zipf user ranks folded into the population ``[0, n_users)``.

        ``numpy``'s unbounded Zipf sampler gives the right head shape;
        folding the rare overshoots back keeps every id in range without
        materializing a million-entry CDF.
        """
        raw = self._rng.zipf(max(self.user_exponent, 1.01), size=n)
        return (raw - 1) % self.n_users

    def _sample_item(
        self, rng: np.random.Generator, n_items: int
    ) -> int:
        raw = int(rng.zipf(max(1.0 + self.item_exponent, 1.01)))
        return (raw - 1) % n_items

    def context_for(self, retailer_id: str, user_id: int) -> UserContext:
        """The user's deterministic recent trail at this retailer.

        Head items (low indices) dominate, so the stream's item skew
        lines up with the cluster's hot-tier placement when tables score
        head items highest.
        """
        key = (retailer_id, int(user_id))
        cached = self._context_cache.get(key)
        if cached is not None:
            return cached
        rng = make_rng(derive_seed(self.seed, "context", retailer_id, int(user_id)))
        n_items = self.catalog_sizes[retailer_id]
        length = int(rng.integers(1, self.max_context + 1))
        events, probabilities = zip(*EVENT_MIX)
        pairs = [
            (
                events[int(rng.choice(len(events), p=np.array(probabilities)))],
                self._sample_item(rng, n_items),
            )
            for _ in range(length)
        ]
        context = UserContext.from_pairs(pairs)
        self._context_cache[key] = context
        return context

    # ------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------
    def generate(self, n: int) -> List[SimRequest]:
        """The next ``n`` requests (arrival clock carries across calls)."""
        if n < 0:
            raise SigmundError("cannot generate a negative request count")
        retailer_picks = self._rng.choice(
            len(self.retailers), size=n, p=self._retailer_weights
        )
        user_ranks = self._sample_user_ranks(n)
        # Poisson arrivals at the configured rate, on a millisecond clock.
        gaps_ms = self._rng.exponential(1_000.0 / self.qps, size=n)
        requests: List[SimRequest] = []
        for pick, user_rank, gap in zip(retailer_picks, user_ranks, gaps_ms):
            self._clock_ms += float(gap)
            retailer_id = self.retailers[int(pick)]
            user_id = int(user_rank)
            requests.append(
                SimRequest(
                    retailer_id=retailer_id,
                    user_id=user_id,
                    context=self.context_for(retailer_id, user_id),
                    timestamp_ms=self._clock_ms,
                )
            )
        return requests

    def stream(self, n: int, batch_size: int = 256) -> Iterator[List[SimRequest]]:
        """``generate`` in arrival-order batches (for coalesced replay)."""
        if batch_size < 1:
            raise SigmundError("batch_size must be >= 1")
        remaining = int(n)
        while remaining > 0:
            take = min(batch_size, remaining)
            yield self.generate(take)
            remaining -= take


def unique_users(requests: Sequence[SimRequest]) -> int:
    """Distinct ``(retailer, user)`` pairs in a request stream."""
    return len({(r.retailer_id, r.user_id) for r in requests})


def synthetic_recommendation_table(
    n_items: int, n_recs: int = 10, seed: int = 0
) -> Dict[int, List[ScoredItem]]:
    """A plausible precomputed table for serving simulations.

    Head items (low indices) get the strongest top scores — matching the
    generator's item skew — so hot-tier placement, traffic, and scores
    all tell the same popularity story without training a model.
    """
    if n_items < 2:
        raise SigmundError("synthetic table needs at least 2 items")
    rng = make_rng(derive_seed(seed, "serve_table", n_items))
    table: Dict[int, List[ScoredItem]] = {}
    for item in range(n_items):
        strength = n_items / (item + 1.0)
        neighbours = rng.choice(
            n_items - 1, size=min(n_recs, n_items - 1), replace=False
        )
        recs = [
            ScoredItem(
                int(other if other < item else other + 1),
                float(strength / (position + 1.0)),
            )
            for position, other in enumerate(neighbours)
        ]
        table[item] = recs
    return table
