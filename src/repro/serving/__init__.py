"""Batch-updated serving of precomputed recommendations.

Sigmund materializes item-item recommendations offline and loads them
into "a distributed serving system that leverages main-memory ... to
serve low-latency requests" (section II-A), optimized for batch updates
after each inference run rather than real-time writes (section V).  The
store here reproduces those semantics: versioned per-retailer batch
swaps, strict retailer isolation, and a lightweight request path that
only does lookups and merges.
"""

from repro.serving.cluster import LookupResult, ServingCluster, ServingNode
from repro.serving.gate import GateDecision, PublishGate
from repro.serving.server import RecommendationServer, ServedRecommendation
from repro.serving.store import RecommendationStore, StoreStats

__all__ = [
    "RecommendationStore",
    "StoreStats",
    "PublishGate",
    "GateDecision",
    "RecommendationServer",
    "ServedRecommendation",
    "ServingCluster",
    "ServingNode",
    "LookupResult",
]
