"""Batch-updated serving of precomputed recommendations.

Sigmund materializes item-item recommendations offline and loads them
into "a distributed serving system that leverages main-memory ... to
serve low-latency requests" (section II-A), optimized for batch updates
after each inference run rather than real-time writes (section V).  The
store here reproduces those semantics: versioned per-retailer batch
swaps, strict retailer isolation, and a lightweight request path that
only does lookups and merges.  On top of the sharded cluster sits the
online tier: :class:`ServingFrontend` (response cache, coalescing,
fallback chain, simulated latency accounting) fed by the power-law
:class:`TrafficGenerator`.
"""

from repro.serving.cluster import LookupResult, ServingCluster, ServingNode
from repro.serving.frontend import (
    FrontendResponse,
    FrontendStats,
    PopularityFallback,
    ServingFrontend,
)
from repro.serving.gate import GateDecision, PublishGate
from repro.serving.overload import (
    AdmissionController,
    AdmissionDecision,
    BreakerBoard,
    CircuitBreaker,
    DeadlinePolicy,
    OverloadProtection,
    ProtectionStats,
    ServerQueue,
    TokenBucket,
)
from repro.serving.server import (
    RecommendationServer,
    ServedRecommendation,
    blend_context_lookups,
)
from repro.serving.store import RecommendationStore, StoreStats
from repro.serving.traffic import SimRequest, TrafficGenerator, zipf_weights

__all__ = [
    "RecommendationStore",
    "StoreStats",
    "PublishGate",
    "GateDecision",
    "RecommendationServer",
    "ServedRecommendation",
    "blend_context_lookups",
    "ServingCluster",
    "ServingNode",
    "LookupResult",
    "ServingFrontend",
    "FrontendResponse",
    "FrontendStats",
    "PopularityFallback",
    "SimRequest",
    "TrafficGenerator",
    "zipf_weights",
    "TokenBucket",
    "AdmissionController",
    "AdmissionDecision",
    "CircuitBreaker",
    "BreakerBoard",
    "ServerQueue",
    "DeadlinePolicy",
    "OverloadProtection",
    "ProtectionStats",
]
