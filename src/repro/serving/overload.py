"""Overload protection for the online serving tier.

The fallback chain makes a *healthy* frontend unbreakable; this module
is what keeps it healthy when the workload itself turns hostile — flash
sales, bot floods, cell outages.  Four cooperating mechanisms, all
running on the frontend's simulated millisecond clock so every decision
is byte-deterministic:

* :class:`TokenBucket` / :class:`AdmissionController` — **admission
  control with priority-aware load shedding**.  Requests that would
  push the backend past its sustainable rate are shed *to the
  popularity fallback* (cheap, still a full page) before the queue can
  collapse.  Low-priority traffic sheds first (at a configurable
  watermark); clients exceeding a per-client rate are demoted to low
  priority, which is what de-fangs bot floods without a blocklist.
* :class:`CircuitBreaker` / :class:`BreakerBoard` — **per-replica
  circuit breakers** (closed → open → half-open) on failure-rate
  windows.  An open breaker lets lookups skip a dead replica for free
  instead of paying the blind failover-penalty walk on every request —
  the difference between an outage costing one detection window and an
  outage taxing every lookup until a human intervenes.
* :class:`DeadlinePolicy` — **per-request deadline budgets** with
  bounded retry + exponential backoff.  Every retry and every backoff
  millisecond is charged to the request's simulated latency (no free
  retries), and the compute path reserves enough budget to finish with
  a fallback answer rather than blowing the deadline.
* :class:`ServerQueue` — the **finite-capacity queue model** that makes
  overload *mean* something: computed responses occupy one of
  ``n_servers`` simulated workers, so sustained arrival above capacity
  builds a backlog and latency grows without bound.  Protection exists
  to keep the system off that cliff; the E27 chaos bench measures both
  sides of it.

Everything here is optional: a frontend constructed without a
:class:`OverloadProtection` (and without a queue) behaves byte-for-byte
as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import ServingError

#: Request priorities, strongest-claim-to-service first.
PRIORITIES = ("high", "normal", "low")

#: Simulated cost of serving a shed request from the popularity
#: fallback path (no cluster walk, no queue slot).
SHED_LATENCY_MS = 0.2

#: Circuit breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class TokenBucket:
    """A deterministic token bucket on the simulated millisecond clock.

    Refill is computed lazily from elapsed simulated time, so replaying
    the same request stream always makes the same admit/shed decisions.
    """

    def __init__(self, rate_per_s: float, burst: float):
        if rate_per_s <= 0:
            raise ServingError("token bucket rate_per_s must be > 0")
        if burst <= 0:
            raise ServingError("token bucket burst must be > 0")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last_ms = 0.0

    def _refill(self, now_ms: float) -> None:
        if now_ms > self._last_ms:
            self.tokens = min(
                self.burst,
                self.tokens + (now_ms - self._last_ms) * self.rate_per_s / 1000.0,
            )
            self._last_ms = now_ms

    def fill_fraction(self, now_ms: float) -> float:
        """Tokens available as a fraction of burst (after refill)."""
        self._refill(now_ms)
        return self.tokens / self.burst

    def try_acquire(self, now_ms: float, tokens: float = 1.0) -> bool:
        self._refill(now_ms)
        if self.tokens >= tokens:
            self.tokens -= tokens
            return True
        return False


@dataclass(frozen=True)
class AdmissionDecision:
    """One admission verdict: admitted, or shed with a reason."""

    admitted: bool
    #: "ok" | "shed_low" (low priority shed at the watermark) |
    #: "shed_overload" (bucket dry, everyone sheds) | "client_rate"
    #: (the client itself is over its per-client rate).
    reason: str = "ok"
    #: The priority actually applied (a rate-abusing client is demoted
    #: to "low" before the shedding rules run).
    effective_priority: str = "normal"


class AdmissionController:
    """Priority-aware token-bucket admission in front of the compute path.

    Two layers of defence:

    * a **global bucket** sized to the backend's sustainable compute
      rate.  Below ``shed_low_watermark`` of burst remaining, "low"
      priority requests shed early; once the bucket is dry, everything
      sheds regardless of priority (the backend simply has no capacity);
    * optional **per-client buckets**: a client exceeding its own rate
      sheds outright (reason ``"client_rate"``) unless it carries "high"
      priority — bots classify themselves, and they never get to drain
      the global bucket that organic traffic depends on.
    """

    def __init__(
        self,
        rate_per_s: float,
        burst: float,
        shed_low_watermark: float = 0.25,
        client_rate_per_s: float = 0.0,
        client_burst: float = 0.0,
    ):
        if not 0.0 <= shed_low_watermark < 1.0:
            raise ServingError("shed_low_watermark must be in [0, 1)")
        self.bucket = TokenBucket(rate_per_s, burst)
        self.shed_low_watermark = float(shed_low_watermark)
        self.client_rate_per_s = float(client_rate_per_s)
        self.client_burst = float(client_burst)
        self._client_buckets: Dict[object, TokenBucket] = {}

    def _client_over_rate(self, client_id: object, now_ms: float) -> bool:
        if client_id is None or self.client_rate_per_s <= 0:
            return False
        bucket = self._client_buckets.get(client_id)
        if bucket is None:
            bucket = TokenBucket(
                self.client_rate_per_s, self.client_burst or self.client_rate_per_s
            )
            bucket._last_ms = now_ms
            self._client_buckets[client_id] = bucket
        return not bucket.try_acquire(now_ms)

    def admit(
        self,
        now_ms: float,
        client_id: object = None,
        priority: str = "normal",
    ) -> AdmissionDecision:
        if priority not in PRIORITIES:
            raise ServingError(f"unknown priority {priority!r}")
        demoted = self._client_over_rate(client_id, now_ms)
        if demoted and priority != "high":
            # A client past its own rate sheds outright — letting it
            # compete for the global bucket would hand a flood exactly
            # the capacity it is trying to steal.
            return AdmissionDecision(False, "client_rate", "low")
        if priority == "low" and (
            self.bucket.fill_fraction(now_ms) < self.shed_low_watermark
        ):
            return AdmissionDecision(False, "shed_low", priority)
        if not self.bucket.try_acquire(now_ms):
            return AdmissionDecision(False, "shed_overload", priority)
        return AdmissionDecision(True, "ok", priority)


class CircuitBreaker:
    """Closed / open / half-open breaker over a failure-rate window.

    Outcomes land in a fixed-size ring; once at least ``min_samples``
    outcomes are present and the failure fraction reaches
    ``failure_threshold``, the breaker opens for ``cooldown_ms``.  After
    the cooldown it half-opens: up to ``half_open_probes`` requests are
    let through as probes — one success closes it (window reset), one
    failure re-opens it for a fresh cooldown.
    """

    def __init__(
        self,
        window: int = 16,
        failure_threshold: float = 0.5,
        min_samples: int = 8,
        cooldown_ms: float = 2_000.0,
        half_open_probes: int = 1,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ):
        if window < 1:
            raise ServingError("breaker window must be >= 1")
        if not 0.0 < failure_threshold <= 1.0:
            raise ServingError("failure_threshold must be in (0, 1]")
        if min_samples < 1 or min_samples > window:
            raise ServingError("min_samples must be in [1, window]")
        if cooldown_ms <= 0:
            raise ServingError("cooldown_ms must be > 0")
        if half_open_probes < 1:
            raise ServingError("half_open_probes must be >= 1")
        self.window = int(window)
        self.failure_threshold = float(failure_threshold)
        self.min_samples = int(min_samples)
        self.cooldown_ms = float(cooldown_ms)
        self.half_open_probes = int(half_open_probes)
        self.on_transition = on_transition
        self._state = CLOSED
        self._outcomes: List[bool] = []  # True == failure, ring of `window`
        self._opened_at_ms = 0.0
        self._probes_in_flight = 0
        self.transitions: List[Tuple[str, str]] = []

    def _transition(self, new_state: str) -> None:
        old = self._state
        if old == new_state:
            return
        self._state = new_state
        self.transitions.append((old, new_state))
        if self.on_transition is not None:
            self.on_transition(old, new_state)

    def state(self, now_ms: float) -> str:
        """Current state, applying a lazy open -> half-open transition."""
        if self._state == OPEN and now_ms >= self._opened_at_ms + self.cooldown_ms:
            self._probes_in_flight = 0
            self._transition(HALF_OPEN)
        return self._state

    def allow(self, now_ms: float) -> bool:
        state = self.state(now_ms)
        if state == CLOSED:
            return True
        if state == OPEN:
            return False
        if self._probes_in_flight < self.half_open_probes:
            self._probes_in_flight += 1
            return True
        return False

    def _failure_fraction(self) -> float:
        if not self._outcomes:
            return 0.0
        return sum(self._outcomes) / len(self._outcomes)

    def record_success(self, now_ms: float) -> None:
        if self.state(now_ms) == HALF_OPEN:
            # The probe came back: the replica is healthy again.
            self._outcomes = []
            self._probes_in_flight = 0
            self._transition(CLOSED)
            return
        self._outcomes.append(False)
        del self._outcomes[: -self.window]

    def record_failure(self, now_ms: float) -> None:
        if self.state(now_ms) == HALF_OPEN:
            self._probes_in_flight = 0
            self._opened_at_ms = now_ms
            self._transition(OPEN)
            return
        self._outcomes.append(True)
        del self._outcomes[: -self.window]
        if (
            self._state == CLOSED
            and len(self._outcomes) >= self.min_samples
            and self._failure_fraction() >= self.failure_threshold
        ):
            self._opened_at_ms = now_ms
            self._transition(OPEN)


class BreakerBoard:
    """One :class:`CircuitBreaker` per serving replica (node).

    The board is what the cluster consults during a lookup walk:
    ``allow`` gates each replica probe, ``record_*`` feeds outcomes
    back.  Transitions fan into an optional callback so the frontend
    can meter them (``serving_breaker_transitions_total``).
    """

    def __init__(
        self,
        window: int = 16,
        failure_threshold: float = 0.5,
        min_samples: int = 8,
        cooldown_ms: float = 2_000.0,
        half_open_probes: int = 1,
    ):
        self._kwargs = dict(
            window=window,
            failure_threshold=failure_threshold,
            min_samples=min_samples,
            cooldown_ms=cooldown_ms,
            half_open_probes=half_open_probes,
        )
        self._breakers: Dict[int, CircuitBreaker] = {}
        self.on_transition: Optional[Callable[[int, str, str], None]] = None

    def breaker_for(self, node_id: int) -> CircuitBreaker:
        breaker = self._breakers.get(node_id)
        if breaker is None:
            breaker = CircuitBreaker(
                on_transition=(
                    lambda old, new, _nid=node_id: self._notify(_nid, old, new)
                ),
                **self._kwargs,
            )
            self._breakers[node_id] = breaker
        return breaker

    def _notify(self, node_id: int, old: str, new: str) -> None:
        if self.on_transition is not None:
            self.on_transition(node_id, old, new)

    def allow(self, node_id: int, now_ms: float) -> bool:
        return self.breaker_for(node_id).allow(now_ms)

    def record_success(self, node_id: int, now_ms: float) -> None:
        self.breaker_for(node_id).record_success(now_ms)

    def record_failure(self, node_id: int, now_ms: float) -> None:
        self.breaker_for(node_id).record_failure(now_ms)

    def states(self, now_ms: float) -> Dict[int, str]:
        return {
            node_id: breaker.state(now_ms)
            for node_id, breaker in sorted(self._breakers.items())
        }

    def transition_count(self) -> int:
        return sum(len(b.transitions) for b in self._breakers.values())


class ServerQueue:
    """``n_servers`` simulated workers; computed responses occupy one.

    ``wait_time`` is what a request arriving *now* would wait for a free
    server; ``occupy`` commits a request to the earliest-free server and
    returns the wait actually charged.  Arrivals are processed in
    timestamp order, so the model is a deterministic M/G/n queue fed by
    the traffic generator's Poisson clock.
    """

    def __init__(self, n_servers: int = 8):
        if n_servers < 1:
            raise ServingError("queue needs at least one server")
        self.n_servers = int(n_servers)
        self._busy_until = [0.0] * self.n_servers
        #: High-watermark of the wait charged to any request.
        self.max_wait_ms = 0.0

    def wait_time(self, now_ms: float) -> float:
        return max(0.0, min(self._busy_until) - now_ms)

    def occupy(self, now_ms: float, service_ms: float) -> float:
        index = min(range(self.n_servers), key=lambda i: self._busy_until[i])
        start = max(now_ms, self._busy_until[index])
        self._busy_until[index] = start + max(0.0, service_ms)
        wait = start - now_ms
        if wait > self.max_wait_ms:
            self.max_wait_ms = wait
        return wait


@dataclass(frozen=True)
class DeadlinePolicy:
    """Per-request latency budget with bounded retry + backoff.

    ``deadline_ms`` caps the *total* simulated latency of a protected
    request (queue wait included).  ``max_retries`` bounds re-walks of a
    shard whose every replica failed, each charged
    ``retry_backoff_ms * 2**attempt`` before the retry — latency is
    charged honestly, so retries compete with the deadline.
    """

    deadline_ms: float = 25.0
    max_retries: int = 1
    retry_backoff_ms: float = 0.5

    def __post_init__(self) -> None:
        if self.deadline_ms <= 0:
            raise ServingError("deadline_ms must be > 0")
        if self.max_retries < 0:
            raise ServingError("max_retries must be >= 0")
        if self.retry_backoff_ms < 0:
            raise ServingError("retry_backoff_ms must be >= 0")

    def backoff_for(self, attempt: int) -> float:
        return self.retry_backoff_ms * (2.0 ** attempt)


@dataclass
class ProtectionStats:
    """Counters for every protective action taken (mirrored to metrics)."""

    shed: int = 0
    shed_by_reason: Dict[str, int] = field(default_factory=dict)
    deadline_truncated: int = 0
    retries: int = 0
    breaker_transitions: int = 0
    queue_bypassed: int = 0


class OverloadProtection:
    """The bundle a protected :class:`ServingFrontend` carries.

    Construction wires an :class:`AdmissionController`, a
    :class:`BreakerBoard`, and a :class:`DeadlinePolicy` together;
    the frontend consults them on every request.  One instance guards
    one frontend (the breaker board holds per-replica state).
    """

    def __init__(
        self,
        admission_rate_qps: float = 2_000.0,
        admission_burst: float = 200.0,
        shed_low_watermark: float = 0.25,
        client_rate_qps: float = 0.0,
        client_burst: float = 0.0,
        breaker_window: int = 16,
        breaker_failure_threshold: float = 0.5,
        breaker_min_samples: int = 8,
        breaker_cooldown_ms: float = 2_000.0,
        breaker_half_open_probes: int = 1,
        deadline: DeadlinePolicy = DeadlinePolicy(),
    ):
        self.admission = AdmissionController(
            rate_per_s=admission_rate_qps,
            burst=admission_burst,
            shed_low_watermark=shed_low_watermark,
            client_rate_per_s=client_rate_qps,
            client_burst=client_burst,
        )
        self.breakers = BreakerBoard(
            window=breaker_window,
            failure_threshold=breaker_failure_threshold,
            min_samples=breaker_min_samples,
            cooldown_ms=breaker_cooldown_ms,
            half_open_probes=breaker_half_open_probes,
        )
        self.deadline = deadline
        self.stats = ProtectionStats()

    def validate_for(self, cluster, fixed_floor_ms: float) -> None:
        """Reject deadlines too small to ever finish a fallback answer.

        The compute path reserves budget for one worst-case replica walk
        plus the blend and fallback constants; a deadline below that
        floor would force every request straight to the shed path, which
        is a configuration error, not protection.
        """
        if self.deadline.deadline_ms < fixed_floor_ms:
            raise ServingError(
                f"deadline_ms={self.deadline.deadline_ms} below the "
                f"minimum {fixed_floor_ms:.2f}ms needed to serve a "
                f"fallback answer on this cluster"
            )
