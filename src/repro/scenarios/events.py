"""Scripted world events: the vocabulary scenarios are written in.

A :class:`ScenarioEvent` is one timed mutation of the simulated world —
traffic shape, catalog population, cluster health, or the data pipeline
— applied at the *start* of its day, before any request of that day is
served.  Events are frozen and fully declarative (kind + parameters), so
a scenario is a pure value: replaying the same scenario always applies
the same events at the same simulated instants.

Event kinds
-----------

``set_qps``            — change the organic arrival rate (``qps``).
``boost_retailer``     — multiply one retailer's traffic share
                         (``retailer_id``, ``factor``): the flash-sale
                         primitive.
``clear_boosts``       — drop all traffic boosts (sale ends).
``onboard_retailer``   — a new retailer joins mid-scenario
                         (``retailer_id``, ``n_items``): cold start —
                         traffic arrives immediately, the popularity
                         fallback is loaded immediately, but the first
                         personalized table publishes the *next* day.
``merge_retailers``    — ``source`` is absorbed into ``target``: source
                         traffic stops, the target catalog grows by the
                         source's size and republishes.
``fail_node``          — a serving node dies (``node_id``).
``recover_node``       — it comes back (``node_id``).
``bot_flood``          — ``n_bots`` scripted clients fire ``requests``
                         cache-busting requests at ``retailer_id``
                         during the day, on top of organic traffic.
``drift``              — evolve every modeled retailer one step with
                         scaled :class:`~repro.data.evolution.EvolutionSpec`
                         rates (``new_item_rate``, ``interest_drift``,
                         ``daily_event_fraction`` optional overrides).
``skip_publish``       — the day's batch for ``retailer_id`` fails to
                         publish (gate rejection / pipeline failure):
                         the frontend expects the new version and counts
                         every serve of the old table as stale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from repro.exceptions import SigmundError

#: Every event kind the engine knows how to apply.
EVENT_KINDS = frozenset(
    {
        "set_qps",
        "boost_retailer",
        "clear_boosts",
        "onboard_retailer",
        "merge_retailers",
        "fail_node",
        "recover_node",
        "bot_flood",
        "drift",
        "skip_publish",
    }
)

#: Kinds stripped from a scenario to build its **control run** — the
#: counterfactual stream the CTR-invariance check compares against.
ADVERSARIAL_KINDS = frozenset({"bot_flood"})


@dataclass(frozen=True)
class ScenarioEvent:
    """One timed world mutation (applied at the start of ``day``)."""

    day: int
    kind: str
    #: Sorted ``(name, value)`` pairs — a frozen mapping, so events stay
    #: hashable and their JSON form is canonical.
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.day < 1:
            raise SigmundError("events fire on day >= 1")
        if self.kind not in EVENT_KINDS:
            raise SigmundError(f"unknown event kind {self.kind!r}")

    def get(self, name: str, default: object = None) -> object:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def require(self, name: str) -> object:
        value = self.get(name, default=_MISSING)
        if value is _MISSING:
            raise SigmundError(
                f"event {self.kind!r} (day {self.day}) missing parameter "
                f"{name!r}"
            )
        return value

    def as_dict(self) -> Mapping[str, object]:
        return {"day": self.day, "kind": self.kind, **dict(self.params)}


_MISSING = object()


def event(day: int, kind: str, **params: object) -> ScenarioEvent:
    """Build a :class:`ScenarioEvent` with canonically sorted params."""
    return ScenarioEvent(
        day=int(day), kind=kind, params=tuple(sorted(params.items()))
    )


def strip_adversarial(
    events: Tuple[ScenarioEvent, ...]
) -> Tuple[ScenarioEvent, ...]:
    """The control-run script: the same world minus the attack traffic."""
    return tuple(e for e in events if e.kind not in ADVERSARIAL_KINDS)
