"""The six scripted chaos drills (the scenario catalog).

Each builder returns a fully-specified :class:`~repro.scenarios.engine.Scenario`
— world sizing, timed events, deterministic seed, and the acceptance
checks the run must satisfy.  The catalog is the contract the E27 bench
and the ``repro chaos`` CLI run against:

==================  ===========================================================
``flash_sale``      One retailer's traffic spikes ~30x for a day (legitimate
                    demand).  Protection must shed to the popularity fallback
                    before the queue collapses; unprotected, the backlog blows
                    the p99 bound.
``seasonal_drift``  Sustained catalog/interest drift with daily republish; one
                    day's batch fails to publish.  Stale serves must appear
                    that day (counted, still answered) and clear the next.
``onboarding``      A wave of brand-new retailers arrives mid-scenario.  Cold
                    traffic serves from the instantly-shipped popularity
                    fallback until the first table publishes next day.
``catalog_merge``   A small retailer is absorbed into a larger one: traffic
                    redistributes, the merged catalog republishes, and nobody
                    sees an empty page.
``bot_flood``       Scripted clients hammer the head retailer with
                    cache-busting requests.  Per-client rate limits shed the
                    bots; organic CTR must not move versus the control run.
``cell_outage``     A third of serving nodes dies for a day under elevated
                    load.  Circuit breakers must trip (skipping the dead cell
                    for free), keep p99 bounded, and close again on recovery.
==================  ===========================================================
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.exceptions import SigmundError
from repro.scenarios.checks import (
    AvailabilityFloor,
    BreakerDiscipline,
    BucketCeiling,
    CTRInvariance,
    DegradedServes,
    P99Bound,
)
from repro.scenarios.engine import Scenario
from repro.scenarios.events import event

#: The deadline every protected scenario holds its p99 to.
DEADLINE_MS = 25.0


def flash_sale() -> Scenario:
    return Scenario(
        name="flash_sale",
        description="30x traffic spike on the head retailer for one day",
        seed=2701,
        days=3,
        retailer_items=(200, 120, 80, 60),
        base_qps=1_000.0,
        requests_per_day=2_500,
        n_servers=2,
        deadline_ms=DEADLINE_MS,
        events=(
            event(2, "set_qps", qps=8_000.0),
            event(2, "boost_retailer", retailer_id="r00", factor=30.0),
            event(3, "set_qps", qps=1_000.0),
            event(3, "clear_boosts"),
        ),
        checks=(
            AvailabilityFloor(0.999),
            P99Bound(DEADLINE_MS),
            # Shedding is the expected response to the spike...
            DegradedServes("shed", min_count=1, days=(2,)),
            # ...but must never become the dominant serving mode.
            BucketCeiling("shed", 0.6, days=(2,)),
        ),
    )


def seasonal_drift() -> Scenario:
    return Scenario(
        name="seasonal_drift",
        description="daily catalog/interest drift; one publish fails",
        seed=2702,
        days=4,
        retailer_items=(150, 100, 70),
        base_qps=1_000.0,
        requests_per_day=1_500,
        n_servers=2,
        deadline_ms=DEADLINE_MS,
        events=(
            event(1, "drift", new_item_rate=0.08, interest_drift=0.15),
            event(2, "drift", new_item_rate=0.08, interest_drift=0.15),
            event(3, "drift", new_item_rate=0.08, interest_drift=0.15),
            event(3, "skip_publish", retailer_id="r00"),
            event(4, "drift", new_item_rate=0.08, interest_drift=0.15),
        ),
        checks=(
            AvailabilityFloor(0.999),
            P99Bound(DEADLINE_MS),
            # The failed publish must surface as stale serves that day...
            DegradedServes("stale", min_count=1, days=(3,)),
            # ...and clear completely once publishing resumes.
            BucketCeiling("stale", 0.0, days=(4,)),
        ),
    )


def onboarding() -> Scenario:
    return Scenario(
        name="onboarding",
        description="three cold retailers onboard in one wave",
        seed=2703,
        days=4,
        retailer_items=(180, 110, 80),
        base_qps=1_000.0,
        requests_per_day=1_500,
        n_servers=2,
        deadline_ms=DEADLINE_MS,
        events=(
            event(2, "onboard_retailer", retailer_id="new_a", n_items=90),
            event(2, "onboard_retailer", retailer_id="new_b", n_items=70),
            event(2, "onboard_retailer", retailer_id="new_c", n_items=50),
        ),
        checks=(
            AvailabilityFloor(0.999),
            P99Bound(DEADLINE_MS),
            # Cold-start traffic must land on the popularity fallback
            # (never an empty page) until the first table publishes.
            DegradedServes("fallback", min_count=5, days=(2,)),
            # By the last day every onboarded retailer serves tables.
            BucketCeiling("fallback", 0.0, days=(4,)),
        ),
    )


def catalog_merge() -> Scenario:
    return Scenario(
        name="catalog_merge",
        description="the smallest retailer is absorbed into the second",
        seed=2704,
        days=3,
        retailer_items=(160, 110, 80, 50),
        base_qps=1_000.0,
        requests_per_day=1_500,
        n_servers=2,
        deadline_ms=DEADLINE_MS,
        events=(
            event(2, "merge_retailers", source="r03", target="r01"),
        ),
        checks=(
            AvailabilityFloor(1.0),
            P99Bound(DEADLINE_MS),
            BucketCeiling("empty", 0.0),
        ),
    )


def bot_flood() -> Scenario:
    return Scenario(
        name="bot_flood",
        description="cache-busting bot flood that must not move organic CTR",
        seed=2705,
        days=3,
        retailer_items=(200, 120, 80),
        base_qps=1_000.0,
        requests_per_day=2_000,
        n_servers=2,
        deadline_ms=DEADLINE_MS,
        client_rate_qps=5.0,
        client_burst=10.0,
        events=(
            event(2, "bot_flood", retailer_id="r00", n_bots=25,
                  requests=5_000),
        ),
        checks=(
            CTRInvariance(tolerance=0.015),
            AvailabilityFloor(0.999),
            P99Bound(DEADLINE_MS),
        ),
    )


def cell_outage() -> Scenario:
    return Scenario(
        name="cell_outage",
        description="a third of the serving fleet dies under elevated load",
        seed=2706,
        days=4,
        retailer_items=(180, 120, 90, 60),
        base_qps=1_000.0,
        requests_per_day=2_000,
        n_servers=2,
        n_nodes=6,
        replication=2,
        deadline_ms=DEADLINE_MS,
        breaker_cooldown_ms=400.0,
        events=(
            event(2, "set_qps", qps=2_400.0),
            event(2, "fail_node", node_id=0),
            event(2, "fail_node", node_id=1),
            event(3, "recover_node", node_id=0),
            event(3, "recover_node", node_id=1),
            event(4, "set_qps", qps=1_000.0),
        ),
        checks=(
            AvailabilityFloor(0.999),
            P99Bound(DEADLINE_MS),
            # Breakers must have tripped during the outage (two nodes
            # opening + closing again) and be closed by scenario end.
            BreakerDiscipline(min_transitions=4),
        ),
    )


#: Name -> builder.  Builders (not instances) keep every run fresh.
SCENARIOS: Dict[str, Callable[[], Scenario]] = {
    "flash_sale": flash_sale,
    "seasonal_drift": seasonal_drift,
    "onboarding": onboarding,
    "catalog_merge": catalog_merge,
    "bot_flood": bot_flood,
    "cell_outage": cell_outage,
}

#: The two cheapest drills, for CI smoke (E27_FAST) and quick local runs.
FAST_SCENARIOS = ("flash_sale", "cell_outage")


def get_scenario(name: str) -> Scenario:
    builder = SCENARIOS.get(name)
    if builder is None:
        raise SigmundError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        )
    return builder()


def scenario_names() -> List[str]:
    return sorted(SCENARIOS)
