"""Chaos scenario engine: scripted world events over the serving tier.

The paper's operational claim — thousands of recommendation problems
solved *daily* — only holds if the loop survives what real retail
traffic does: flash sales, bot floods, onboarding waves, cell outages.
This package scripts those events deterministically
(:mod:`repro.scenarios.events`), runs them against the real serving
stack (:mod:`repro.scenarios.engine`), and holds the outcome to
machine-checkable acceptance checks evaluated on sealed ``repro.obs``
day snapshots (:mod:`repro.scenarios.checks`).  The six canonical
drills live in :mod:`repro.scenarios.catalog`.
"""

from repro.scenarios.catalog import (
    FAST_SCENARIOS,
    SCENARIOS,
    get_scenario,
    scenario_names,
)
from repro.scenarios.checks import (
    AcceptanceCheck,
    AvailabilityFloor,
    BreakerDiscipline,
    BucketCeiling,
    CheckResult,
    CTRInvariance,
    DegradedServes,
    P99Bound,
)
from repro.scenarios.engine import (
    DayStats,
    Scenario,
    ScenarioResult,
    run_scenario,
)
from repro.scenarios.events import (
    ADVERSARIAL_KINDS,
    EVENT_KINDS,
    ScenarioEvent,
    event,
    strip_adversarial,
)

__all__ = [
    "Scenario",
    "ScenarioResult",
    "DayStats",
    "run_scenario",
    "ScenarioEvent",
    "event",
    "strip_adversarial",
    "EVENT_KINDS",
    "ADVERSARIAL_KINDS",
    "AcceptanceCheck",
    "CheckResult",
    "AvailabilityFloor",
    "P99Bound",
    "CTRInvariance",
    "DegradedServes",
    "BucketCeiling",
    "BreakerDiscipline",
    "SCENARIOS",
    "FAST_SCENARIOS",
    "get_scenario",
    "scenario_names",
]
