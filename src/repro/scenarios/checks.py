"""Machine-checkable acceptance checks over sealed scenario days.

Every check reads **only** the per-day seals a scenario run produced
(:class:`~repro.scenarios.engine.DayStats`, parsed back out of the
``repro.obs`` day-seal snapshots) — never live objects — so a verdict is
a pure function of the sealed record, and rerunning a scenario
byte-identically reruns its verdict byte-identically.

A check returns a :class:`CheckResult` with the observed value, the
bound it was held to, and a human-readable detail line; a scenario
passes when every check passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.exceptions import SigmundError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.scenarios.engine import DayStats, ScenarioResult


@dataclass(frozen=True)
class CheckResult:
    """One acceptance check's verdict."""

    name: str
    passed: bool
    observed: float
    bound: float
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "passed": bool(self.passed),
            "observed": float(self.observed),
            "bound": float(self.bound),
            "detail": self.detail,
        }


class AcceptanceCheck:
    """Base class: a named predicate over a :class:`ScenarioResult`."""

    name: str = "check"

    def evaluate(self, result: "ScenarioResult") -> CheckResult:
        raise NotImplementedError

    def _days(
        self, result: "ScenarioResult", days: Optional[Sequence[int]]
    ) -> Sequence["DayStats"]:
        stats = result.day_stats
        if days is None:
            return stats
        wanted = set(days)
        picked = [d for d in stats if d.day in wanted]
        if not picked:
            raise SigmundError(
                f"check {self.name!r} references days {sorted(wanted)} "
                "outside the scenario"
            )
        return picked


class AvailabilityFloor(AcceptanceCheck):
    """Every day must answer at least ``floor`` of requests non-empty."""

    def __init__(self, floor: float = 0.999, days: Optional[Sequence[int]] = None):
        if not 0.0 < floor <= 1.0:
            raise SigmundError("availability floor must be in (0, 1]")
        self.floor = float(floor)
        self.days = tuple(days) if days is not None else None
        self.name = f"availability>={self.floor}"

    def evaluate(self, result: "ScenarioResult") -> CheckResult:
        picked = self._days(result, self.days)
        worst = min(picked, key=lambda d: (d.availability, -d.day))
        return CheckResult(
            name=self.name,
            passed=worst.availability >= self.floor,
            observed=worst.availability,
            bound=self.floor,
            detail=(
                f"worst day {worst.day}: {worst.buckets.get('empty', 0)} of "
                f"{worst.requests} requests empty"
            ),
        )


class P99Bound(AcceptanceCheck):
    """No day's p99 simulated latency may exceed ``bound_ms``."""

    def __init__(self, bound_ms: float, days: Optional[Sequence[int]] = None):
        if bound_ms <= 0:
            raise SigmundError("p99 bound must be > 0")
        self.bound_ms = float(bound_ms)
        self.days = tuple(days) if days is not None else None
        self.name = f"p99<={self.bound_ms}ms"

    def evaluate(self, result: "ScenarioResult") -> CheckResult:
        picked = self._days(result, self.days)
        worst = max(picked, key=lambda d: (d.p99_ms, d.day))
        return CheckResult(
            name=self.name,
            passed=worst.p99_ms <= self.bound_ms,
            observed=worst.p99_ms,
            bound=self.bound_ms,
            detail=(
                f"worst day {worst.day}: p99 {worst.p99_ms:.2f}ms "
                f"(p50 {worst.p50_ms:.2f}ms)"
            ),
        )


class CTRInvariance(AcceptanceCheck):
    """Organic CTR must stay within ``tolerance`` of the control run.

    The control run replays the identical scenario (same seed, same
    organic stream) with adversarial events stripped; an attack the
    protection absorbs leaves organic click-through where the control
    puts it.  Compared on the whole-scenario pooled organic CTR.
    """

    def __init__(self, tolerance: float = 0.01):
        if tolerance <= 0:
            raise SigmundError("CTR tolerance must be > 0")
        self.tolerance = float(tolerance)
        self.name = f"ctr_invariant±{self.tolerance}"

    def evaluate(self, result: "ScenarioResult") -> CheckResult:
        if result.control_ctr is None:
            raise SigmundError(
                "CTRInvariance needs a control run (scenario has no "
                "adversarial events to strip?)"
            )
        delta = abs(result.organic_ctr - result.control_ctr)
        return CheckResult(
            name=self.name,
            passed=delta <= self.tolerance,
            observed=delta,
            bound=self.tolerance,
            detail=(
                f"organic CTR {result.organic_ctr:.4f} vs control "
                f"{result.control_ctr:.4f}"
            ),
        )


class DegradedServes(AcceptanceCheck):
    """A bucket must show at least ``min_count`` serves on given days.

    The *behavioral* freshness checks: a skipped publish must actually
    surface as stale serves (degraded-but-alive), an onboarding day must
    actually serve from the fallback — silence would mean the accounting
    lies.
    """

    def __init__(
        self,
        bucket: str,
        min_count: int = 1,
        days: Optional[Sequence[int]] = None,
    ):
        self.bucket = bucket
        self.min_count = int(min_count)
        self.days = tuple(days) if days is not None else None
        self.name = f"{bucket}_serves>={self.min_count}"

    def evaluate(self, result: "ScenarioResult") -> CheckResult:
        picked = self._days(result, self.days)
        observed = sum(d.buckets.get(self.bucket, 0) for d in picked)
        return CheckResult(
            name=self.name,
            passed=observed >= self.min_count,
            observed=float(observed),
            bound=float(self.min_count),
            detail=f"over days {[d.day for d in picked]}",
        )


class BucketCeiling(AcceptanceCheck):
    """A bucket's share of requests must stay below ``max_fraction``.

    Used to bound degradation: shedding is allowed under attack but must
    not become the dominant serving mode; stale serves must clear once
    publishes resume.
    """

    def __init__(
        self,
        bucket: str,
        max_fraction: float,
        days: Optional[Sequence[int]] = None,
    ):
        if not 0.0 <= max_fraction <= 1.0:
            raise SigmundError("max_fraction must be in [0, 1]")
        self.bucket = bucket
        self.max_fraction = float(max_fraction)
        self.days = tuple(days) if days is not None else None
        self.name = f"{bucket}_fraction<={self.max_fraction}"

    def evaluate(self, result: "ScenarioResult") -> CheckResult:
        picked = self._days(result, self.days)
        requests = sum(d.requests for d in picked)
        count = sum(d.buckets.get(self.bucket, 0) for d in picked)
        fraction = count / requests if requests else 0.0
        return CheckResult(
            name=self.name,
            passed=fraction <= self.max_fraction,
            observed=fraction,
            bound=self.max_fraction,
            detail=f"{count} of {requests} requests over days "
                   f"{[d.day for d in picked]}",
        )


class BreakerDiscipline(AcceptanceCheck):
    """Breakers must have tripped during the drill and be closed by the end.

    An outage that never trips a breaker means the protection slept
    through it; a breaker still open after recovery means the half-open
    probe path is broken.  Vacuously fails on unprotected runs (no
    breakers, no transitions).
    """

    def __init__(self, min_transitions: int = 2):
        self.min_transitions = int(min_transitions)
        self.name = f"breakers_tripped>={self.min_transitions}_and_closed"

    def evaluate(self, result: "ScenarioResult") -> CheckResult:
        transitions = sum(d.breaker_transitions for d in result.day_stats)
        final = result.day_stats[-1].open_breakers
        passed = transitions >= self.min_transitions and final == 0
        return CheckResult(
            name=self.name,
            passed=passed,
            observed=float(transitions),
            bound=float(self.min_transitions),
            detail=f"{final} breakers not closed at scenario end",
        )
