"""The chaos scenario engine: scripted world events, sealed verdicts.

A :class:`Scenario` is a frozen script: a small fleet of synthetic
retailers, an organic traffic shape, a list of timed
:class:`~repro.scenarios.events.ScenarioEvent`\\ s, and the
:class:`~repro.scenarios.checks.AcceptanceCheck`\\ s the run must
satisfy.  :func:`run_scenario` plays the script day by day:

1. apply the day's events (traffic spikes, node failures, onboarding,
   drift, bot floods, skipped publishes),
2. republish every retailer's tables (built from its — possibly
   evolved — ``item_popularity``) at ``version = day + 1``,
3. serve the day's merged organic + attack request stream through a
   real :class:`~repro.serving.frontend.ServingFrontend` (with or
   without overload protection — the run's one degree of freedom),
4. simulate clicks with a patience-bounded propensity model (slow
   responses are abandoned: latency is not a free metric),
5. **seal the day**: swap in a fresh ``repro.obs`` registry per day, so
   each day's counters/gauges/histograms are an immutable snapshot, and
   feed the serving-outcome buckets through
   :meth:`QualityMonitor.record_serving_window` (conservation is
   enforced on every single day, not just in tests).

Acceptance checks evaluate against the sealed
:class:`DayStats` — parsed back out of the snapshots, never read from
live objects — and the whole verdict serializes to canonical JSON:
running the same scenario twice yields byte-identical verdicts, which
``tests/test_scenarios.py`` asserts for every catalog entry.

Determinism rules: all randomness flows through
``derive_seed(scenario.seed, ...)`` streams; all timing through the
traffic generator's simulated millisecond clock.  Nothing reads the
wall clock.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace as dc_replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.monitoring import QualityMonitor
from repro.data.events import EventType
from repro.data.evolution import EvolutionSpec, evolve_retailer
from repro.data.generator import RetailerSpec, SyntheticRetailer, generate_retailer
from repro.data.sessions import UserContext
from repro.exceptions import SigmundError
from repro.models.base import ScoredItem
from repro.obs.metrics import MetricsRegistry
from repro.rng import derive_seed, make_rng
from repro.scenarios.checks import AcceptanceCheck, CheckResult, CTRInvariance
from repro.scenarios.events import (
    ADVERSARIAL_KINDS,
    ScenarioEvent,
    strip_adversarial,
)
from repro.serving.cluster import ServingCluster
from repro.serving.frontend import PopularityFallback, ServingFrontend
from repro.serving.overload import (
    DeadlinePolicy,
    OverloadProtection,
    ServerQueue,
)
from repro.serving.traffic import TrafficGenerator

#: Recommendations per item in the republished tables.
TABLE_RECS = 10

#: Click propensity by the serving bucket that produced the page.  A
#: popularity page converts worse than a personalized one; an empty page
#: never converts.  Values sit in the range the paper's Fig. 6 CTR plots
#: make plausible for browse placements.
CLICK_PROPENSITY: Dict[str, float] = {
    "fresh": 0.14,
    "cache": 0.14,
    "stale": 0.11,
    "fallback": 0.07,
    "shed": 0.07,
    "empty": 0.0,
}


@dataclass(frozen=True)
class Scenario:
    """One scripted chaos drill (a pure value: replayable, hashable-ish)."""

    name: str
    description: str
    seed: int
    days: int
    #: Base catalog sizes; retailer ids become ``r00, r01, ...`` in size
    #: order, so ``r00`` is always the head tenant.
    retailer_items: Tuple[int, ...]
    events: Tuple[ScenarioEvent, ...] = ()
    checks: Tuple[AcceptanceCheck, ...] = ()
    base_qps: float = 1_000.0
    requests_per_day: int = 2_000
    #: Users abandon (no click) any response slower than this.
    patience_ms: float = 50.0
    availability_floor: float = 0.999
    # --- world sizing -------------------------------------------------
    n_nodes: int = 6
    n_shards: int = 24
    replication: int = 2
    n_servers: int = 6
    n_users: int = 50_000
    # --- protection knobs (ignored on unprotected runs) ---------------
    admission_qps: float = 6_000.0
    admission_burst: float = 300.0
    shed_low_watermark: float = 0.5
    client_rate_qps: float = 5.0
    client_burst: float = 10.0
    deadline_ms: float = 25.0
    max_retries: int = 1
    breaker_cooldown_ms: float = 400.0
    breaker_min_samples: int = 8
    breaker_window: int = 16

    def __post_init__(self) -> None:
        if self.days < 1:
            raise SigmundError("a scenario needs at least one day")
        if not self.retailer_items:
            raise SigmundError("a scenario needs at least one retailer")
        late = [e for e in self.events if e.day > self.days]
        if late:
            raise SigmundError(
                f"events scheduled past day {self.days}: {late}"
            )

    def protection(self) -> OverloadProtection:
        return OverloadProtection(
            admission_rate_qps=self.admission_qps,
            admission_burst=self.admission_burst,
            shed_low_watermark=self.shed_low_watermark,
            client_rate_qps=self.client_rate_qps,
            client_burst=self.client_burst,
            breaker_window=self.breaker_window,
            breaker_min_samples=self.breaker_min_samples,
            breaker_cooldown_ms=self.breaker_cooldown_ms,
            deadline=DeadlinePolicy(
                deadline_ms=self.deadline_ms, max_retries=self.max_retries
            ),
        )


@dataclass(frozen=True)
class DayStats:
    """One sealed day, parsed back out of its ``repro.obs`` snapshot."""

    day: int
    requests: int
    buckets: Dict[str, int]
    p50_ms: float
    p99_ms: float
    availability: float
    organic_requests: int
    organic_clicks: int
    max_queue_wait_ms: float
    breaker_transitions: int
    open_breakers: int
    shed: int
    deadline_truncated: int

    @property
    def organic_ctr(self) -> float:
        if self.organic_requests == 0:
            return 0.0
        return self.organic_clicks / self.organic_requests

    def as_dict(self) -> Dict[str, object]:
        return {
            "day": self.day,
            "requests": self.requests,
            "buckets": {k: self.buckets[k] for k in sorted(self.buckets)},
            "p50_ms": round(self.p50_ms, 6),
            "p99_ms": round(self.p99_ms, 6),
            "availability": round(self.availability, 6),
            "organic_ctr": round(self.organic_ctr, 6),
            "shed": self.shed,
            "deadline_truncated": self.deadline_truncated,
            "breaker_transitions": self.breaker_transitions,
            "open_breakers": self.open_breakers,
            "max_queue_wait_ms": round(self.max_queue_wait_ms, 6),
        }


@dataclass
class ScenarioResult:
    """Everything a run produced: sealed days, checks, canonical verdict."""

    scenario: Scenario
    protected: bool
    day_stats: List[DayStats]
    seals: List[Dict[str, object]]
    monitor: QualityMonitor
    control_ctr: Optional[float] = None
    _verdict: Optional[Dict[str, object]] = field(default=None, repr=False)

    @property
    def organic_ctr(self) -> float:
        requests = sum(d.organic_requests for d in self.day_stats)
        clicks = sum(d.organic_clicks for d in self.day_stats)
        return clicks / requests if requests else 0.0

    @property
    def p99_ms(self) -> float:
        return max(d.p99_ms for d in self.day_stats)

    @property
    def availability(self) -> float:
        return min(d.availability for d in self.day_stats)

    def check_results(self) -> List[CheckResult]:
        return [check.evaluate(self) for check in self.scenario.checks]

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.check_results())

    def verdict(self) -> Dict[str, object]:
        """The machine-checkable outcome, suitable for canonical JSON."""
        if self._verdict is None:
            checks = [r.as_dict() for r in self.check_results()]
            self._verdict = {
                "scenario": self.scenario.name,
                "seed": self.scenario.seed,
                "protected": self.protected,
                "passed": all(c["passed"] for c in checks),
                "checks": checks,
                "organic_ctr": round(self.organic_ctr, 6),
                "control_ctr": (
                    None if self.control_ctr is None
                    else round(self.control_ctr, 6)
                ),
                "days": [d.as_dict() for d in self.day_stats],
            }
        return self._verdict

    def verdict_json(self) -> str:
        """Canonical JSON — byte-identical across identical reruns."""
        return json.dumps(
            self.verdict(), sort_keys=True, separators=(",", ":")
        )


@dataclass(frozen=True)
class _BotRequest:
    retailer_id: str
    client_id: str
    context: UserContext
    timestamp_ms: float


class _World:
    """The mutable simulated world one scenario run plays against."""

    def __init__(self, scenario: Scenario, protected: bool):
        self.scenario = scenario
        self.retailers: Dict[str, SyntheticRetailer] = {}
        sizes = sorted(scenario.retailer_items, reverse=True)
        for index, n_items in enumerate(sizes):
            rid = f"r{index:02d}"
            self.retailers[rid] = generate_retailer(
                RetailerSpec(
                    retailer_id=rid,
                    n_items=int(n_items),
                    n_users=max(12, int(n_items) // 4),
                    seed=derive_seed(scenario.seed, "retailer", index),
                )
            )
        self.cluster = ServingCluster(
            n_nodes=scenario.n_nodes,
            n_shards=scenario.n_shards,
            replication=scenario.replication,
            hot_fraction=0.3,
            memory_capacity_entries=1_000_000,
        )
        self.fallback = PopularityFallback()
        self.queue = ServerQueue(n_servers=scenario.n_servers)
        self.frontend = ServingFrontend(
            self.cluster,
            fallback=self.fallback,
            protection=scenario.protection() if protected else None,
            queue=self.queue,
        )
        self.traffic = TrafficGenerator(
            {rid: r.spec.n_items for rid, r in self.retailers.items()},
            n_users=scenario.n_users,
            qps=scenario.base_qps,
            seed=derive_seed(scenario.seed, "traffic"),
        )
        self.monitor = QualityMonitor()
        # Day-0 bootstrap: every retailer starts published and fresh.
        for rid in sorted(self.retailers):
            self.publish(rid, version=1)
        #: Retailers onboarded today (cold: first table publishes tomorrow).
        self.cold_today: set = set()
        #: Retailers whose publish fails today (stale serves expected).
        self.skip_today: set = set()
        #: The day's active bot flood, if any.
        self.flood: Optional[ScenarioEvent] = None

    def publish(self, rid: str, version: int) -> None:
        retailer = self.retailers[rid]
        self.cluster.load_batch(rid, _build_table(retailer), version=version)
        self.frontend.expect_version(rid, version)
        self.fallback.load_view_counts(
            rid,
            {
                item: float(pop)
                for item, pop in enumerate(retailer.item_popularity)
            },
        )

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def apply(self, ev: ScenarioEvent, day: int) -> None:
        if ev.kind == "set_qps":
            self.traffic.set_qps(float(ev.require("qps")))
        elif ev.kind == "boost_retailer":
            self.traffic.set_retailer_boost(
                str(ev.require("retailer_id")), float(ev.require("factor"))
            )
        elif ev.kind == "clear_boosts":
            self.traffic.clear_boosts()
        elif ev.kind == "onboard_retailer":
            rid = str(ev.require("retailer_id"))
            n_items = int(ev.require("n_items"))
            self.retailers[rid] = generate_retailer(
                RetailerSpec(
                    retailer_id=rid,
                    n_items=n_items,
                    n_users=max(12, n_items // 4),
                    seed=derive_seed(self.scenario.seed, "onboard", rid),
                )
            )
            self.traffic.add_retailer(rid, n_items)
            # The popularity fallback ships instantly (it needs no
            # training run); personalized tables publish tomorrow.
            self.fallback.load_view_counts(
                rid,
                {
                    item: float(pop)
                    for item, pop in enumerate(
                        self.retailers[rid].item_popularity
                    )
                },
            )
            self.cold_today.add(rid)
        elif ev.kind == "merge_retailers":
            source = str(ev.require("source"))
            target = str(ev.require("target"))
            if source not in self.retailers or target not in self.retailers:
                raise SigmundError(
                    f"merge needs both retailers: {source!r} -> {target!r}"
                )
            merged_items = (
                self.retailers[target].spec.n_items
                + self.retailers[source].spec.n_items
            )
            del self.retailers[source]
            self.traffic.remove_retailer(source)
            self.fallback.drop(source)
            self.frontend.invalidate_retailer(source)
            self.retailers[target] = generate_retailer(
                RetailerSpec(
                    retailer_id=target,
                    n_items=merged_items,
                    n_users=max(12, merged_items // 4),
                    seed=derive_seed(self.scenario.seed, "merge", target, day),
                )
            )
            self.traffic.resize_retailer(target, merged_items)
        elif ev.kind == "fail_node":
            self.cluster.fail_node(int(ev.require("node_id")))
        elif ev.kind == "recover_node":
            self.cluster.recover_node(int(ev.require("node_id")))
        elif ev.kind == "bot_flood":
            self.flood = ev
        elif ev.kind == "drift":
            spec = EvolutionSpec(
                new_item_rate=float(ev.get("new_item_rate", 0.05)),
                interest_drift=float(ev.get("interest_drift", 0.10)),
                daily_event_fraction=float(
                    ev.get("daily_event_fraction", 0.3)
                ),
            )
            for rid in sorted(self.retailers):
                evolved = evolve_retailer(self.retailers[rid], day, spec)
                self.retailers[rid] = evolved
                self.traffic.resize_retailer(rid, evolved.spec.n_items)
        elif ev.kind == "skip_publish":
            self.skip_today.add(str(ev.require("retailer_id")))
        else:  # pragma: no cover - ScenarioEvent already validates kinds
            raise SigmundError(f"unhandled event kind {ev.kind!r}")


def _build_table(retailer: SyntheticRetailer) -> Dict[int, List[ScoredItem]]:
    """A popularity-anchored item-item table (deterministic, cheap).

    Each item recommends the catalog's strongest items (minus itself);
    scores follow ``item_popularity``, so hot-tier placement, traffic
    skew, and fallback ranking all tell one story — and a day of drift
    genuinely reshuffles what gets published.
    """
    pop = np.asarray(retailer.item_popularity, dtype=np.float64)
    n = pop.size
    order = np.lexsort((np.arange(n), -pop))
    head = [int(i) for i in order[: TABLE_RECS + 1]]
    return {
        item: [
            ScoredItem(other, float(pop[other]))
            for other in head
            if other != item
        ][:TABLE_RECS]
        for item in range(n)
    }


def _bot_requests(
    scenario: Scenario,
    flood: ScenarioEvent,
    day: int,
    window: Tuple[float, float],
    catalog_size: int,
) -> List[_BotRequest]:
    """The day's scripted attack stream (cache-busting tail contexts)."""
    rid = str(flood.require("retailer_id"))
    n_bots = int(flood.require("n_bots"))
    n_requests = int(flood.require("requests"))
    rng = make_rng(derive_seed(scenario.seed, "bots", day))
    start, end = window
    stamps = np.sort(rng.uniform(start, end, size=n_requests))
    bots = rng.integers(0, n_bots, size=n_requests)
    items = rng.integers(0, catalog_size, size=(n_requests, 3))
    return [
        _BotRequest(
            retailer_id=rid,
            client_id=f"bot{int(bots[i])}",
            context=UserContext.from_pairs(
                [(EventType.VIEW, int(item)) for item in items[i]]
            ),
            timestamp_ms=float(stamps[i]),
        )
        for i in range(n_requests)
    ]


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, max(0, math.ceil(q * len(sorted_values)) - 1)
    )
    return float(sorted_values[index])


def run_scenario(
    scenario: Scenario,
    protected: bool = True,
    _control: bool = False,
) -> ScenarioResult:
    """Play one scenario end to end; returns sealed days + verdict.

    ``protected=False`` runs the identical world and request stream
    without the overload-protection bundle — the counterfactual the E27
    bench (and the "at least two scenarios must fail unprotected"
    acceptance criterion) measures.
    """
    world = _World(scenario, protected)
    day_stats: List[DayStats] = []
    seals: List[Dict[str, object]] = []

    for day in range(1, scenario.days + 1):
        registry = MetricsRegistry()
        world.frontend.metrics = registry
        world.cold_today = set()
        world.skip_today = set()
        world.flood = None
        for ev in scenario.events:
            if ev.day == day:
                world.apply(ev, day)

        # Daily publish: every warm retailer gets the day's table.
        version = day + 1
        for rid in sorted(world.retailers):
            if rid in world.cold_today:
                continue  # cold start: nothing to publish yet
            if rid in world.skip_today:
                # The batch failed downstream; the frontend still expects
                # the new version, so the old table serves as stale.
                world.frontend.expect_version(rid, version)
                continue
            world.publish(rid, version)

        organic = world.traffic.generate(scenario.requests_per_day)
        window = (organic[0].timestamp_ms, organic[-1].timestamp_ms)
        stream: List[Tuple[float, int, int, object]] = [
            (req.timestamp_ms, 0, i, req) for i, req in enumerate(organic)
        ]
        if world.flood is not None:
            rid = str(world.flood.require("retailer_id"))
            if rid not in world.retailers:
                raise SigmundError(f"bot flood targets unknown retailer {rid!r}")
            bots = _bot_requests(
                scenario, world.flood, day, window,
                world.retailers[rid].spec.n_items,
            )
            stream.extend(
                (bot.timestamp_ms, 1, i, bot) for i, bot in enumerate(bots)
            )
        stream.sort(key=lambda entry: entry[:3])

        click_rng = make_rng(derive_seed(scenario.seed, "clicks", day))
        latencies: List[float] = []
        max_queue_wait = 0.0
        organic_requests = 0
        organic_clicks = 0
        for _, source, _, req in stream:
            if source == 0:
                response = world.frontend.request(
                    req.retailer_id, req.context, k=TABLE_RECS,
                    now_ms=req.timestamp_ms,
                )
                organic_requests += 1
                draw = float(click_rng.random())
                propensity = CLICK_PROPENSITY.get(response.served_from, 0.0)
                if (
                    response.latency_ms <= scenario.patience_ms
                    and draw < propensity
                ):
                    organic_clicks += 1
            else:
                response = world.frontend.request(
                    req.retailer_id, req.context, k=TABLE_RECS,
                    now_ms=req.timestamp_ms, client_id=req.client_id,
                )
            latencies.append(response.latency_ms)
            if response.queue_wait_ms > max_queue_wait:
                max_queue_wait = response.queue_wait_ms

        latencies.sort()
        p50 = _percentile(latencies, 0.50)
        p99 = _percentile(latencies, 0.99)

        snapshot = registry.snapshot()
        requests = int(snapshot.counter_total("frontend_requests_total"))
        buckets = {
            "cache": int(snapshot.counter_total("frontend_cache_hits_total")),
            "coalesced": int(snapshot.counter_total("frontend_coalesced_total")),
            "fresh": int(snapshot.counter_total("frontend_fresh_serves_total")),
            "stale": int(snapshot.counter_total("frontend_stale_serves_total")),
            "fallback": int(snapshot.counter_total("frontend_fallback_total")),
            "shed": int(snapshot.counter_total("frontend_shed_total")),
            "empty": int(snapshot.counter_total("frontend_empty_total")),
        }
        # Conservation is enforced on EVERY day of EVERY scenario: a
        # double-count or gap in the serving buckets raises right here.
        window_stats = world.monitor.record_serving_window(
            day, requests, buckets,
            availability_floor=scenario.availability_floor,
        )

        breakers = (
            world.frontend.protection.breakers
            if world.frontend.protection is not None
            else None
        )
        open_breakers = 0
        if breakers is not None:
            end_of_day = stream[-1][0] if stream else 0.0
            open_breakers = sum(
                1 for state in breakers.states(end_of_day).values()
                if state != "closed"
            )
        registry.gauge("scenario_p50_ms").set(p50)
        registry.gauge("scenario_p99_ms").set(p99)
        registry.gauge("scenario_availability").set(window_stats.availability)
        registry.gauge("scenario_open_breakers").set(float(open_breakers))
        registry.gauge("scenario_max_queue_wait_ms").set(max_queue_wait)
        registry.counter("scenario_organic_requests_total").inc(
            organic_requests
        )
        registry.counter("scenario_organic_clicks_total").inc(organic_clicks)

        seal = registry.snapshot().to_dict()
        seals.append(seal)
        world.monitor.record_day_snapshot(day, seal)
        day_stats.append(_day_from_seal(day, seal))

    result = ScenarioResult(
        scenario=scenario,
        protected=protected,
        day_stats=day_stats,
        seals=seals,
        monitor=world.monitor,
    )
    needs_control = (
        not _control
        and any(isinstance(c, CTRInvariance) for c in scenario.checks)
        and any(e.kind in ADVERSARIAL_KINDS for e in scenario.events)
    )
    if needs_control:
        control_scenario = dc_replace(
            scenario, events=strip_adversarial(scenario.events), checks=()
        )
        control = run_scenario(
            control_scenario, protected=protected, _control=True
        )
        result.control_ctr = control.organic_ctr
    return result


def _day_from_seal(day: int, seal: Dict[str, object]) -> DayStats:
    """Parse a sealed snapshot dict back into check-ready day stats.

    This is the only path from a run to its verdict: checks never see
    live counters, so a verdict can be recomputed from the sealed
    record alone.
    """
    counters: Dict[str, float] = seal["counters"]  # type: ignore[assignment]
    gauges: Dict[str, float] = seal["gauges"]  # type: ignore[assignment]

    def counter_total(name: str) -> int:
        prefix_a, prefix_b = name + "{", name
        return int(
            sum(
                value
                for key, value in counters.items()
                if key == prefix_b or key.startswith(prefix_a)
            )
        )

    requests = counter_total("frontend_requests_total")
    buckets = {
        "cache": counter_total("frontend_cache_hits_total"),
        "coalesced": counter_total("frontend_coalesced_total"),
        "fresh": counter_total("frontend_fresh_serves_total"),
        "stale": counter_total("frontend_stale_serves_total"),
        "fallback": counter_total("frontend_fallback_total"),
        "shed": counter_total("frontend_shed_total"),
        "empty": counter_total("frontend_empty_total"),
    }
    return DayStats(
        day=day,
        requests=requests,
        buckets=buckets,
        p50_ms=float(gauges.get("scenario_p50_ms", 0.0)),
        p99_ms=float(gauges.get("scenario_p99_ms", 0.0)),
        availability=float(gauges.get("scenario_availability", 1.0)),
        organic_requests=counter_total("scenario_organic_requests_total"),
        organic_clicks=counter_total("scenario_organic_clicks_total"),
        max_queue_wait_ms=float(gauges.get("scenario_max_queue_wait_ms", 0.0)),
        breaker_transitions=counter_total("serving_breaker_transitions_total"),
        open_breakers=int(gauges.get("scenario_open_breakers", 0.0)),
        shed=counter_total("frontend_shed_total"),
        deadline_truncated=counter_total("frontend_deadline_truncated_total"),
    )
