"""Online A/B experiments over the traffic simulator (paper section V).

"Offline metrics do not directly translate to improvements in online
metrics ... we relied on a series of carefully structured online
experiments to inform our design choices."

This module provides that machinery against the synthetic ground truth:
users are hashed into arms (consistent assignment — one user always sees
one system), traffic is replayed through each arm's recommender, and the
result is a CTR lift with a two-proportion z-test so design decisions are
made on significance, not noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Sequence, Tuple

from repro.data.datasets import RetailerDataset
from repro.exceptions import DataError
from repro.models.base import Recommender
from repro.rng import SeedLike, hash_string, make_rng
from repro.simulation.ctr import ClickModel


@dataclass
class ArmResult:
    """Aggregated outcomes of one experiment arm."""

    name: str
    users: int = 0
    impressions: int = 0
    clicks: int = 0

    @property
    def ctr(self) -> float:
        return self.clicks / self.impressions if self.impressions else 0.0


@dataclass
class ExperimentResult:
    """Outcome of an A/B test: per-arm stats plus the significance test."""

    control: ArmResult
    treatment: ArmResult
    z_score: float
    p_value: float

    @property
    def lift(self) -> float:
        """Relative CTR lift of treatment over control."""
        if self.control.ctr == 0:
            return 0.0
        return self.treatment.ctr / self.control.ctr - 1.0

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def _normal_sf(z: float) -> float:
    """Survival function of the standard normal (no scipy dependency)."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def two_proportion_z_test(
    clicks_a: int, shown_a: int, clicks_b: int, shown_b: int
) -> Tuple[float, float]:
    """Two-sided two-proportion z-test; returns ``(z, p_value)``.

    The standard analysis for CTR experiments: pooled proportion, normal
    approximation.  Degenerate inputs (no traffic, zero variance) return
    ``(0, 1)`` — "no evidence".
    """
    if shown_a == 0 or shown_b == 0:
        return 0.0, 1.0
    p_a = clicks_a / shown_a
    p_b = clicks_b / shown_b
    pooled = (clicks_a + clicks_b) / (shown_a + shown_b)
    variance = pooled * (1.0 - pooled) * (1.0 / shown_a + 1.0 / shown_b)
    if variance <= 0:
        return 0.0, 1.0
    z = (p_b - p_a) / math.sqrt(variance)
    return z, 2.0 * _normal_sf(abs(z))


class ABExperiment:
    """A two-arm online experiment with consistent user assignment.

    ``builders`` maps arm names to recommender builders (control first);
    each user is deterministically hashed into an arm so repeated visits
    see a consistent experience — the structure production experiments
    require to be interpretable.
    """

    def __init__(
        self,
        control_name: str,
        treatment_name: str,
        traffic_split: float = 0.5,
        salt: str = "sigmund-ab",
    ):
        if not 0.0 < traffic_split < 1.0:
            raise DataError("traffic_split must be in (0, 1)")
        self.control_name = control_name
        self.treatment_name = treatment_name
        self.traffic_split = traffic_split
        self.salt = salt

    def arm_of(self, user_id: int) -> str:
        """Deterministic arm assignment by salted user hash."""
        bucket = hash_string(f"{self.salt}:{user_id}") % 10_000
        if bucket < self.traffic_split * 10_000:
            return self.control_name
        return self.treatment_name

    def run(
        self,
        datasets: Sequence[RetailerDataset],
        builders: Mapping[str, Callable[[RetailerDataset], Recommender]],
        requests_per_retailer: int = 300,
        k: int = 6,
        click_model: ClickModel = ClickModel(),
        seed: SeedLike = 0,
    ) -> ExperimentResult:
        """Replay traffic, routing each user to their assigned arm."""
        missing = {self.control_name, self.treatment_name} - set(builders)
        if missing:
            raise DataError(f"missing builders for arms: {sorted(missing)}")
        rng = make_rng(seed)
        arms = {
            self.control_name: ArmResult(self.control_name),
            self.treatment_name: ArmResult(self.treatment_name),
        }
        for dataset in datasets:
            truth = dataset.source
            if truth is None:
                raise DataError(
                    f"dataset {dataset.retailer_id!r} lacks ground truth"
                )
            recommenders = {
                name: builders[name](dataset)
                for name in (self.control_name, self.treatment_name)
            }
            holdout = dataset.holdout
            if not holdout:
                continue
            seen_users: Dict[str, set] = {name: set() for name in arms}
            for _ in range(requests_per_retailer):
                example = holdout[int(rng.integers(len(holdout)))]
                arm_name = self.arm_of(example.user_id)
                arm = arms[arm_name]
                seen_users[arm_name].add((dataset.retailer_id, example.user_id))
                recent = (
                    example.context.most_recent_item
                    if len(example.context)
                    else None
                )
                for scored in recommenders[arm_name].recommend(example.context, k=k):
                    arm.impressions += 1
                    affinity = truth.affinity(example.user_id, scored.item_index)
                    is_companion = recent is not None and truth.is_companion(
                        recent, scored.item_index
                    )
                    if rng.random() < click_model.click_probability(
                        affinity, is_companion=is_companion
                    ):
                        arm.clicks += 1
            for name in arms:
                arms[name].users += len(seen_users[name])

        control = arms[self.control_name]
        treatment = arms[self.treatment_name]
        z, p = two_proportion_z_test(
            control.clicks, control.impressions,
            treatment.clicks, treatment.impressions,
        )
        return ExperimentResult(
            control=control, treatment=treatment, z_score=z, p_value=p
        )
