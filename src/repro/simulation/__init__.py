"""Online-experiment simulation: impressions, clicks, CTR.

The paper's only data figure (Fig. 6) comes from live traffic: average
CTR of an item shown as a recommendation, bucketed by that item's daily
impression count, for Sigmund vs a co-occurrence baseline.  We have no
live traffic, so this package simulates it from the synthetic ground
truth: users click a shown recommendation with probability increasing in
their true affinity for it.  The *shape* of Fig. 6 — factorization lifts
the long tail, ties the head — is what the simulation reproduces.
"""

from repro.simulation.ctr import (
    ClickModel,
    CTRReport,
    ctr_by_popularity_bucket,
    simulate_ctr,
)
from repro.simulation.experiments import (
    ABExperiment,
    ArmResult,
    ExperimentResult,
    two_proportion_z_test,
)

__all__ = [
    "ClickModel",
    "CTRReport",
    "simulate_ctr",
    "ctr_by_popularity_bucket",
    "ABExperiment",
    "ArmResult",
    "ExperimentResult",
    "two_proportion_z_test",
]
