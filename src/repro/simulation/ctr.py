"""Click-through-rate simulation against synthetic ground truth.

``simulate_ctr`` replays recommendation traffic: for each request a user
arrives with their (held-out) context, each competing system shows its
top-K, and the click model decides clicks from the user's ground-truth
affinity.  Impressions and clicks are tallied *per recommended item*,
because Fig. 6's x-axis is the item's own impression volume.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.data.datasets import RetailerDataset
from repro.exceptions import DataError
from repro.models.base import Recommender
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class ClickModel:
    """Maps ground-truth utility to click probability.

    ``p(click) = max_ctr * sigmoid(sharpness * (utility - threshold))`` —
    a standard position-free choice model, where utility is the user's
    latent affinity plus a bonus when the shown item is a ground-truth
    *companion* of the item the user is currently looking at (people
    click the case for the phone on their screen).  ``max_ctr`` keeps
    absolute CTRs realistic.
    """

    threshold: float = 1.0
    sharpness: float = 1.2
    max_ctr: float = 0.35
    companion_bonus: float = 1.5

    def click_probability(self, affinity: float, is_companion: bool = False) -> float:
        utility = affinity + (self.companion_bonus if is_companion else 0.0)
        z = self.sharpness * (utility - self.threshold)
        return self.max_ctr / (1.0 + math.exp(-float(np.clip(z, -35.0, 35.0))))


@dataclass
class CTRReport:
    """Per-system, per-item impressions and clicks, plus request counts."""

    impressions: Dict[str, Dict[Tuple[str, int], int]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(int))
    )
    clicks: Dict[str, Dict[Tuple[str, int], int]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(int))
    )
    requests: int = 0
    days: float = 1.0

    def overall_ctr(self, system: str) -> float:
        shown = sum(self.impressions[system].values())
        clicked = sum(self.clicks[system].values())
        return clicked / shown if shown else 0.0

    def item_rows(self, system: str) -> List[Tuple[float, float]]:
        """(impressions_per_day, ctr) per item for one system."""
        rows = []
        for key, shown in self.impressions[system].items():
            if shown == 0:
                continue
            clicked = self.clicks[system].get(key, 0)
            rows.append((shown / self.days, clicked / shown))
        return rows


def simulate_ctr(
    datasets: Sequence[RetailerDataset],
    systems: Mapping[str, Callable[[RetailerDataset], Recommender]],
    requests_per_retailer: int = 200,
    k: int = 6,
    days: float = 7.0,
    click_model: ClickModel = ClickModel(),
    seed: SeedLike = 0,
) -> CTRReport:
    """Run the simulated online experiment across many retailers.

    ``systems`` maps a system name to a builder that produces its
    recommender for one retailer (so each system trains/fits on exactly
    the same data).  Requests draw holdout users, mirroring the paper's
    setup where the experiment traffic is disjoint from training.
    """
    report = CTRReport(days=days)
    rng = make_rng(seed)
    for dataset in datasets:
        truth = dataset.source
        if truth is None:
            raise DataError(
                f"dataset {dataset.retailer_id!r} has no synthetic ground truth; "
                "CTR simulation needs one"
            )
        recommenders = {
            name: builder(dataset) for name, builder in systems.items()
        }
        holdout = dataset.holdout
        if not holdout:
            continue
        for _ in range(requests_per_retailer):
            example = holdout[int(rng.integers(len(holdout)))]
            report.requests += 1
            recent = (
                example.context.most_recent_item if len(example.context) else None
            )
            for name, recommender in recommenders.items():
                shown = recommender.recommend(example.context, k=k)
                for scored in shown:
                    key = (dataset.retailer_id, scored.item_index)
                    report.impressions[name][key] += 1
                    affinity = truth.affinity(example.user_id, scored.item_index)
                    is_companion = recent is not None and truth.is_companion(
                        recent, scored.item_index
                    )
                    probability = click_model.click_probability(
                        affinity, is_companion=is_companion
                    )
                    if rng.random() < probability:
                        report.clicks[name][key] += 1
    return report


def ctr_by_popularity_bucket(
    report: CTRReport,
    system: str,
    bucket_edges: Optional[Sequence[float]] = None,
) -> List[Tuple[str, float, float, int]]:
    """Fig. 6 series: mean CTR per impressions-per-day bucket.

    Returns ``(bucket_label, mean_impressions_per_day, mean_ctr, items)``
    rows, least popular bucket first.  Default buckets are logarithmic,
    matching how the paper's popularity axis spans orders of magnitude.
    """
    rows = report.item_rows(system)
    if not rows:
        return []
    if bucket_edges is None:
        max_pop = max(pop for pop, _ in rows)
        edges = [0.0]
        edge = 0.5
        while edge < max_pop:
            edges.append(edge)
            edge *= 2.0
        edges.append(float("inf"))
        bucket_edges = edges
    buckets: List[List[Tuple[float, float]]] = [
        [] for _ in range(len(bucket_edges) - 1)
    ]
    for pop, ctr in rows:
        for b in range(len(bucket_edges) - 1):
            if bucket_edges[b] <= pop < bucket_edges[b + 1]:
                buckets[b].append((pop, ctr))
                break
    result = []
    for b, members in enumerate(buckets):
        if not members:
            continue
        label = f"[{bucket_edges[b]:.2g}, {bucket_edges[b + 1]:.2g})"
        mean_pop = sum(p for p, _ in members) / len(members)
        mean_ctr = sum(c for _, c in members) / len(members)
        result.append((label, mean_pop, mean_ctr, len(members)))
    return result
