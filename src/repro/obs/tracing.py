"""Span-based tracing against the simulated clock.

Real distributed tracers timestamp spans with the host clock, which makes
traces flaky by construction.  Sigmund's pipelines already measure every
duration against :class:`~repro.cluster.clock.SimClock` — so the tracer
does too, and a trace becomes a *deterministic artifact*: the same fleet,
seeds, and day produce the identical span tree, byte for byte
(``tests/test_obs_tracing.py`` asserts exactly that across fresh reruns).

Two ways to emit spans:

* :meth:`Tracer.span` — a context manager for coordinator-side phases;
  start/end are read from the simulated clock, nesting gives parentage.
* :meth:`Tracer.record_span` — explicit start/end for work whose timing
  was *simulated elsewhere* (a MapReduce task's scheduling attempts, a
  speculative backup copy); the caller supplies the job-relative times.

:data:`NULL_TRACER` is the disabled mode, mirroring the null metrics
registry: entering a span costs one constant context-manager round trip.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster.clock import SimClock


class Span:
    """One open span; closes via the tracer's context manager."""

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "attrs")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start: float,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end = start
        self.attrs: Dict[str, object] = {}

    def set(self, key: str, value: object) -> None:
        """Attach an attribute to the span (e.g. counts discovered inside)."""
        self.attrs[key] = value

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"[{self.start:.3f}, {self.end:.3f}])"
        )


class _SpanContext:
    """Context manager binding one span to the tracer's stack."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._finish(self.span)


class Tracer:
    """Collects spans timestamped by a simulated clock.

    Span ids are sequential in open order, parentage comes from the open
    stack — both functions of the program's control flow alone, so a
    trace is replayable: no wall clock, no thread ids, no randomness.
    """

    enabled = True

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock or SimClock()
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 0

    # ------------------------------------------------------------------
    # Emitting spans
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: object) -> _SpanContext:
        """Open a child span of the innermost open span at ``clock.now``."""
        parent = self._stack[-1].span_id if self._stack else None
        record = Span(self._next_id, parent, name, self.clock.now)
        self._next_id += 1
        record.attrs.update(attrs)
        self._stack.append(record)
        return _SpanContext(self, record)

    def _finish(self, span: Span) -> None:
        self._stack.pop()
        span.end = self.clock.now
        self.spans.append(span)

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        **attrs: object,
    ) -> Span:
        """Record a completed span with explicit simulated times.

        For work simulated off the coordinator timeline (MapReduce task
        attempts live on a job-relative clock); parented under the
        innermost open span so the tree still reads top-down.
        """
        parent = self._stack[-1].span_id if self._stack else None
        record = Span(self._next_id, parent, name, float(start))
        self._next_id += 1
        record.end = float(end)
        record.attrs.update(attrs)
        self.spans.append(record)
        return record

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def find(self, name: str) -> List[Span]:
        return [span for span in self.spans if span.name == name]

    def children_of(self, span_id: Optional[int]) -> List[Span]:
        return [span for span in self.spans if span.parent_id == span_id]

    def span_tree(self) -> List[Tuple[int, Span]]:
        """Depth-first (depth, span) pairs from the roots, by span id."""
        by_parent: Dict[Optional[int], List[Span]] = {}
        for span in sorted(self.spans, key=lambda s: s.span_id):
            by_parent.setdefault(span.parent_id, []).append(span)
        tree: List[Tuple[int, Span]] = []

        def walk(parent: Optional[int], depth: int) -> None:
            for span in by_parent.get(parent, []):
                tree.append((depth, span))
                walk(span.span_id, depth + 1)

        walk(None, 0)
        return tree

    def to_dict(self) -> List[Dict[str, object]]:
        """The full trace as plain data, ordered by span id."""
        return [
            span.to_dict()
            for span in sorted(self.spans, key=lambda s: s.span_id)
        ]


class _NullSpanContext:
    """Reusable no-op context manager; yields a shared inert span handle."""

    __slots__ = ("_span",)

    def __init__(self, span: "_NullSpan") -> None:
        self._span = span

    def __enter__(self) -> "_NullSpan":
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


class _NullSpan:
    __slots__ = ()

    def set(self, key: str, value: object) -> None:
        pass


class NullTracer:
    """The disabled tracer: one shared context manager, nothing recorded."""

    enabled = False
    clock = None

    def __init__(self) -> None:
        self._context = _NullSpanContext(_NullSpan())
        self.spans: List[Span] = []

    def span(self, name: str, **attrs: object) -> _NullSpanContext:
        return self._context

    def record_span(
        self, name: str, start: float, end: float, **attrs: object
    ) -> None:
        return None


#: Shared disabled tracer — the default of every ``tracer`` parameter.
NULL_TRACER = NullTracer()
