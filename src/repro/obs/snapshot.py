"""The fleet snapshot: one JSON document answering "how is the fleet?".

Two layers, deliberately separated by their determinism contract:

* **Day sections** are built from the day's sealed metrics — counters
  folded exclusively from journaled task payloads, so a crashed-and-
  recovered day seals the byte-identical document an uninterrupted run
  would have (asserted across every kill point in
  ``tests/test_crash_recovery.py``).
* The **process section** reads live operational state (checkpoint
  manager, selector cache, serving stores, cost ledger, publish gate).
  Those counters legitimately differ under a crash — a recovery restores
  a checkpoint the clean run never wrote — so they are reported but
  excluded from the parity guarantee.

The rollups follow the paper's section V/VII reporting: per-retailer and
fleet-wide throughput (training triples/s, inference items/s), grid
configs evaluated, epochs, dead letters, preemptions, billed vs wall
seconds, and publish-gate rejections.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsSnapshot

#: Bumped when the snapshot document shape changes; consumers pin it.
SCHEMA_VERSION = 1


def _rate(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator > 0 else 0.0


def retailer_rollup(
    metrics: MetricsSnapshot, retailer_id: str
) -> Dict[str, float]:
    """Per-retailer throughput/cost view of one day's sealed metrics."""
    epochs = metrics.counter("train_epochs_total", retailer=retailer_id)
    sgd_steps = metrics.counter("train_sgd_steps_total", retailer=retailer_id)
    train_seconds = metrics.counter(
        "train_seconds_total", retailer=retailer_id
    )
    items = metrics.counter("inference_items_total", retailer=retailer_id)
    infer_cost = metrics.counter(
        "inference_cost_attributed_total", retailer=retailer_id
    )
    return {
        "configs_trained": metrics.counter(
            "train_configs_total", outcome="trained", retailer=retailer_id
        ),
        "configs_failed": metrics.counter(
            "train_configs_total", outcome="failed", retailer=retailer_id
        ),
        "epochs": epochs,
        "sgd_steps": sgd_steps,
        "train_seconds": train_seconds,
        "triples_per_second": _rate(sgd_steps, train_seconds),
        "train_cost": metrics.counter(
            "train_cost_total", retailer=retailer_id
        ),
        "train_makespan_seconds": metrics.gauge(
            "train_makespan_seconds", retailer=retailer_id
        ),
        "inference_items": items,
        "inference_blocks": metrics.counter(
            "inference_blocks_total", retailer=retailer_id
        ),
        "inference_cost": infer_cost,
        "publishes_accepted": metrics.counter(
            "publish_total", outcome="accepted", retailer=retailer_id
        ),
        "publishes_rejected": metrics.counter(
            "publish_total", outcome="rejected", retailer=retailer_id
        ),
    }


def fleet_rollup(metrics: MetricsSnapshot) -> Dict[str, float]:
    """Fleet-wide rollup of one day's sealed metrics."""
    sgd_steps = metrics.counter_total("train_sgd_steps_total")
    train_billed = metrics.counter_total("train_billed_vm_seconds_total")
    items = metrics.counter_total("inference_items_total")
    infer_billed = metrics.counter_total("inference_billed_vm_seconds_total")
    def outcome_total(name: str, outcome: str) -> float:
        tag = f"outcome={outcome}"
        return sum(
            value
            for key, value in metrics.counters.items()
            if key.startswith(name + "{") and tag in key
        )

    return {
        "configs_trained": outcome_total("train_configs_total", "trained"),
        "configs_failed": outcome_total("train_configs_total", "failed"),
        "epochs": metrics.counter_total("train_epochs_total"),
        "sgd_steps": sgd_steps,
        "train_billed_vm_seconds": train_billed,
        "train_cost": metrics.counter_total("train_cost_total"),
        "triples_per_billed_second": _rate(sgd_steps, train_billed),
        "inference_items": items,
        "inference_billed_vm_seconds": infer_billed,
        "inference_cost": metrics.counter_total("inference_cost_total"),
        "items_per_billed_second": _rate(items, infer_billed),
        "model_loads": metrics.counter_total("inference_model_loads_total"),
        "preemptions": metrics.counter_total("preemptions_total"),
        "dead_letters": metrics.counter_total("dead_letters_total"),
        "speculative_copies": metrics.counter_total("speculative_copies_total"),
        "publishes_accepted": outcome_total("publish_total", "accepted"),
        "publishes_rejected": outcome_total("publish_total", "rejected"),
        "alerts": metrics.counter_total("alerts_total"),
    }


def build_day_seal(
    day: int,
    sweep_kind: str,
    report,
    metrics: MetricsSnapshot,
    retailer_ids: List[str],
) -> Dict[str, object]:
    """The document sealed into the journal when a day commits.

    Everything here derives from journaled payloads (via ``report`` and
    the folded day registry), so a recovered day seals byte-identical
    JSON — the parity artifact the crash-recovery suite compares.
    """
    return {
        "schema_version": SCHEMA_VERSION,
        "day": day,
        "sweep_kind": sweep_kind,
        "report": {
            "configs_trained": report.configs_trained,
            "configs_failed": report.configs_failed,
            "retailers_served": report.retailers_served,
            "retailers_stale": report.retailers_stale,
            "retailers_unserved": report.retailers_unserved,
            "training_cost": report.training_cost,
            "inference_cost": report.inference_cost,
            "training_makespan": report.training_makespan,
            "inference_makespan": report.inference_makespan,
            "preemptions": report.preemptions,
            "alerts": report.alerts,
            "publishes_rejected": report.publishes_rejected,
            "failed_retailers": list(report.failed_retailers),
            "availability": report.availability,
        },
        "fleet": fleet_rollup(metrics),
        "retailers": {
            rid: retailer_rollup(metrics, rid) for rid in sorted(retailer_ids)
        },
        "metrics": metrics.to_dict(),
    }


def build_fleet_snapshot(
    service, day: Optional[int] = None
) -> Dict[str, object]:
    """The full exported document: latest day seal + live process state.

    ``day`` selects a specific sealed day; the default is the most
    recently committed one.  A service that never ran (or ran with
    metrics disabled) still exports the process section.
    """
    seals = getattr(service.journal, "seals", lambda: {})()
    if day is None:
        day = max(seals) if seals else None
    day_doc = seals.get(day, {}) if day is not None else {}
    return {
        "schema_version": SCHEMA_VERSION,
        "day": day,
        "sweep_kind": day_doc.get("sweep_kind"),
        "report": day_doc.get("report", {}),
        "fleet": day_doc.get("fleet", {}),
        "retailers": day_doc.get("retailers", {}),
        "metrics": day_doc.get("metrics", {}),
        "process": build_process_section(service),
    }


def build_process_section(service) -> Dict[str, object]:
    """Live operational state — reported, but outside the parity contract.

    Checkpoint writes, selector-cache hits, store lookups, and gate
    validations happen (or don't) depending on where a crash landed, so
    a recovered run legitimately differs here from an uninterrupted one.
    """
    ckpt = service.training.checkpoints.stats
    process_metrics = service.metrics.snapshot()
    stores = {}
    for surface, store in (
        ("substitutes", service.substitutes_store),
        ("accessories", service.accessories_store),
    ):
        stats = store.stats
        stores[surface] = {
            "batches_loaded": stats.batches_loaded,
            "lookups": stats.lookups,
            "misses": stats.misses,
            "hit_rate": stats.hit_rate,
            "stale_batches_rejected": stats.stale_batches_rejected,
            "rollbacks": stats.rollbacks,
        }
    selector_hits = process_metrics.counter_total("selector_cache_hits_total")
    selector_misses = process_metrics.counter_total(
        "selector_cache_misses_total"
    )
    return {
        "checkpoints": {
            "writes": ckpt.writes,
            "bytes_written": ckpt.bytes_written,
            "restores": ckpt.restores,
            "garbage_collected": ckpt.garbage_collected,
            "corruptions_detected": ckpt.corruptions_detected,
            "cold_starts": ckpt.cold_starts,
        },
        "selector_cache": {
            "hits": selector_hits,
            "misses": selector_misses,
            "hit_rate": _rate(selector_hits, selector_hits + selector_misses),
        },
        "stores": stores,
        "publish_gate": {
            "rejections": len(service.gate.rejections),
        },
        "ledger": {
            "total_cost": service.total_cost(),
            "chargebacks": dict(sorted(service.retailer_costs().items())),
        },
        "metrics": process_metrics.to_dict(),
    }


def fleet_snapshot_json(
    service, day: Optional[int] = None, indent: Optional[int] = 2
) -> str:
    """Canonical JSON export (sorted keys) of :func:`build_fleet_snapshot`."""
    return json.dumps(
        build_fleet_snapshot(service, day=day), sort_keys=True, indent=indent
    )
