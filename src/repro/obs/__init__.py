"""Observability: metrics, simulated-clock tracing, fleet snapshots."""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    MetricsSnapshot,
    NullMetricsRegistry,
    merge_snapshots,
    metric_key,
)
from repro.obs.snapshot import (
    SCHEMA_VERSION,
    build_day_seal,
    build_fleet_snapshot,
    build_process_section,
    fleet_rollup,
    fleet_snapshot_json,
    retailer_rollup,
)
from repro.obs.tracing import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "MetricsRegistry",
    "NullMetricsRegistry",
    "MetricsSnapshot",
    "MetricsError",
    "Counter",
    "Gauge",
    "Histogram",
    "merge_snapshots",
    "metric_key",
    "DEFAULT_BUCKETS",
    "NULL_METRICS",
    "Tracer",
    "NullTracer",
    "Span",
    "NULL_TRACER",
    "SCHEMA_VERSION",
    "build_day_seal",
    "build_fleet_snapshot",
    "build_process_section",
    "fleet_rollup",
    "retailer_rollup",
    "fleet_snapshot_json",
]
