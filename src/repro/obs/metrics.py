"""Labeled metrics with mergeable snapshots (the fleet's dashboards).

Sigmund's two-engineer team runs thousands of recommendation problems
daily only because the system is self-reporting (paper sections I, VII):
per-retailer throughput, cost, and pipeline health must surface without
anyone babysitting a tenant.  This module is the measurement substrate:

* :class:`MetricsRegistry` hands out labeled **counters** (monotonic),
  **gauges** (high-watermark), and fixed-bucket **histograms**.
* :meth:`MetricsRegistry.snapshot` freezes the registry into a
  :class:`MetricsSnapshot`, a plain-data value that merges with other
  snapshots — the shape a MapReduce-style fleet needs, where every task
  measures locally and the coordinator folds task snapshots together.
* :class:`NullMetricsRegistry` is the disabled mode: every instrument is
  a shared no-op singleton, so instrumented hot paths cost one dynamic
  dispatch when observability is off and benchmarks do not move.

Merge semantics are chosen so folding is **associative and commutative**
(property-tested in ``tests/test_obs_metrics.py``):

* counters add,
* gauges keep the maximum (they record high-watermarks — makespans,
  peak sizes — which is the only gauge reading that merges without an
  ordering),
* histograms add bucket counts pointwise (bucket bounds must match;
  merging mismatched schemas raises instead of silently mangling).

Those semantics are also what makes the crash-recovery parity guarantee
cheap: a day's metrics are folded from journaled task snapshots, so a
recovered day folds the *same* snapshots in the same order and lands on
byte-identical JSON (see ``tests/test_crash_recovery.py``).
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import SigmundError


class MetricsError(SigmundError):
    """An instrument was used out of contract (negative inc, schema clash)."""


#: Default histogram bucket upper bounds (seconds-ish scale); the last
#: implicit bucket is +inf.  Callers with real distributions pass their own.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.1, 1.0, 10.0, 60.0, 300.0, 1800.0, 7200.0, 43200.0,
)


def metric_key(name: str, labels: Mapping[str, str]) -> str:
    """Canonical series key: ``name{k=v,...}`` with labels sorted by key.

    Sorted labels make the key independent of call-site keyword order, so
    two snapshots of the same logical series always merge — and the JSON
    export is byte-stable.
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing series (events, items, seconds billed)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A high-watermark series (makespans, peak queue depth).

    ``set`` keeps the maximum seen, not the last write: the maximum is
    the only point reading that merges commutatively across snapshots,
    and every gauge in this codebase is a "how bad did it get" quantity.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        value = float(value)
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-bucket distribution; counts plus a running sum.

    Buckets are upper bounds in ascending order with an implicit final
    +inf bucket, so ``counts`` has ``len(buckets) + 1`` cells and the
    total observation count is conserved under merge.
    """

    __slots__ = ("buckets", "counts", "sum")

    def __init__(self, buckets: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b <= a for b, a in zip(bounds[1:], bounds)):
            raise MetricsError(
                f"histogram buckets must be non-empty and strictly "
                f"ascending, got {bounds}"
            )
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value

    @property
    def count(self) -> int:
        return sum(self.counts)


class NullInstrument:
    """One shared no-op standing in for every disabled instrument."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


#: The singleton every :class:`NullMetricsRegistry` hands out.
NULL_INSTRUMENT = NullInstrument()


class MetricsSnapshot:
    """A frozen, mergeable view of one registry's series.

    Plain data: three dicts keyed by :func:`metric_key`.  Snapshots
    compare by value, merge without mutating their inputs, and export to
    canonical JSON (sorted keys) so equality can be asserted byte-wise.
    """

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(
        self,
        counters: Optional[Mapping[str, float]] = None,
        gauges: Optional[Mapping[str, float]] = None,
        histograms: Optional[Mapping[str, Dict[str, object]]] = None,
    ) -> None:
        self.counters: Dict[str, float] = dict(counters or {})
        self.gauges: Dict[str, float] = dict(gauges or {})
        # key -> {"buckets": tuple, "counts": list, "sum": float}
        self.histograms: Dict[str, Dict[str, object]] = {
            key: {
                "buckets": tuple(hist["buckets"]),  # type: ignore[arg-type]
                "counts": list(hist["counts"]),  # type: ignore[arg-type]
                "sum": float(hist["sum"]),  # type: ignore[arg-type]
            }
            for key, hist in (histograms or {}).items()
        }

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """A new snapshot folding ``other`` into this one.

        Counters add, gauges max, histogram bucket counts add pointwise.
        Histograms of the same series with different bucket bounds are a
        schema bug and raise rather than merge into nonsense.
        """
        merged = MetricsSnapshot(self.counters, self.gauges, self.histograms)
        for key, value in other.counters.items():
            merged.counters[key] = merged.counters.get(key, 0.0) + value
        for key, value in other.gauges.items():
            merged.gauges[key] = max(merged.gauges.get(key, value), value)
        for key, hist in other.histograms.items():
            mine = merged.histograms.get(key)
            if mine is None:
                merged.histograms[key] = {
                    "buckets": tuple(hist["buckets"]),  # type: ignore[arg-type]
                    "counts": list(hist["counts"]),  # type: ignore[arg-type]
                    "sum": float(hist["sum"]),  # type: ignore[arg-type]
                }
                continue
            if tuple(mine["buckets"]) != tuple(hist["buckets"]):  # type: ignore[arg-type]
                raise MetricsError(
                    f"cannot merge histogram {key!r}: bucket bounds "
                    f"{mine['buckets']} != {hist['buckets']}"
                )
            mine["counts"] = [
                a + b
                for a, b in zip(mine["counts"], hist["counts"])  # type: ignore[arg-type]
            ]
            mine["sum"] = float(mine["sum"]) + float(hist["sum"])  # type: ignore[arg-type]
        return merged

    # ------------------------------------------------------------------
    # Reading / export
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: str) -> float:
        return self.counters.get(metric_key(name, labels), 0.0)

    def gauge(self, name: str, **labels: str) -> float:
        return self.gauges.get(metric_key(name, labels), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of every series of ``name`` across all label sets."""
        prefix = name + "{"
        return sum(
            value
            for key, value in self.counters.items()
            if key == name or key.startswith(prefix)
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                key: {
                    "buckets": list(hist["buckets"]),  # type: ignore[arg-type]
                    "counts": list(hist["counts"]),  # type: ignore[arg-type]
                    "sum": hist["sum"],
                }
                for key, hist in self.histograms.items()
            },
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON: sorted keys, so equal snapshots are byte-equal."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsSnapshot):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsSnapshot({len(self.counters)} counters, "
            f"{len(self.gauges)} gauges, {len(self.histograms)} histograms)"
        )


def merge_snapshots(snapshots: Iterable[MetricsSnapshot]) -> MetricsSnapshot:
    """Fold any number of snapshots into one (empty input -> empty)."""
    merged = MetricsSnapshot()
    for snapshot in snapshots:
        merged = merged.merge(snapshot)
    return merged


class MetricsRegistry:
    """Hands out labeled instruments and freezes them into snapshots.

    Instruments are memoized by series key, so repeated
    ``registry.counter("x", retailer="r0")`` calls hit the same
    :class:`Counter` — call sites never hold instrument references
    across requests unless they want to.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        key = metric_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = metric_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        key = metric_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(buckets)
        elif instrument.buckets != tuple(float(b) for b in buckets):
            raise MetricsError(
                f"histogram {key!r} re-registered with different buckets"
            )
        return instrument

    def snapshot(self) -> MetricsSnapshot:
        """Freeze current values; zero-valued series are kept (a counter
        that exists at zero is information, not noise)."""
        return MetricsSnapshot(
            counters={k: c.value for k, c in self._counters.items()},
            gauges={k: g.value for k, g in self._gauges.items()},
            histograms={
                k: {"buckets": h.buckets, "counts": list(h.counts), "sum": h.sum}
                for k, h in self._histograms.items()
            },
        )

    def fold(self, snapshot: MetricsSnapshot) -> None:
        """Replay a snapshot's values into this registry.

        The coordinator-side half of the task-snapshot pattern: counters
        add, gauges take the max, histogram counts add.  Folding the same
        snapshots in any order yields the same registry state (the merge
        properties above), which is what the crash-recovery parity test
        leans on.
        """
        for key, value in snapshot.counters.items():
            counter = self._counters.get(key)
            if counter is None:
                counter = self._counters[key] = Counter()
            counter.inc(value)
        for key, value in snapshot.gauges.items():
            gauge = self._gauges.get(key)
            if gauge is None:
                gauge = self._gauges[key] = Gauge()
            gauge.set(value)
        for key, hist in snapshot.histograms.items():
            buckets: Tuple[float, ...] = tuple(hist["buckets"])  # type: ignore[arg-type]
            mine = self._histograms.get(key)
            if mine is None:
                mine = self._histograms[key] = Histogram(buckets)
            elif mine.buckets != buckets:
                raise MetricsError(
                    f"cannot fold histogram {key!r}: bucket bounds differ"
                )
            counts: List[int] = list(hist["counts"])  # type: ignore[arg-type]
            mine.counts = [a + b for a, b in zip(mine.counts, counts)]
            mine.sum += float(hist["sum"])  # type: ignore[arg-type]


class NullMetricsRegistry:
    """The disabled registry: every instrument is the shared no-op.

    Hot paths take a registry parameter defaulting to :data:`NULL_METRICS`;
    with it installed, instrumentation costs one method call returning a
    singleton whose mutators are empty — provably nothing else, which is
    what keeps the E20/E22/E23 benchmark numbers fixed.
    """

    enabled = False

    def counter(self, name: str, **labels: str) -> NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str, **labels: str) -> NullInstrument:
        return NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> NullInstrument:
        return NULL_INSTRUMENT

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot()

    def fold(self, snapshot: MetricsSnapshot) -> None:
        pass


#: Shared disabled registry — the default value of every ``metrics``
#: parameter in the instrumented pipelines.
NULL_METRICS = NullMetricsRegistry()
