"""Implicit-feedback events with the paper's strength ordering.

Sigmund receives no explicit ratings.  Interactions come in four types of
increasing strength: ``view < search < cart < conversion`` (paper section
III-A).  The ordering drives both training-example construction (an item
searched should rank above an item merely viewed) and the event funnel in
the synthetic generator (conversions are orders of magnitude rarer than
views).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Sequence


class EventType(enum.IntEnum):
    """User interaction types, ordered by strength (weakest first)."""

    VIEW = 0
    SEARCH = 1
    CART = 2
    CONVERSION = 3

    @property
    def strength(self) -> int:
        """Numeric strength; larger means stronger intent."""
        return int(self)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name.lower()


#: All event types from weakest to strongest, as the paper lists them.
EVENT_STRENGTH_ORDER: tuple[EventType, ...] = (
    EventType.VIEW,
    EventType.SEARCH,
    EventType.CART,
    EventType.CONVERSION,
)


@dataclass(frozen=True, order=True)
class Interaction:
    """One (user, item, event, time) record in a retailer's log.

    Ordering is by timestamp first so that sorting a log recovers each
    user's session order.
    """

    timestamp: float
    user_id: int
    item_index: int
    event: EventType

    def stronger_than(self, other: "Interaction") -> bool:
        """Whether this interaction signals strictly more intent."""
        return self.event.strength > other.event.strength


def sort_log(interactions: Iterable[Interaction]) -> List[Interaction]:
    """Return interactions sorted by time (stable for equal timestamps)."""
    return sorted(interactions, key=lambda it: (it.timestamp, it.user_id))


def filter_by_event(
    interactions: Sequence[Interaction], minimum: EventType
) -> List[Interaction]:
    """Keep only interactions at least as strong as ``minimum``."""
    return [it for it in interactions if it.event.strength >= minimum.strength]


def count_by_event(interactions: Iterable[Interaction]) -> dict[EventType, int]:
    """Histogram of interaction counts per event type."""
    counts = {event: 0 for event in EVENT_STRENGTH_ORDER}
    for interaction in interactions:
        counts[interaction.event] += 1
    return counts
