"""Day-over-day retailer evolution (paper sections I, III-C3).

Sigmund is "a continuous service — new data arrives every day, new
products are introduced, and new users start shopping", and daily
retraining exists because "retailers add new items to the catalog, modify
the sale prices on items ... for best results we needed to refresh our
models on a daily basis".

:func:`evolve_retailer` produces the next day of a synthetic retailer:

* **catalog churn** — a fraction of new items appears (appended, so item
  indices stay stable — the invariant warm starts rely on), each with
  ground-truth vectors drawn from its category,
* **price drift** — a fraction of items get new prices,
* **new users** join, existing users return,
* **a fresh day of interactions** is simulated over the grown catalog,
  with interest drift nudging user vectors.

The result is a full :class:`SyntheticRetailer` whose day-N state is a
strict extension of day-N-1, enabling incremental-training and staleness
experiments that mirror production dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

import numpy as np

from repro.data.catalog import Catalog, Item, make_item_id
from repro.data.generator import (
    SyntheticRetailer,
    _build_companions,
    _funnel_event,
)
from repro.data.events import Interaction
from repro.exceptions import DataError
from repro.rng import derive_seed, make_rng


@dataclass(frozen=True)
class EvolutionSpec:
    """How much one day changes a retailer."""

    #: New items per day, as a fraction of the current catalog.
    new_item_rate: float = 0.03
    #: Fraction of existing items whose price changes.
    price_change_rate: float = 0.10
    #: Multiplicative sigma of a price change (lognormal).
    price_drift_sigma: float = 0.15
    #: New users per day, as a fraction of the current user base.
    new_user_rate: float = 0.05
    #: Gaussian noise added to user vectors (interest drift).
    interest_drift: float = 0.05
    #: Events generated this day, as a fraction of the original volume.
    daily_event_fraction: float = 0.5

    def __post_init__(self) -> None:
        for name in ("new_item_rate", "price_change_rate", "new_user_rate",
                     "daily_event_fraction"):
            if getattr(self, name) < 0:
                raise DataError(f"{name} must be non-negative")


def evolve_retailer(
    retailer: SyntheticRetailer,
    day: int,
    evolution: EvolutionSpec = EvolutionSpec(),
) -> SyntheticRetailer:
    """The same retailer one day later.

    Deterministic in ``(retailer.spec.seed, day)``.  The returned object
    carries the *cumulative* interaction log (old days plus the new one)
    so a leave-last-out split keeps working unchanged.
    """
    rng = make_rng(derive_seed(retailer.spec.seed, "evolve", day))
    spec = retailer.spec

    catalog, item_vectors, taxonomy, popularity = _grow_catalog(
        retailer, evolution, rng
    )
    user_vectors, user_brand, price_sens = _grow_users(retailer, evolution, rng)
    companions = _build_companions(
        replace(spec, n_items=len(catalog)), taxonomy, popularity, rng
    )

    evolved = SyntheticRetailer(
        spec=replace(spec, n_items=len(catalog), n_users=user_vectors.shape[0]),
        catalog=catalog,
        taxonomy=taxonomy,
        interactions=list(retailer.interactions),
        true_item_vectors=item_vectors,
        true_user_vectors=user_vectors,
        user_brand_affinity=user_brand,
        user_price_sensitivity=price_sens,
        item_popularity=popularity,
        companions=companions,
    )
    evolved.interactions.extend(_simulate_day(evolved, evolution, rng))
    return evolved


def evolve_for_days(
    retailer: SyntheticRetailer,
    days: int,
    evolution: EvolutionSpec = EvolutionSpec(),
) -> List[SyntheticRetailer]:
    """States after each of ``days`` evolution steps (day 1, 2, ...)."""
    states = []
    current = retailer
    for day in range(1, days + 1):
        current = evolve_retailer(current, day, evolution)
        states.append(current)
    return states


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------


def _grow_catalog(retailer, evolution, rng):
    """Append new items; drift some prices; extend popularity weights."""
    spec = retailer.spec
    old_n = retailer.n_items
    n_new = int(round(old_n * evolution.new_item_rate))
    # Copy the tree: new items are assigned on the copy so yesterday's
    # retailer snapshot stays frozen.
    taxonomy = retailer.taxonomy.copy()
    leaves = taxonomy.leaves()

    items: List[Item] = []
    changed_prices = set(
        int(i)
        for i in rng.choice(
            old_n,
            size=int(round(old_n * evolution.price_change_rate)),
            replace=False,
        )
    ) if old_n else set()
    for old in retailer.catalog:
        price = old.price
        if old.index in changed_prices and price is not None:
            price = round(
                price * float(np.exp(rng.normal(0.0, evolution.price_drift_sigma))),
                2,
            )
        items.append(replace(old, price=price))

    brands = retailer.catalog.brand_vocabulary()
    dim = spec.latent_dim
    new_vectors = []
    category_mean: Dict[str, np.ndarray] = {}
    for index in range(old_n, old_n + n_new):
        leaf = leaves[int(rng.integers(len(leaves)))]
        taxonomy.assign_item(index, leaf)
        peers = [p for p in taxonomy.items_in(leaf) if p < old_n]
        if leaf not in category_mean:
            if peers:
                category_mean[leaf] = retailer.true_item_vectors[peers].mean(axis=0)
            else:
                category_mean[leaf] = np.zeros(dim)
        vector = category_mean[leaf] + rng.normal(0.0, 0.5, size=dim)
        new_vectors.append(vector)
        brand = (
            brands[int(rng.integers(len(brands)))]
            if brands and rng.random() < spec.brand_coverage
            else None
        )
        price = (
            round(float(np.exp(rng.normal(3.2, 1.0))), 2)
            if rng.random() < spec.price_coverage
            else None
        )
        items.append(
            Item(
                item_id=make_item_id(spec.retailer_id, index),
                index=index,
                category_id=leaf,
                brand=brand,
                price=price,
                facets={"color": "black"},
            )
        )

    catalog = Catalog(spec.retailer_id, items)
    if new_vectors:
        item_vectors = np.vstack([retailer.true_item_vectors, np.array(new_vectors)])
    else:
        item_vectors = retailer.true_item_vectors.copy()

    # New items start with a modest popularity share (cold items).
    old_popularity = retailer.item_popularity
    if n_new:
        floor = float(old_popularity.min()) if old_popularity.size else 1.0
        new_weights = np.full(n_new, floor * 0.5)
        popularity = np.concatenate([old_popularity, new_weights])
        popularity = popularity / popularity.sum()
    else:
        popularity = old_popularity.copy()
    return catalog, item_vectors, taxonomy, popularity


def _grow_users(retailer, evolution, rng):
    """Add new users and drift existing interests slightly."""
    old_users = retailer.true_user_vectors
    drifted = old_users + rng.normal(
        0.0, evolution.interest_drift, size=old_users.shape
    )
    n_new = int(round(old_users.shape[0] * evolution.new_user_rate))
    brands = retailer.catalog.brand_vocabulary()
    user_brand = dict(retailer.user_brand_affinity)
    if n_new:
        # New users clone the interest distribution of existing ones.
        prototypes = rng.integers(old_users.shape[0], size=n_new)
        new_vectors = old_users[prototypes] + rng.normal(
            0.0, 0.4, size=(n_new, old_users.shape[1])
        )
        user_vectors = np.vstack([drifted, new_vectors])
        for offset in range(n_new):
            user_id = old_users.shape[0] + offset
            user_brand[user_id] = (
                brands[int(rng.integers(len(brands)))]
                if brands and rng.random() < 0.5
                else None
            )
        price_sens = np.concatenate(
            [retailer.user_price_sensitivity, rng.gamma(2.0, 0.5, size=n_new)]
        )
    else:
        user_vectors = drifted
        price_sens = retailer.user_price_sensitivity.copy()
    return user_vectors, user_brand, price_sens


def _simulate_day(retailer, evolution, rng) -> List[Interaction]:
    """One new day of sessions over the (grown) catalog."""
    spec = retailer.spec
    n_items = retailer.n_items
    last_time = max(
        (it.timestamp for it in retailer.interactions), default=0.0
    )
    clock = last_time + 1.0
    n_events = max(
        spec.n_users, int(round(spec.n_events * evolution.daily_event_fraction))
    )
    events_per_user = max(1, n_events // retailer.n_users)
    interactions: List[Interaction] = []
    for user_id in range(retailer.n_users):
        pool_size = min(spec.browse_pool_size, n_items)
        pool = rng.choice(
            n_items, size=pool_size, replace=False, p=retailer.item_popularity
        )
        scores = retailer.affinities(user_id, pool) / spec.choice_temperature
        scores -= scores.max()
        probs = np.exp(scores)
        probs /= probs.sum()
        session_len = max(1, int(rng.poisson(events_per_user)))
        previous: Optional[int] = None
        for _ in range(session_len):
            companions = (
                retailer.companions.get(previous, []) if previous is not None else []
            )
            if companions and rng.random() < spec.transition_prob:
                item_index = int(companions[int(rng.integers(len(companions)))])
            else:
                item_index = int(rng.choice(pool, p=probs))
            clock += float(rng.exponential(1.0))
            affinity = retailer.affinity(user_id, item_index)
            event = _funnel_event(affinity, spec.funnel_upgrade_prob, rng)
            interactions.append(
                Interaction(clock, user_id, item_index, event)
            )
            previous = item_index
    return interactions
