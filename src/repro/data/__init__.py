"""Synthetic multi-retailer data substrate.

The paper trains on proprietary retailer logs (views, searches, carts and
conversions) plus catalog metadata.  This package provides the faithful
synthetic replacement: product taxonomies with LCA distances, catalogs with
brand/price attributes, implicit-feedback event streams with the paper's
strength ordering, heterogeneous retailer generation, session/context
construction, and the leave-last-out holdout split.
"""

from repro.data.catalog import Catalog, Item
from repro.data.datasets import RetailerDataset, dataset_from_synthetic
from repro.data.events import EVENT_STRENGTH_ORDER, EventType, Interaction
from repro.data.evolution import EvolutionSpec, evolve_for_days, evolve_retailer
from repro.data.generator import (
    MarketplaceSpec,
    RetailerSpec,
    SyntheticRetailer,
    generate_marketplace,
    generate_retailer,
)
from repro.data.sessions import UserContext, build_user_histories, context_windows
from repro.data.split import HoldoutExample, TrainTestSplit, leave_last_out_split
from repro.data.taxonomy import Taxonomy, random_taxonomy

__all__ = [
    "Catalog",
    "Item",
    "RetailerDataset",
    "dataset_from_synthetic",
    "EventType",
    "EVENT_STRENGTH_ORDER",
    "Interaction",
    "EvolutionSpec",
    "evolve_retailer",
    "evolve_for_days",
    "RetailerSpec",
    "MarketplaceSpec",
    "SyntheticRetailer",
    "generate_retailer",
    "generate_marketplace",
    "UserContext",
    "build_user_histories",
    "context_windows",
    "HoldoutExample",
    "TrainTestSplit",
    "leave_last_out_split",
    "Taxonomy",
    "random_taxonomy",
]
