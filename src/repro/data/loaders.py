"""Loading real datasets from CSV files (the public-data path).

The paper's data is proprietary; this library's experiments use the
synthetic generator.  For users who want to run Sigmund on *their own*
or public data (MovieLens-style ratings, retail event exports), this
module ingests plain CSV files into the same :class:`RetailerDataset`
the rest of the pipeline consumes:

* :func:`load_interactions_csv` — event logs with arbitrary column
  names and an event-name mapping,
* :func:`load_catalog_csv` — catalogs with a ``/``-separated category
  path column (builds the :class:`Taxonomy` on the fly),
* :func:`ratings_to_events` — the standard explicit→implicit adapter
  (a 5-star rating says "conversion", a 3 says "view"),
* :func:`dataset_from_files` — the one-call path from two CSVs to a
  training-ready dataset.

Only the standard library's :mod:`csv` is used — no pandas dependency.
"""

from __future__ import annotations

import csv
import pathlib
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.data.catalog import Catalog, Item
from repro.data.datasets import RetailerDataset
from repro.data.events import EventType, Interaction
from repro.data.sessions import DEFAULT_MAX_CONTEXT
from repro.data.split import leave_last_out_split
from repro.data.taxonomy import ROOT_CATEGORY, Taxonomy
from repro.exceptions import DataError

PathLike = Union[str, pathlib.Path]

#: Default mapping from CSV event strings to event types.
DEFAULT_EVENT_MAPPING: Mapping[str, EventType] = {
    "view": EventType.VIEW,
    "search": EventType.SEARCH,
    "cart": EventType.CART,
    "add_to_cart": EventType.CART,
    "purchase": EventType.CONVERSION,
    "conversion": EventType.CONVERSION,
    "transaction": EventType.CONVERSION,
}


def load_catalog_csv(
    path: PathLike,
    retailer_id: str,
    item_col: str = "item_id",
    category_col: str = "category",
    brand_col: Optional[str] = "brand",
    price_col: Optional[str] = "price",
    category_separator: str = "/",
) -> Tuple[Catalog, Taxonomy, Dict[str, int]]:
    """Read a catalog CSV; returns (catalog, taxonomy, item-id -> index).

    ``category_col`` holds a path like ``electronics/phones/android``;
    the taxonomy tree is built from every prefix.  Missing/empty brand or
    price cells become ``None``.
    """
    taxonomy = Taxonomy()
    known_categories = {ROOT_CATEGORY}
    items: List[Item] = []
    item_index: Dict[str, int] = {}

    for row in _read_rows(path, required=(item_col, category_col)):
        raw_id = row[item_col].strip()
        if not raw_id:
            raise DataError(f"{path}: empty {item_col!r} value")
        if raw_id in item_index:
            raise DataError(f"{path}: duplicate item id {raw_id!r}")
        category_path = _ensure_category(
            taxonomy, known_categories, row[category_col], category_separator
        )
        brand = _optional(row, brand_col)
        price_text = _optional(row, price_col)
        try:
            price = float(price_text) if price_text is not None else None
        except ValueError:
            raise DataError(
                f"{path}: bad price {price_text!r} for item {raw_id!r}"
            ) from None
        index = len(items)
        item_index[raw_id] = index
        taxonomy.assign_item(index, category_path)
        items.append(
            Item(
                item_id=f"{retailer_id}:{raw_id}",
                index=index,
                category_id=category_path,
                brand=brand,
                price=price,
            )
        )
    if not items:
        raise DataError(f"{path}: catalog file contains no items")
    return Catalog(retailer_id, items), taxonomy, item_index


def load_interactions_csv(
    path: PathLike,
    item_index: Mapping[str, int],
    user_col: str = "user_id",
    item_col: str = "item_id",
    event_col: str = "event",
    timestamp_col: str = "timestamp",
    event_mapping: Mapping[str, EventType] = DEFAULT_EVENT_MAPPING,
    skip_unknown_items: bool = True,
) -> List[Interaction]:
    """Read an event log CSV into :class:`Interaction` records.

    Unknown item ids are skipped by default (real exports always contain
    a few events for delisted items); set ``skip_unknown_items=False`` to
    fail fast instead.  User ids are densified in first-seen order.
    """
    interactions: List[Interaction] = []
    user_index: Dict[str, int] = {}
    for row in _read_rows(
        path, required=(user_col, item_col, event_col, timestamp_col)
    ):
        raw_item = row[item_col].strip()
        index = item_index.get(raw_item)
        if index is None:
            if skip_unknown_items:
                continue
            raise DataError(f"{path}: unknown item id {raw_item!r}")
        event_name = row[event_col].strip().lower()
        event = event_mapping.get(event_name)
        if event is None:
            raise DataError(
                f"{path}: unknown event {event_name!r} "
                f"(known: {sorted(event_mapping)})"
            )
        try:
            timestamp = float(row[timestamp_col])
        except ValueError:
            raise DataError(
                f"{path}: bad timestamp {row[timestamp_col]!r}"
            ) from None
        raw_user = row[user_col].strip()
        if raw_user not in user_index:
            user_index[raw_user] = len(user_index)
        interactions.append(
            Interaction(
                timestamp=timestamp,
                user_id=user_index[raw_user],
                item_index=index,
                event=event,
            )
        )
    return interactions


def ratings_to_events(
    rows: Sequence[Tuple[int, int, float, float]],
    view_threshold: float = 0.0,
    search_threshold: float = 3.0,
    cart_threshold: float = 4.0,
    conversion_threshold: float = 4.5,
) -> List[Interaction]:
    """Convert explicit ratings into the paper's implicit-event ladder.

    ``rows`` are ``(user_id, item_index, rating, timestamp)``.  Ratings
    map onto increasing intent: anything observed is at least a view; a
    high rating behaves like a conversion.  This is the standard shim for
    MovieLens-style public datasets.
    """
    interactions = []
    for user_id, item_index, rating, timestamp in rows:
        if rating >= conversion_threshold:
            event = EventType.CONVERSION
        elif rating >= cart_threshold:
            event = EventType.CART
        elif rating >= search_threshold:
            event = EventType.SEARCH
        elif rating >= view_threshold:
            event = EventType.VIEW
        else:
            continue
        interactions.append(Interaction(timestamp, user_id, item_index, event))
    return interactions


def dataset_from_files(
    catalog_path: PathLike,
    interactions_path: PathLike,
    retailer_id: str,
    max_context: int = DEFAULT_MAX_CONTEXT,
    **column_overrides: object,
) -> RetailerDataset:
    """Two CSVs in, one training-ready :class:`RetailerDataset` out.

    ``column_overrides`` are forwarded to the two loaders by prefix:
    ``catalog_*`` keys go to :func:`load_catalog_csv` (minus the prefix)
    and ``interactions_*`` keys to :func:`load_interactions_csv`.
    """
    catalog_kwargs = {
        key[len("catalog_"):]: value
        for key, value in column_overrides.items()
        if key.startswith("catalog_")
    }
    interaction_kwargs = {
        key[len("interactions_"):]: value
        for key, value in column_overrides.items()
        if key.startswith("interactions_")
    }
    catalog, taxonomy, item_index = load_catalog_csv(
        catalog_path, retailer_id, **catalog_kwargs
    )
    interactions = load_interactions_csv(
        interactions_path, item_index, **interaction_kwargs
    )
    split = leave_last_out_split(interactions, max_context=max_context)
    return RetailerDataset(
        retailer_id=retailer_id,
        catalog=catalog,
        taxonomy=taxonomy,
        train=split.train,
        holdout=split.holdout,
        max_context=max_context,
    )


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------


def _read_rows(path: PathLike, required: Sequence[str]):
    file_path = pathlib.Path(path)
    if not file_path.exists():
        raise DataError(f"no such file: {file_path}")
    with open(file_path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise DataError(f"{file_path}: empty CSV (no header)")
        missing = [col for col in required if col not in reader.fieldnames]
        if missing:
            raise DataError(
                f"{file_path}: missing columns {missing}; "
                f"found {reader.fieldnames}"
            )
        yield from reader


def _ensure_category(
    taxonomy: Taxonomy,
    known: set,
    raw_path: str,
    separator: str,
) -> str:
    """Create every prefix of a category path; return the leaf id."""
    segments = [seg.strip() for seg in raw_path.split(separator) if seg.strip()]
    if not segments:
        raise DataError(f"empty category path {raw_path!r}")
    parent = ROOT_CATEGORY
    path = ""
    for segment in segments:
        path = f"{path}{separator}{segment}" if path else segment
        if path not in known:
            taxonomy.add_category(path, parent)
            known.add(path)
        parent = path
    return path


def _optional(row: Mapping[str, str], column: Optional[str]) -> Optional[str]:
    if column is None or column not in row:
        return None
    value = row[column].strip()
    return value or None
