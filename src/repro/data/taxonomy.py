"""Product taxonomy trees and Least-Common-Ancestor distances.

A taxonomy is a tree of category nodes (paper Fig. 3).  Items attach to
leaf categories.  The paper defines the distance between two items as the
number of levels between an item's category and the least common ancestor
of the two items' categories: e.g. two Android phones are at distance 1
(their LCA is "Android Phones"), an Android phone and an iPhone are at
distance 2 (LCA "Smart Phones").

``lca_k(i)`` — the set of items within LCA distance ``k`` of item ``i`` —
drives both negative sampling (sample far-away items) and candidate
selection (expand co-occurring items to taxonomy neighbours).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.exceptions import TaxonomyError
from repro.rng import SeedLike, make_rng

ROOT_CATEGORY = "root"


@dataclass
class CategoryNode:
    """A single category in the taxonomy tree."""

    category_id: str
    parent_id: Optional[str]
    depth: int
    children: List[str] = field(default_factory=list)


class Taxonomy:
    """A rooted tree of product categories with item attachments.

    The tree always contains a root category named :data:`ROOT_CATEGORY`
    at depth 0.  Categories are added top-down with
    :meth:`add_category`; items are attached to (typically leaf)
    categories with :meth:`assign_item`.
    """

    def __init__(self) -> None:
        self._nodes: Dict[str, CategoryNode] = {
            ROOT_CATEGORY: CategoryNode(ROOT_CATEGORY, None, 0)
        }
        self._item_category: Dict[int, str] = {}
        self._category_items: Dict[str, List[int]] = {ROOT_CATEGORY: []}

    # ------------------------------------------------------------------
    # Tree construction
    # ------------------------------------------------------------------
    def add_category(self, category_id: str, parent_id: str = ROOT_CATEGORY) -> None:
        """Add a category under ``parent_id``.

        Raises :class:`TaxonomyError` if the category already exists or the
        parent is unknown — the tree shape is append-only by design so that
        LCA distances never change under a trained model.
        """
        if category_id in self._nodes:
            raise TaxonomyError(f"category {category_id!r} already exists")
        parent = self._nodes.get(parent_id)
        if parent is None:
            raise TaxonomyError(f"unknown parent category {parent_id!r}")
        self._nodes[category_id] = CategoryNode(category_id, parent_id, parent.depth + 1)
        self._category_items[category_id] = []
        parent.children.append(category_id)

    def assign_item(self, item_index: int, category_id: str) -> None:
        """Attach ``item_index`` to ``category_id`` (re-assignment allowed)."""
        if category_id not in self._nodes:
            raise TaxonomyError(f"unknown category {category_id!r}")
        previous = self._item_category.get(item_index)
        if previous is not None:
            self._category_items[previous].remove(item_index)
        self._item_category[item_index] = category_id
        self._category_items[category_id].append(item_index)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_categories(self) -> int:
        return len(self._nodes)

    @property
    def num_items(self) -> int:
        return len(self._item_category)

    def categories(self) -> Iterator[str]:
        return iter(self._nodes)

    def children_of(self, category_id: str) -> Sequence[str]:
        return tuple(self._node(category_id).children)

    def parent_of(self, category_id: str) -> Optional[str]:
        return self._node(category_id).parent_id

    def depth_of(self, category_id: str) -> int:
        return self._node(category_id).depth

    def leaves(self) -> List[str]:
        """All categories with no children."""
        return [c for c, node in self._nodes.items() if not node.children]

    def category_of(self, item_index: int) -> str:
        try:
            return self._item_category[item_index]
        except KeyError:
            raise TaxonomyError(f"item {item_index} has no category") from None

    def has_item(self, item_index: int) -> bool:
        return item_index in self._item_category

    def items_in(self, category_id: str, include_descendants: bool = False) -> List[int]:
        """Items attached to ``category_id`` (optionally its whole subtree)."""
        if not include_descendants:
            return list(self._category_items[self._node(category_id).category_id])
        collected: List[int] = []
        stack = [category_id]
        while stack:
            current = stack.pop()
            collected.extend(self._category_items[self._node(current).category_id])
            stack.extend(self._nodes[current].children)
        return collected

    # ------------------------------------------------------------------
    # Ancestors and LCA distances
    # ------------------------------------------------------------------
    def ancestors(self, category_id: str, include_self: bool = True) -> List[str]:
        """Path from ``category_id`` up to (and including) the root."""
        node = self._node(category_id)
        path = [node.category_id] if include_self else []
        while node.parent_id is not None:
            path.append(node.parent_id)
            node = self._nodes[node.parent_id]
        return path

    def item_ancestors(self, item_index: int, include_category: bool = True) -> List[str]:
        """Ancestor categories of an item, nearest first."""
        return self.ancestors(self.category_of(item_index), include_self=include_category)

    def lca(self, category_a: str, category_b: str) -> str:
        """Least common ancestor of two categories."""
        ancestors_a = set(self.ancestors(category_a))
        node = self._node(category_b)
        while node.category_id not in ancestors_a:
            if node.parent_id is None:  # pragma: no cover - root always shared
                break
            node = self._nodes[node.parent_id]
        return node.category_id

    def lca_distance(self, item_a: int, item_b: int) -> int:
        """Paper's item distance (Fig. 3): items are leaf nodes of the tree.

        An item hangs one level below its category, and the distance is
        the number of levels from the item up to the least common
        ancestor: two items in the same category are at distance 1
        (their LCA is the category), Nexus 5X and iPhone 6 at distance 2
        (LCA "smart phones"), Nexus 5X and "other" at distance 3 (LCA
        "cell phones").  When the items sit at different depths we use
        the deeper climb.  ``distance(i, i) == 0``.
        """
        if item_a == item_b:
            return 0
        cat_a = self.category_of(item_a)
        cat_b = self.category_of(item_b)
        lca = self.lca(cat_a, cat_b)
        lca_depth = self._nodes[lca].depth
        climb_a = self._nodes[cat_a].depth + 1 - lca_depth
        climb_b = self._nodes[cat_b].depth + 1 - lca_depth
        return max(climb_a, climb_b)

    def ancestor_at_distance(self, category_id: str, k: int) -> str:
        """The ancestor ``k`` levels above ``category_id`` (clamped at root)."""
        node = self._node(category_id)
        for _ in range(k):
            if node.parent_id is None:
                break
            node = self._nodes[node.parent_id]
        return node.category_id

    def lca_k(self, item_index: int, k: int) -> List[int]:
        """All items within LCA distance ``k`` of ``item_index``.

        This is the paper's ``lca_k(i)``: ``lca_1`` is the item's own
        category (e.g. other Android phones), ``lca_2`` the parent's
        subtree (all smart phones), and so on.  ``k = 0`` is just the
        item itself.  The result includes ``item_index`` (callers exclude
        it where needed).
        """
        if k < 0:
            raise TaxonomyError("k must be non-negative")
        if k == 0:
            return [item_index]
        top = self.ancestor_at_distance(self.category_of(item_index), k - 1)
        return self.items_in(top, include_descendants=True)

    def copy(self) -> "Taxonomy":
        """An independent deep copy (same tree, same item assignments).

        Day-over-day evolution appends items to a *copy* so earlier
        snapshots stay frozen.
        """
        duplicate = Taxonomy()
        # Re-add categories in depth order so parents exist first.
        ordered = sorted(
            (node for node in self._nodes.values() if node.parent_id is not None),
            key=lambda node: node.depth,
        )
        for node in ordered:
            duplicate.add_category(node.category_id, node.parent_id)
        for item, category in self._item_category.items():
            duplicate.assign_item(item, category)
        return duplicate

    def _node(self, category_id: str) -> CategoryNode:
        try:
            return self._nodes[category_id]
        except KeyError:
            raise TaxonomyError(f"unknown category {category_id!r}") from None


def random_taxonomy(
    n_items: int,
    depth: int = 3,
    fanout: int = 4,
    seed: SeedLike = None,
) -> Taxonomy:
    """Generate a random taxonomy and attach ``n_items`` items to leaves.

    The tree is a complete ``fanout``-ary tree of the given ``depth``
    (root at depth 0, leaves at depth ``depth``).  Items are assigned to
    leaf categories with a mild skew: some categories are larger than
    others, mirroring real catalogs where e.g. "phone cases" dwarfs
    "telescopes".
    """
    if depth < 1:
        raise TaxonomyError("taxonomy depth must be >= 1")
    if fanout < 1:
        raise TaxonomyError("taxonomy fanout must be >= 1")
    rng = make_rng(seed)
    taxonomy = Taxonomy()
    frontier = [ROOT_CATEGORY]
    for level in range(1, depth + 1):
        next_frontier = []
        for parent in frontier:
            for child_index in range(fanout):
                category_id = f"{parent}/c{level}_{child_index}" if parent != ROOT_CATEGORY else f"c{level}_{child_index}"
                taxonomy.add_category(category_id, parent)
                next_frontier.append(category_id)
        frontier = next_frontier

    leaves = taxonomy.leaves()
    # Dirichlet weights give leaf categories heterogeneous sizes.
    weights = rng.dirichlet([0.7] * len(leaves))
    assignments = rng.choice(len(leaves), size=n_items, p=weights)
    for item_index, leaf_index in enumerate(assignments):
        taxonomy.assign_item(item_index, leaves[int(leaf_index)])
    return taxonomy
