"""The per-retailer dataset bundle consumed by training and evaluation.

A :class:`RetailerDataset` packages everything one Sigmund model instance
needs: the catalog, the taxonomy, the training interactions, and the
leave-last-out holdout.  It is the unit of privacy isolation — nothing in
it refers to any other retailer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.data.catalog import Catalog
from repro.data.events import EventType, Interaction, count_by_event
from repro.data.generator import SyntheticRetailer
from repro.data.sessions import DEFAULT_MAX_CONTEXT, build_user_histories
from repro.data.split import HoldoutExample, TrainTestSplit, leave_last_out_split
from repro.data.taxonomy import Taxonomy


@dataclass
class RetailerDataset:
    """Training-ready data for exactly one retailer."""

    retailer_id: str
    catalog: Catalog
    taxonomy: Taxonomy
    train: List[Interaction]
    holdout: List[HoldoutExample]
    max_context: int = DEFAULT_MAX_CONTEXT
    #: Kept when built from a synthetic retailer so experiments can query
    #: ground truth; ``None`` for real/externally loaded data.
    source: Optional[SyntheticRetailer] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.catalog.retailer_id != self.retailer_id:
            raise ValueError(
                f"catalog belongs to {self.catalog.retailer_id!r}, "
                f"dataset claims {self.retailer_id!r}"
            )

    # ------------------------------------------------------------------
    # Sizes & summaries
    # ------------------------------------------------------------------
    @property
    def n_items(self) -> int:
        return len(self.catalog)

    @property
    def n_users(self) -> int:
        return len({interaction.user_id for interaction in self.train})

    @property
    def n_train_interactions(self) -> int:
        return len(self.train)

    def event_counts(self) -> Dict[EventType, int]:
        return count_by_event(self.train)

    def train_histories(self) -> Dict[int, List[Interaction]]:
        """Per-user time-ordered training histories."""
        return build_user_histories(self.train)

    def interacted_items(self) -> List[int]:
        """Distinct item indices seen in training, ascending."""
        return sorted({interaction.item_index for interaction in self.train})

    def describe(self) -> Dict[str, object]:
        """A human-readable summary used by monitoring and examples."""
        counts = self.event_counts()
        return {
            "retailer_id": self.retailer_id,
            "items": self.n_items,
            "users": self.n_users,
            "train_interactions": self.n_train_interactions,
            "holdout_examples": len(self.holdout),
            "brand_coverage": round(self.catalog.brand_coverage(), 3),
            "price_coverage": round(self.catalog.price_coverage(), 3),
            "events": {str(event): count for event, count in counts.items()},
        }


def dataset_from_synthetic(
    retailer: SyntheticRetailer, max_context: int = DEFAULT_MAX_CONTEXT
) -> RetailerDataset:
    """Split a synthetic retailer's log and wrap it as a dataset."""
    split: TrainTestSplit = leave_last_out_split(
        retailer.interactions, max_context=max_context
    )
    return RetailerDataset(
        retailer_id=retailer.retailer_id,
        catalog=retailer.catalog,
        taxonomy=retailer.taxonomy,
        train=split.train,
        holdout=split.holdout,
        max_context=max_context,
        source=retailer,
    )
