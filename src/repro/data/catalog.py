"""Retailer catalogs: items with brand, price, and facet metadata.

A catalog is the per-retailer inventory.  Item ids embed the retailer id
(paper section IV-C: "Item IDs contain the retailer ID, so the same item
sold by different retailers will have a different ID"), while dense item
*indices* (0..n-1) are what models and matrices operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import DataError


@dataclass(frozen=True)
class Item:
    """A single catalog entry.

    ``brand`` is ``None`` when the retailer did not provide one — brand
    coverage below ~10% is common for small retailers in the paper and
    drives per-retailer feature selection.
    """

    item_id: str
    index: int
    category_id: str
    brand: Optional[str] = None
    price: Optional[float] = None
    facets: Mapping[str, str] = field(default_factory=dict)


class Catalog:
    """An immutable-after-build collection of :class:`Item` objects."""

    def __init__(self, retailer_id: str, items: Sequence[Item]):
        self.retailer_id = retailer_id
        self._items: List[Item] = list(items)
        self._by_id: Dict[str, Item] = {}
        for expected_index, item in enumerate(self._items):
            if item.index != expected_index:
                raise DataError(
                    f"item {item.item_id!r} has index {item.index}, expected {expected_index}"
                )
            if item.item_id in self._by_id:
                raise DataError(f"duplicate item id {item.item_id!r}")
            self._by_id[item.item_id] = item

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Item]:
        return iter(self._items)

    def __getitem__(self, index: int) -> Item:
        return self._items[index]

    def by_id(self, item_id: str) -> Item:
        try:
            return self._by_id[item_id]
        except KeyError:
            raise DataError(f"unknown item id {item_id!r}") from None

    def has_id(self, item_id: str) -> bool:
        return item_id in self._by_id

    # ------------------------------------------------------------------
    # Attribute views used by the feature system
    # ------------------------------------------------------------------
    def brands(self) -> List[Optional[str]]:
        """Per-item brand (``None`` where missing), aligned with indices."""
        return [item.brand for item in self._items]

    def brand_vocabulary(self) -> List[str]:
        """Sorted distinct brands present in the catalog."""
        return sorted({item.brand for item in self._items if item.brand is not None})

    def brand_coverage(self) -> float:
        """Fraction of items that carry a brand attribute."""
        if not self._items:
            return 0.0
        covered = sum(1 for item in self._items if item.brand is not None)
        return covered / len(self._items)

    def prices(self) -> np.ndarray:
        """Per-item price array with ``nan`` where missing."""
        return np.array(
            [np.nan if item.price is None else float(item.price) for item in self._items],
            dtype=np.float64,
        )

    def price_coverage(self) -> float:
        """Fraction of items that carry a price attribute."""
        if not self._items:
            return 0.0
        covered = sum(1 for item in self._items if item.price is not None)
        return covered / len(self._items)

    def facet_values(self, facet: str) -> List[Optional[str]]:
        """Per-item value of a named facet (e.g. color), ``None`` if absent."""
        return [item.facets.get(facet) for item in self._items]

    def items_with_facet(self, facet: str, value: str) -> List[int]:
        """Indices of items whose ``facet`` equals ``value``."""
        return [item.index for item in self._items if item.facets.get(facet) == value]


def make_item_id(retailer_id: str, index: int) -> str:
    """Construct the globally unique item id for a retailer-local index."""
    return f"{retailer_id}:item{index}"


def parse_item_id(item_id: str) -> tuple[str, int]:
    """Split a global item id back into ``(retailer_id, index)``."""
    retailer_id, _, local = item_id.rpartition(":item")
    if not retailer_id or not local.isdigit():
        raise DataError(f"malformed item id {item_id!r}")
    return retailer_id, int(local)
