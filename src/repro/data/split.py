"""Leave-last-out holdout split (paper section III-C2).

For every user with more than two interactions, the last item in their
sequence is held out; the model is asked to rank that item given the
context formed by everything before it.  Each retailer gets its own
holdout set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.data.events import Interaction
from repro.data.sessions import (
    DEFAULT_MAX_CONTEXT,
    UserContext,
    build_user_histories,
    final_context,
)

#: Users need strictly more interactions than this to enter the holdout.
MIN_INTERACTIONS_FOR_HOLDOUT = 2


@dataclass(frozen=True)
class HoldoutExample:
    """One evaluation example: rank ``held_out_item`` given ``context``."""

    user_id: int
    context: UserContext
    held_out_item: int


@dataclass
class TrainTestSplit:
    """The result of :func:`leave_last_out_split` for one retailer."""

    train: List[Interaction]
    holdout: List[HoldoutExample]

    @property
    def num_train(self) -> int:
        return len(self.train)

    @property
    def num_holdout(self) -> int:
        return len(self.holdout)


def leave_last_out_split(
    interactions: Sequence[Interaction],
    max_context: int = DEFAULT_MAX_CONTEXT,
    min_interactions: int = MIN_INTERACTIONS_FOR_HOLDOUT,
) -> TrainTestSplit:
    """Split a retailer log into training events and a holdout set.

    Users with ``min_interactions`` or fewer events contribute all of
    their events to training and none to the holdout (there is too little
    context to evaluate them meaningfully, per the paper).
    """
    histories = build_user_histories(interactions)
    train: List[Interaction] = []
    holdout: List[HoldoutExample] = []
    for user_id in sorted(histories):
        history = histories[user_id]
        if len(history) <= min_interactions:
            train.extend(history)
            continue
        head, last = history[:-1], history[-1]
        train.extend(head)
        holdout.append(
            HoldoutExample(
                user_id=user_id,
                context=final_context(head, max_context),
                held_out_item=last.item_index,
            )
        )
    return TrainTestSplit(train=train, holdout=holdout)


def holdout_items(split: TrainTestSplit) -> List[int]:
    """The held-out item per example, aligned with ``split.holdout``."""
    return [example.held_out_item for example in split.holdout]


def per_user_train_counts(split: TrainTestSplit) -> Dict[int, int]:
    """Number of training interactions per user (for diagnostics)."""
    counts: Dict[int, int] = {}
    for interaction in split.train:
        counts[interaction.user_id] = counts.get(interaction.user_id, 0) + 1
    return counts
