"""User histories and context windows (paper section III-B2, Fig. 2).

Sigmund does not learn a free embedding per user.  A user is represented
by the *context*: the sequence of their last K actions, e.g.
``(view: Nexus 5X, search: iPhone 6, cart: Nexus 6P)``.  The model then
forms the user embedding as a decayed linear combination of the context
embeddings of those items, which generalizes to brand-new users without
retraining.

This module turns a retailer's event log into per-user histories and
slides a window over each history to produce ``(context, positive)``
pairs, exactly as paper Fig. 2 illustrates: after observing items
``(a, b)`` the user's next action on item ``c`` yields the training
context ``(a, b)`` with positive item ``c``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.data.events import EventType, Interaction, sort_log

#: Default maximum number of past actions kept in a context (paper: ~25).
DEFAULT_MAX_CONTEXT = 25


@dataclass(frozen=True)
class UserContext:
    """The last K (event, item) actions of a user, oldest first."""

    item_indices: Tuple[int, ...]
    events: Tuple[EventType, ...]

    def __post_init__(self) -> None:
        if len(self.item_indices) != len(self.events):
            raise ValueError("context items and events must align")

    def __len__(self) -> int:
        return len(self.item_indices)

    def truncated(self, max_context: int) -> "UserContext":
        """Keep only the most recent ``max_context`` actions."""
        if len(self) <= max_context:
            return self
        return UserContext(self.item_indices[-max_context:], self.events[-max_context:])

    def extended(self, item_index: int, event: EventType, max_context: int) -> "UserContext":
        """Return a new context with one more action appended."""
        return UserContext(
            self.item_indices + (item_index,), self.events + (event,)
        ).truncated(max_context)

    @property
    def most_recent_item(self) -> int:
        if not self.item_indices:
            raise ValueError("empty context has no most recent item")
        return self.item_indices[-1]

    @staticmethod
    def empty() -> "UserContext":
        return UserContext((), ())

    @staticmethod
    def from_pairs(pairs: Sequence[Tuple[EventType, int]]) -> "UserContext":
        """Build a context from ``[(event, item_index), ...]`` oldest first."""
        return UserContext(
            tuple(item for _, item in pairs), tuple(event for event, _ in pairs)
        )


def build_user_histories(
    interactions: Iterable[Interaction],
) -> Dict[int, List[Interaction]]:
    """Group a log into per-user, time-ordered histories."""
    histories: Dict[int, List[Interaction]] = defaultdict(list)
    for interaction in sort_log(interactions):
        histories[interaction.user_id].append(interaction)
    return dict(histories)


def context_windows(
    history: Sequence[Interaction],
    max_context: int = DEFAULT_MAX_CONTEXT,
    min_context: int = 1,
) -> Iterator[Tuple[UserContext, Interaction]]:
    """Yield ``(context, positive)`` pairs from one user's history.

    The first ``min_context`` actions only seed the context (a positive
    with an empty context carries no ranking signal in the context-based
    user model).
    """
    context = UserContext.empty()
    for step, interaction in enumerate(history):
        if step >= min_context and len(context) > 0:
            yield context, interaction
        context = context.extended(interaction.item_index, interaction.event, max_context)


def all_context_windows(
    histories: Dict[int, List[Interaction]],
    max_context: int = DEFAULT_MAX_CONTEXT,
) -> Iterator[Tuple[int, UserContext, Interaction]]:
    """Context windows across all users as ``(user_id, context, positive)``."""
    for user_id in sorted(histories):
        for context, positive in context_windows(histories[user_id], max_context):
            yield user_id, context, positive


def final_context(
    history: Sequence[Interaction], max_context: int = DEFAULT_MAX_CONTEXT
) -> UserContext:
    """The user's context after their entire history (for serving/eval)."""
    context = UserContext.empty()
    for interaction in history:
        context = context.extended(interaction.item_index, interaction.event, max_context)
    return context
