"""Synthetic retailer and marketplace generation.

This is the substitute for the paper's proprietary data (see DESIGN.md).
Each synthetic retailer carries a *ground truth*: latent user and item
vectors, brand affinities, and price sensitivities that drive both the
generated interaction log and (later) the simulated click-through-rates
used to reproduce paper Fig. 6.

Key properties preserved from the paper's setting:

* **Heterogeneity** — marketplace retailers span orders of magnitude in
  catalog and user counts (lognormal sizes), like Sigmund's "few dozen
  items" to "tens of millions".
* **Sparsity and skew** — item popularity is Zipf-distributed, users see a
  tiny slice of the catalog, and strong events (cart/conversion) are
  orders of magnitude rarer than views.
* **Informative structure** — ground-truth item vectors are drawn
  hierarchically down the taxonomy and shifted by brand, so taxonomy and
  brand features genuinely help a model that uses them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.catalog import Catalog, Item, make_item_id
from repro.data.events import EventType, Interaction
from repro.data.taxonomy import ROOT_CATEGORY, Taxonomy, random_taxonomy
from repro.exceptions import DataError
from repro.rng import derive_seed, make_rng

#: Multiplier applied to the funnel upgrade probability at each stage; keeps
#: carts/conversions orders of magnitude rarer than views (paper III-A).
_STAGE_DECAY = 0.35


@dataclass(frozen=True)
class RetailerSpec:
    """Parameters for one synthetic retailer.

    The defaults describe a mid-sized retailer; :func:`generate_marketplace`
    rescales them to produce the paper's heterogeneous population.
    """

    retailer_id: str
    n_items: int = 500
    n_users: int = 400
    n_events: int = 6000
    taxonomy_depth: int = 3
    taxonomy_fanout: int = 4
    n_brands: int = 12
    brand_coverage: float = 0.8
    price_coverage: float = 0.95
    latent_dim: int = 8
    popularity_alpha: float = 1.0
    #: Probability that a step upgrades view -> search -> cart -> conversion.
    funnel_upgrade_prob: float = 0.22
    #: How many popularity-sampled items one user ever considers.
    browse_pool_size: int = 64
    #: Softmax temperature when users choose among their pool.
    choice_temperature: float = 0.7
    #: Probability that a session step follows the previous item's
    #: companion graph (substitutes/accessories) instead of free browsing.
    #: This sequential structure is what co-occurrence models capture.
    transition_prob: float = 0.4
    #: Ground-truth companion links per item.
    companions_per_item: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_items < 2:
            raise DataError("a retailer needs at least 2 items")
        if self.n_users < 1:
            raise DataError("a retailer needs at least 1 user")
        if not 0.0 <= self.brand_coverage <= 1.0:
            raise DataError("brand_coverage must be in [0, 1]")
        if not 0.0 <= self.price_coverage <= 1.0:
            raise DataError("price_coverage must be in [0, 1]")


@dataclass
class SyntheticRetailer:
    """A fully generated retailer: catalog, taxonomy, log, and ground truth."""

    spec: RetailerSpec
    catalog: Catalog
    taxonomy: Taxonomy
    interactions: List[Interaction]
    true_item_vectors: np.ndarray
    true_user_vectors: np.ndarray
    user_brand_affinity: Dict[int, Optional[str]]
    user_price_sensitivity: np.ndarray
    item_popularity: np.ndarray
    #: Ground-truth companion graph: items users genuinely move to next
    #: (substitutes and accessories).  Drives session transitions and the
    #: CTR simulator's companion bonus.
    companions: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def retailer_id(self) -> str:
        return self.spec.retailer_id

    @property
    def n_items(self) -> int:
        return len(self.catalog)

    @property
    def n_users(self) -> int:
        return self.true_user_vectors.shape[0]

    def affinity(self, user_id: int, item_index: int) -> float:
        """Ground-truth utility of ``item_index`` for ``user_id``.

        This is the hidden quantity the recommender tries to recover; the
        CTR simulator clicks recommendations with probability increasing in
        this affinity.
        """
        base = float(
            self.true_user_vectors[user_id] @ self.true_item_vectors[item_index]
        )
        item = self.catalog[item_index]
        brand = self.user_brand_affinity.get(user_id)
        if brand is not None and item.brand == brand:
            base += 1.0
        if item.price is not None:
            sensitivity = float(self.user_price_sensitivity[user_id])
            base -= sensitivity * float(np.log1p(item.price)) * 0.1
        return base

    def affinities(self, user_id: int, item_indices: Sequence[int]) -> np.ndarray:
        """Vectorized :meth:`affinity` over several items."""
        return np.array([self.affinity(user_id, i) for i in item_indices])

    def is_companion(self, source_item: int, candidate: int) -> bool:
        """Whether ``candidate`` is a ground-truth companion of ``source_item``."""
        return candidate in self.companions.get(source_item, ())


@dataclass(frozen=True)
class MarketplaceSpec:
    """Parameters for a whole population of retailers.

    Sizes are lognormal: ``median_items`` with multiplicative spread
    ``sigma_items`` (in natural-log units).  Users and events scale with
    catalog size, mirroring how traffic correlates with inventory.
    """

    n_retailers: int = 20
    median_items: int = 200
    sigma_items: float = 1.2
    min_items: int = 24
    max_items: int = 20000
    users_per_item: float = 0.8
    events_per_user: float = 14.0
    seed: int = 0


def generate_retailer(spec: RetailerSpec) -> SyntheticRetailer:
    """Generate one synthetic retailer from its spec (deterministic)."""
    rng = make_rng(spec.seed)
    taxonomy = random_taxonomy(
        spec.n_items,
        depth=spec.taxonomy_depth,
        fanout=spec.taxonomy_fanout,
        seed=derive_seed(spec.seed, "taxonomy"),
    )
    category_vectors = _hierarchical_category_vectors(taxonomy, spec.latent_dim, rng)
    brands = [f"brand_{b}" for b in range(max(1, spec.n_brands))]
    brand_vectors = {
        brand: rng.normal(0.0, 0.6, size=spec.latent_dim) for brand in brands
    }
    catalog, item_vectors = _build_catalog(
        spec, taxonomy, category_vectors, brands, brand_vectors, rng
    )

    user_vectors, user_brand, user_price_sens = _build_users(
        spec, taxonomy, category_vectors, brands, rng
    )
    popularity = _zipf_popularity(spec.n_items, spec.popularity_alpha, rng)
    companions = _build_companions(spec, taxonomy, popularity, rng)
    retailer = SyntheticRetailer(
        spec=spec,
        catalog=catalog,
        taxonomy=taxonomy,
        interactions=[],
        true_item_vectors=item_vectors,
        true_user_vectors=user_vectors,
        user_brand_affinity=user_brand,
        user_price_sensitivity=user_price_sens,
        item_popularity=popularity,
        companions=companions,
    )
    retailer.interactions = _simulate_log(retailer, rng)
    return retailer


def generate_marketplace(spec: MarketplaceSpec) -> List[SyntheticRetailer]:
    """Generate a heterogeneous population of retailers.

    Retailer ``k`` is fully determined by ``spec.seed`` and ``k``; adding
    retailers never changes existing ones.
    """
    rng = make_rng(spec.seed)
    retailers = []
    for k in range(spec.n_retailers):
        n_items = int(
            np.clip(
                round(spec.median_items * np.exp(rng.normal(0.0, spec.sigma_items))),
                spec.min_items,
                spec.max_items,
            )
        )
        n_users = max(4, int(round(n_items * spec.users_per_item)))
        n_events = max(40, int(round(n_users * spec.events_per_user)))
        # Depth/fanout grow gently with catalog size so LCA structure stays
        # meaningful for both tiny and large retailers.
        depth = 2 if n_items < 100 else 3 if n_items < 4000 else 4
        fanout = 3 if n_items < 100 else 4
        retailer_spec = RetailerSpec(
            retailer_id=f"retailer_{k:04d}",
            n_items=n_items,
            n_users=n_users,
            n_events=n_events,
            taxonomy_depth=depth,
            taxonomy_fanout=fanout,
            n_brands=max(2, n_items // 40),
            brand_coverage=float(rng.uniform(0.05, 0.95)),
            seed=derive_seed(spec.seed, "retailer", k),
        )
        retailers.append(generate_retailer(retailer_spec))
    return retailers


def rescaled(spec: RetailerSpec, **overrides: object) -> RetailerSpec:
    """A copy of ``spec`` with fields replaced (convenience for sweeps)."""
    return replace(spec, **overrides)  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------


def _hierarchical_category_vectors(
    taxonomy: Taxonomy, dim: int, rng: np.random.Generator
) -> Dict[str, np.ndarray]:
    """Draw category vectors top-down: child = parent + noise.

    This is the generative mirror of the hierarchical-additive taxonomy
    feature (Kanagal et al. [4]): nearby categories have nearby vectors,
    so sharing statistical strength across the tree genuinely pays off.
    """
    vectors: Dict[str, np.ndarray] = {ROOT_CATEGORY: np.zeros(dim)}
    # Walk the tree breadth-first from the root.
    frontier = [ROOT_CATEGORY]
    while frontier:
        parent = frontier.pop()
        for child in taxonomy.children_of(parent):
            vectors[child] = vectors[parent] + rng.normal(0.0, 0.8, size=dim)
            frontier.append(child)
    return vectors


def _build_catalog(
    spec: RetailerSpec,
    taxonomy: Taxonomy,
    category_vectors: Dict[str, np.ndarray],
    brands: List[str],
    brand_vectors: Dict[str, np.ndarray],
    rng: np.random.Generator,
) -> tuple[Catalog, np.ndarray]:
    """Materialize items with brand/price/facets and their true vectors."""
    # Each leaf category prefers a couple of brands (brand correlates with
    # category, as in real catalogs) and has its own base price level.
    leaf_brands: Dict[str, List[str]] = {}
    leaf_price: Dict[str, float] = {}
    for leaf in taxonomy.leaves():
        count = min(len(brands), 3)
        chosen = rng.choice(len(brands), size=count, replace=False)
        leaf_brands[leaf] = [brands[int(c)] for c in chosen]
        leaf_price[leaf] = float(np.exp(rng.normal(3.2, 1.0)))

    colors = ("black", "white", "red", "blue", "green")
    items: List[Item] = []
    item_vectors = np.zeros((spec.n_items, spec.latent_dim))
    for index in range(spec.n_items):
        category = taxonomy.category_of(index)
        brand: Optional[str] = None
        if rng.random() < spec.brand_coverage:
            candidates = leaf_brands[category]
            brand = candidates[int(rng.integers(len(candidates)))]
        price: Optional[float] = None
        if rng.random() < spec.price_coverage:
            price = round(leaf_price[category] * float(np.exp(rng.normal(0.0, 0.5))), 2)
        vector = category_vectors[category] + rng.normal(
            0.0, 0.5, size=spec.latent_dim
        )
        if brand is not None:
            vector = vector + 0.5 * brand_vectors[brand]
        item_vectors[index] = vector
        items.append(
            Item(
                item_id=make_item_id(spec.retailer_id, index),
                index=index,
                category_id=category,
                brand=brand,
                price=price,
                facets={"color": colors[int(rng.integers(len(colors)))]},
            )
        )
    return Catalog(spec.retailer_id, items), item_vectors


def _build_users(
    spec: RetailerSpec,
    taxonomy: Taxonomy,
    category_vectors: Dict[str, np.ndarray],
    brands: List[str],
    rng: np.random.Generator,
) -> tuple[np.ndarray, Dict[int, Optional[str]], np.ndarray]:
    """Draw ground-truth user vectors, brand affinities, price sensitivity."""
    leaves = taxonomy.leaves()
    user_vectors = np.zeros((spec.n_users, spec.latent_dim))
    user_brand: Dict[int, Optional[str]] = {}
    for user_id in range(spec.n_users):
        n_interests = int(rng.integers(1, 4))
        chosen = rng.choice(len(leaves), size=min(n_interests, len(leaves)), replace=False)
        interest = np.mean([category_vectors[leaves[int(c)]] for c in chosen], axis=0)
        user_vectors[user_id] = interest + rng.normal(0.0, 0.4, size=spec.latent_dim)
        # Paper: "most online shoppers are either brand-aware ... or
        # price-conscious".  Half the users lock onto one brand.
        user_brand[user_id] = (
            brands[int(rng.integers(len(brands)))] if rng.random() < 0.5 else None
        )
    price_sensitivity = rng.gamma(2.0, 0.5, size=spec.n_users)
    return user_vectors, user_brand, price_sensitivity


def _build_companions(
    spec: RetailerSpec,
    taxonomy: Taxonomy,
    popularity: np.ndarray,
    rng: np.random.Generator,
) -> Dict[int, List[int]]:
    """Draw each item's ground-truth companion set.

    Companions are mostly taxonomy-near (substitutes: same category or a
    sibling) with one popularity-sampled accessory from anywhere — the
    mix that makes real "customers also viewed" lists.  The graph is what
    sequential behaviour follows, so co-occurrence statistics genuinely
    carry signal in the synthetic world.
    """
    companions: Dict[int, List[int]] = {}
    if spec.companions_per_item <= 0:
        return companions
    for item in range(spec.n_items):
        nearby = [c for c in taxonomy.lca_k(item, 2) if c != item]
        chosen: List[int] = []
        if nearby:
            count = min(len(nearby), max(1, spec.companions_per_item - 1))
            picks = rng.choice(len(nearby), size=count, replace=False)
            chosen.extend(nearby[int(p)] for p in picks)
        # One popular cross-category accessory.
        for _ in range(4):
            accessory = int(rng.choice(spec.n_items, p=popularity))
            if accessory != item and accessory not in chosen:
                chosen.append(accessory)
                break
        companions[item] = chosen
    return companions


def _zipf_popularity(
    n_items: int, alpha: float, rng: np.random.Generator
) -> np.ndarray:
    """Zipf popularity weights over a random permutation of items."""
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    rng.shuffle(weights)
    return weights / weights.sum()


def _simulate_log(
    retailer: SyntheticRetailer, rng: np.random.Generator
) -> List[Interaction]:
    """Simulate the implicit-feedback log using the ground truth.

    Each user browses a popularity-sampled pool, picking by a softmax over
    their ground-truth affinities — except that with ``transition_prob``
    each step instead follows the previous item's companion graph (the
    sequential substitute/accessory behaviour real logs exhibit).  Each
    pick climbs the event funnel (view -> search -> cart -> conversion)
    with probability that rises with affinity, reproducing the
    orders-of-magnitude event-type imbalance the paper reports.
    """
    spec = retailer.spec
    n_items = retailer.n_items
    interactions: List[Interaction] = []
    events_per_user = max(2, spec.n_events // spec.n_users)
    clock = 0.0
    for user_id in range(spec.n_users):
        pool_size = min(spec.browse_pool_size, n_items)
        pool = rng.choice(
            n_items, size=pool_size, replace=False, p=retailer.item_popularity
        )
        scores = retailer.affinities(user_id, pool) / spec.choice_temperature
        scores -= scores.max()
        probs = np.exp(scores)
        probs /= probs.sum()
        session_len = max(2, int(rng.poisson(events_per_user)))
        previous: Optional[int] = None
        for _ in range(session_len):
            companions = (
                retailer.companions.get(previous, []) if previous is not None else []
            )
            if companions and rng.random() < spec.transition_prob:
                item_index = int(companions[int(rng.integers(len(companions)))])
            else:
                item_index = int(rng.choice(pool, p=probs))
            clock += float(rng.exponential(1.0))
            affinity = retailer.affinity(user_id, item_index)
            event = _funnel_event(affinity, spec.funnel_upgrade_prob, rng)
            interactions.append(
                Interaction(
                    timestamp=clock,
                    user_id=user_id,
                    item_index=item_index,
                    event=event,
                )
            )
            previous = item_index
    return interactions


def _funnel_event(
    affinity: float, base_upgrade_prob: float, rng: np.random.Generator
) -> EventType:
    """Climb the funnel; higher affinity means deeper funnel penetration.

    Each successive stage is markedly harder to reach (``_STAGE_DECAY``)
    so that, like the paper's logs, conversions and carts end up orders of
    magnitude rarer than views and searches.
    """
    upgrade_prob = float(np.clip(base_upgrade_prob * (1.0 + 0.15 * affinity), 0.02, 0.5))
    event = EventType.VIEW
    for stronger in (EventType.SEARCH, EventType.CART, EventType.CONVERSION):
        if rng.random() < upgrade_prob:
            event = stronger
            upgrade_prob *= _STAGE_DECAY
        else:
            break
    return event
