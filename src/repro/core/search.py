"""Beyond grid search: random search and successive halving (§III-C1).

The paper: "Bayesian methods to automatically tune hyper-parameters have
been proposed ... Services like Vizier hold promise to improve on simple
grid-search based techniques — both for managing trials more easily and
for finding better models.  If we were to rebuild the hyperparameter
search today, we would design it to integrate deeply with such a
service."

This module is that rebuild, scoped to what a self-contained library can
ship: a continuous :class:`SearchSpace`, **random search** (the
strongest simple baseline), and **successive halving** — train many
cheap candidates briefly, keep the top ``1/eta``, extend their training
(warm-started, like Sigmund's incremental runs), repeat.  Both return
ordinary :class:`~repro.core.config.OutputConfigRecord` objects so the
rest of the pipeline (registry, inference) is agnostic to how the model
was found.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import ConfigRecord, OutputConfigRecord
from repro.core.training import TrainerSettings, train_config
from repro.data.datasets import RetailerDataset
from repro.exceptions import ConfigError
from repro.models.bpr import BPRHyperParams, BPRModel
from repro.obs.metrics import NULL_METRICS
from repro.rng import SeedLike, derive_seed, make_rng


@dataclass(frozen=True)
class SearchSpace:
    """A continuous/discrete hyper-parameter space for one retailer."""

    factor_choices: Tuple[int, ...] = (4, 8, 16, 32, 64)
    learning_rate_range: Tuple[float, float] = (0.005, 0.5)
    reg_item_range: Tuple[float, float] = (1e-4, 1.0)
    reg_context_range: Tuple[float, float] = (1e-4, 1.0)
    taxonomy_choices: Tuple[bool, ...] = (True, False)
    brand_choices: Tuple[bool, ...] = (True, False)
    price_choices: Tuple[bool, ...] = (True, False)
    context_decay_range: Tuple[float, float] = (0.6, 0.99)

    def __post_init__(self) -> None:
        for low, high in (
            self.learning_rate_range,
            self.reg_item_range,
            self.reg_context_range,
            self.context_decay_range,
        ):
            if not 0 < low <= high:
                raise ConfigError("ranges must satisfy 0 < low <= high")
        if not self.factor_choices:
            raise ConfigError("factor_choices must be non-empty")

    def sample(self, rng: np.random.Generator, seed: int) -> BPRHyperParams:
        """Draw one configuration (log-uniform over scale parameters)."""

        def log_uniform(low: float, high: float) -> float:
            return float(np.exp(rng.uniform(np.log(low), np.log(high))))

        return BPRHyperParams(
            n_factors=int(rng.choice(self.factor_choices)),
            learning_rate=log_uniform(*self.learning_rate_range),
            reg_item=log_uniform(*self.reg_item_range),
            reg_context=log_uniform(*self.reg_context_range),
            use_taxonomy=bool(rng.choice(self.taxonomy_choices)),
            use_brand=bool(rng.choice(self.brand_choices)),
            use_price=bool(rng.choice(self.price_choices)),
            context_decay=float(
                rng.uniform(*self.context_decay_range)
            ),
            seed=seed,
        )


@dataclass
class SearchOutcome:
    """The result of one search run, plus its total compute."""

    outputs: List[OutputConfigRecord] = field(default_factory=list)
    total_epochs: int = 0

    @property
    def best(self) -> OutputConfigRecord:
        if not self.outputs:
            raise ConfigError("search produced no outputs")
        return max(
            self.outputs, key=lambda o: (o.map_at_10, -o.config.model_number)
        )


def random_search(
    dataset: RetailerDataset,
    space: SearchSpace = SearchSpace(),
    n_trials: int = 16,
    settings: TrainerSettings = TrainerSettings(),
    seed: SeedLike = 0,
    metrics=NULL_METRICS,
) -> SearchOutcome:
    """Train ``n_trials`` independently sampled configurations."""
    rng = make_rng(seed)
    outcome = SearchOutcome()
    for trial in range(n_trials):
        params = space.sample(
            rng, derive_seed(int(0 if seed is None else 0) or 0, dataset.retailer_id, "rs", trial)
        )
        config = ConfigRecord(dataset.retailer_id, trial, params)
        _, output = train_config(config, dataset, settings, metrics=metrics)
        metrics.counter(
            "search_trials_total",
            retailer=dataset.retailer_id,
            strategy="random",
        ).inc()
        outcome.outputs.append(output)
        outcome.total_epochs += output.epochs_run
    return outcome


def successive_halving(
    dataset: RetailerDataset,
    space: SearchSpace = SearchSpace(),
    n_initial: int = 16,
    eta: int = 2,
    epochs_per_rung: int = 2,
    settings: TrainerSettings = TrainerSettings(),
    seed: SeedLike = 0,
    metrics=NULL_METRICS,
) -> SearchOutcome:
    """Successive halving over randomly sampled configurations.

    Rung 0 trains every candidate for ``epochs_per_rung`` epochs; each
    later rung warm-starts the surviving top ``1/eta`` fraction and
    trains them ``epochs_per_rung`` more.  Spends most compute on the
    most promising configs — the budget shape a Vizier-style service
    gives you.
    """
    if n_initial < 1:
        raise ConfigError("n_initial must be >= 1")
    if eta < 2:
        raise ConfigError("eta must be >= 2")
    rng = make_rng(seed)
    outcome = SearchOutcome()

    candidates: List[Tuple[ConfigRecord, Optional[BPRModel]]] = []
    for trial in range(n_initial):
        params = space.sample(
            rng, derive_seed(0, dataset.retailer_id, "sh", trial)
        )
        candidates.append(
            (ConfigRecord(dataset.retailer_id, trial, params), None)
        )

    rung = 0
    rung_settings = TrainerSettings(
        max_epochs_full=epochs_per_rung,
        max_epochs_incremental=epochs_per_rung,
        convergence_tol=0.0,  # rung budget is exact, not early-stopped
        sampler=settings.sampler,
        seconds_per_sgd_step=settings.seconds_per_sgd_step,
        n_threads=settings.n_threads,
    )
    scored: List[Tuple[OutputConfigRecord, BPRModel]] = []
    while candidates:
        scored = []
        for config, warm_model in candidates:
            rung_config = config.for_day(rung, warm_start=warm_model is not None)
            model, output = train_config(
                rung_config, dataset, rung_settings, warm_model=warm_model,
                metrics=metrics,
            )
            metrics.counter(
                "search_trials_total",
                retailer=dataset.retailer_id,
                strategy="halving",
            ).inc()
            outcome.total_epochs += output.epochs_run
            scored.append((output, model))
        scored.sort(key=lambda pair: -pair[0].map_at_10)
        outcome.outputs.extend(output for output, _ in scored)
        if len(scored) == 1:
            break
        keep = max(1, len(scored) // eta)
        candidates = [
            (output.config, model) for output, model in scored[:keep]
        ]
        rung += 1
    return outcome
