"""Config records — the unit of work flowing through Sigmund's pipelines.

"The sweep step determines the overall set of models to train, and
outputs a set of config records containing the model number, training and
validation dataset locations, and the values assigned to each of the
hyperparameters.  These config records form the input to the training
step." (section IV-A)

After training, an *output* config record adds the goodness metrics; the
inference pipeline reads those to pick each retailer's best model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.exceptions import ConfigError
from repro.models.bpr import BPRHyperParams


@dataclass(frozen=True)
class ConfigRecord:
    """One model to train: retailer, model number, hyper-parameters.

    ``model_kind`` selects the learner: ``"bpr"`` (the paper's choice) or
    ``"wals"`` (the least-squares alternative of section VI — "we can
    easily substitute it").  WALS reuses the relevant BPR hyper-parameters
    (factor count, item regularization, seed).
    """

    retailer_id: str
    model_number: int
    params: BPRHyperParams
    #: Set on incremental-sweep records: initialize from yesterday's model.
    warm_start: bool = False
    #: Which daily run produced this record (0 = initial full sweep).
    day: int = 0
    model_kind: str = "bpr"

    def __post_init__(self) -> None:
        if self.model_number < 0:
            raise ConfigError("model_number must be non-negative")
        if not self.retailer_id:
            raise ConfigError("retailer_id must be non-empty")
        if self.model_kind not in ("bpr", "wals"):
            raise ConfigError(f"unknown model_kind {self.model_kind!r}")

    @property
    def key(self) -> str:
        """Globally unique id, e.g. ``retailer_0003/m17``."""
        return f"{self.retailer_id}/m{self.model_number}"

    def for_day(self, day: int, warm_start: bool) -> "ConfigRecord":
        """The same configuration re-issued for a later daily run."""
        return replace(self, day=day, warm_start=warm_start)


@dataclass(frozen=True)
class OutputConfigRecord:
    """A config record after training: metrics attached (section IV-B).

    ``map_at_10`` is the model-selection criterion; the full metric dict
    keeps everything the evaluator computed for monitoring.
    """

    config: ConfigRecord
    metrics: Dict[str, float] = field(default_factory=dict)
    epochs_run: int = 0
    sgd_steps: int = 0
    train_seconds: float = 0.0

    @property
    def retailer_id(self) -> str:
        return self.config.retailer_id

    @property
    def map_at_10(self) -> float:
        return self.metrics.get("map@10", 0.0)

    def better_than(self, other: Optional["OutputConfigRecord"]) -> bool:
        """Model-selection ordering: higher MAP@10 wins; ties break stably."""
        if other is None:
            return True
        if self.map_at_10 != other.map_at_10:
            return self.map_at_10 > other.map_at_10
        return self.config.model_number < other.config.model_number
