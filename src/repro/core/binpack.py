"""Bin packing for inference parallelization (paper section IV-C1).

"To minimize the total running time of the job, we use a greedy first-fit
bin-packing heuristic to partition the retailers ... we use the number of
items in each retailer's inventory as the weight."

We implement first-fit-decreasing onto a fixed number of bins (the
makespan-minimization variant: each item goes to the currently lightest
feasible bin), plus the naive contiguous partitioner the benchmark
compares against.
"""

from __future__ import annotations

from typing import Hashable, List, Mapping, Sequence, TypeVar

from repro.exceptions import SigmundError

Key = TypeVar("Key", bound=Hashable)


def first_fit_decreasing(
    weights: Mapping[Key, float], n_bins: int
) -> List[List[Key]]:
    """Partition keys into ``n_bins`` groups, heaviest keys placed first.

    Each key is appended to the bin with the least total weight — the
    classic LPT/first-fit-decreasing heuristic, which is within 4/3 of
    the optimal makespan.
    """
    if n_bins < 1:
        raise SigmundError("need at least one bin")
    bins: List[List[Key]] = [[] for _ in range(n_bins)]
    loads = [0.0] * n_bins
    for key in sorted(weights, key=lambda k: (-weights[k], repr(k))):
        lightest = min(range(n_bins), key=lambda b: loads[b])
        bins[lightest].append(key)
        loads[lightest] += weights[key]
    return bins


def contiguous_partition(
    keys: Sequence[Key], weights: Mapping[Key, float], n_bins: int
) -> List[List[Key]]:
    """The naive alternative: equal *counts* per bin, in input order.

    Ignores weights entirely, so one bin can end up with all the large
    retailers — the skew the paper's heuristic exists to avoid.
    """
    if n_bins < 1:
        raise SigmundError("need at least one bin")
    del weights
    keys = list(keys)
    n_bins = min(n_bins, max(1, len(keys)))
    base, remainder = divmod(len(keys), n_bins)
    bins: List[List[Key]] = []
    start = 0
    for b in range(n_bins):
        size = base + (1 if b < remainder else 0)
        bins.append(keys[start : start + size])
        start += size
    while len(bins) < n_bins:
        bins.append([])
    return bins


def makespan(bins: Sequence[Sequence[Key]], weights: Mapping[Key, float]) -> float:
    """The heaviest bin's total weight — the job finishes when it does."""
    if not bins:
        return 0.0
    return max(sum(weights[key] for key in group) for group in bins) if any(bins) else 0.0


def load_balance_ratio(
    bins: Sequence[Sequence[Key]], weights: Mapping[Key, float]
) -> float:
    """makespan / ideal (total/bins); 1.0 is perfect balance."""
    total = sum(weights[key] for group in bins for key in group)
    if total == 0 or not bins:
        return 1.0
    ideal = total / len(bins)
    return makespan(bins, weights) / ideal
