"""The head/tail hybrid recommender (paper sections III-E, VII).

"Empirically we found that the best way to combine the co-occurrence
models along with factorization is to use the co-occurrence model for the
popular items (for which we have more data) and augment the
recommendations for the tail items from factorization."

Mechanics: both models score the pool; co-occurrence votes (which only
exist where pair data exists — i.e. the head) are z-normalized, given a
confidence offset, and added on top of the normalized factorization
scores.  Where co-occurrence has data its votes dominate the ranking;
across the long tail it is silent and factorization decides alone.  The
result matches co-occurrence on the head, lifts the tail, and covers the
whole inventory.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.cooccurrence.model import CoOccurrenceModel
from repro.data.sessions import UserContext
from repro.models.base import Recommender


def _normalize(scores: np.ndarray) -> np.ndarray:
    """Z-normalize so scores from different models become comparable."""
    std = scores.std()
    if std == 0:
        return np.zeros_like(scores)
    return (scores - scores.mean()) / std


class HybridRecommender(Recommender):
    """Co-occurrence votes layered over factorization scores."""

    def __init__(
        self,
        factorization: Recommender,
        cooccurrence: CoOccurrenceModel,
        vote_weight: float = 1.5,
        vote_offset: float = 1.0,
        min_support: float = 2.0,
    ):
        if factorization.n_items != cooccurrence.n_items:
            raise ValueError("hybrid components must share one catalog")
        self.n_items = factorization.n_items
        self.factorization = factorization
        self.cooccurrence = cooccurrence
        #: How strongly co-occurrence votes dominate where they exist.
        self.vote_weight = vote_weight
        #: Offset added to normalized votes so even an average vote beats
        #: a vote-less item — co-occurrence decides wherever it has data.
        self.vote_offset = vote_offset
        #: Pair count required before an item is *attributed* to the
        #: co-occurrence component (see :meth:`source_of`).
        self.min_support = min_support

    def score_items(
        self, context: UserContext, item_indices: Sequence[int]
    ) -> np.ndarray:
        items = np.asarray(list(item_indices), dtype=np.int64)
        mf_scores = _normalize(
            np.asarray(
                self.factorization.score_items(context, items), dtype=np.float64
            )
        )
        votes = self.cooccurrence.context_scores(context)
        if not votes:
            return mf_scores
        values = np.array(sorted(votes.values()))
        std = values.std() or 1.0
        mean = values.mean()
        boost = np.zeros_like(mf_scores)
        for position, item in enumerate(items):
            vote = votes.get(int(item))
            if vote is not None:
                boost[position] = (vote - mean) / std + self.vote_offset
        return mf_scores + self.vote_weight * boost

    def _supported_votes(self, context: UserContext) -> Dict[int, float]:
        """Co-occurrence votes whose strongest pair clears ``min_support``."""
        votes = self.cooccurrence.context_scores(context)
        supported: Dict[int, float] = {}
        for item, score in votes.items():
            support = 0.0
            for source in context.item_indices:
                support = max(
                    support,
                    self.cooccurrence.counts.co_viewed(source).get(item, 0.0),
                )
            if support >= self.min_support:
                supported[item] = score
        return supported

    def source_of(self, context: UserContext, item_index: int) -> str:
        """Which component is responsible for recommending this item.

        "cooccurrence" when the item carries well-supported votes for this
        context (the head regime), "factorization" otherwise (the tail).
        """
        return (
            "cooccurrence"
            if int(item_index) in self._supported_votes(context)
            else "factorization"
        )
