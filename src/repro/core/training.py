"""The training pipeline: Train(), Hogwild threading, cluster execution.

Paper section IV-B: training is a MapReduce whose map phase calls a
``Train()`` function per config record.  The design points reproduced:

* **Train()** reads the config, trains, evaluates on the holdout, and
  emits an output config record with goodness metrics.
* **Random permutation** of config records balances worker load
  (handled by the sweep; the pipeline preserves input order).
* **One retailer per machine, many threads** — instead of packing
  multiple map tasks (and models) per machine, each task trains a single
  model with Hogwild-style lock-free threads, so memory is bounded by one
  model and the already-allocated memory is kept busy.
* **Time-interval checkpointing** against the simulated clock.
* **Per-cell job splitting** sized by free capacity.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.cell import Cluster
from repro.cluster.cost import CostLedger, ResourcePricing
from repro.cluster.machine import Priority, VMRequest
from repro.cluster.preemption import PreemptionModel
from repro.core.checkpoint import (
    CheckpointFaultPlan,
    CheckpointManager,
    CheckpointStorage,
)
from repro.core.config import ConfigRecord, OutputConfigRecord
from repro.core.recovery import CrashPlan
from repro.core.registry import ModelRegistry, TrainedModel
from repro.data.datasets import RetailerDataset
from repro.evaluation.evaluator import HoldoutEvaluator
from repro.exceptions import ConfigError, DataError, SigmundError
from repro.fleet.tasks import (
    CHECKPOINT_EVENT,
    CRASH_CHECK_EVENT,
    DISCARD_EVENT,
    TrainTaskResult,
    TrainTaskSpec,
    rebuild_trained_model,
    run_train_task,
)
from repro.mapreduce.runtime import (
    SKIP_RECORD,
    FaultPlan,
    JobStats,
    MapReduceJob,
    MapReduceRuntime,
    RemoteMapSpec,
)
from repro.mapreduce.splits import uniform_splits
from repro.models.bpr import BPRModel
from repro.models.negatives import (
    CompositeNegativeSampler,
    NegativeSampler,
    UniformNegativeSampler,
)
from repro.models.trainer import BPRTrainer, TrainingReport
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracing import NULL_TRACER
from repro.rng import derive_seed, derive_worker_seed

#: Buckets for per-config simulated training seconds (FAST test configs
#: land in the first cells, paper-scale retailers in the hour-range ones).
TRAIN_SECONDS_BUCKETS = (1.0, 10.0, 60.0, 300.0, 1800.0, 7200.0, 43200.0)


@dataclass(frozen=True)
class TrainerSettings:
    """Knobs shared by every Train() invocation in one pipeline run."""

    max_epochs_full: int = 12
    max_epochs_incremental: int = 4
    convergence_tol: float = 1e-3
    patience: int = 2
    #: Simulated seconds of single-thread compute per SGD step.
    seconds_per_sgd_step: float = 2e-4
    checkpoint_interval_seconds: float = 300.0
    #: "taxonomy" enables the composite sampler; "uniform" is cheapest.
    sampler: str = "taxonomy"
    n_threads: int = 4
    #: Per-extra-thread efficiency of Hogwild scaling (1.0 = perfectly linear).
    thread_efficiency: float = 0.85
    #: SGD mini-batch size: 1 runs the scalar reference loop, larger values
    #: run the vectorized batch path (same regularization/weighting
    #: semantics; see BPRModel.sgd_step_batch).
    batch_size: int = 1

    def __post_init__(self) -> None:
        if self.n_threads < 1:
            raise ConfigError("n_threads must be >= 1")
        if self.sampler not in ("taxonomy", "uniform"):
            raise ConfigError(f"unknown sampler {self.sampler!r}")
        if self.batch_size < 1:
            raise ConfigError("batch_size must be >= 1")

    def thread_speedup(self) -> float:
        """Effective speedup of ``n_threads`` Hogwild threads.

        Hogwild scaling is sub-linear (cache coherence, collision
        retries); a constant per-thread efficiency is the standard model.
        """
        if self.n_threads == 1:
            return 1.0
        return 1.0 + (self.n_threads - 1) * self.thread_efficiency


def estimate_model_memory_gb(config: ConfigRecord, dataset: RetailerDataset) -> float:
    """Approximate resident size of one training task, in GB.

    Two float64 embedding tables (item + context) of ``n_items x F``, the
    feature tables (bounded by the item tables), Adagrad state of equal
    size, plus the in-memory training examples.  The paper's "dynamically
    sized virtual machine" uses exactly this kind of estimate: small
    retailers get small VMs, the largest get most of a machine.
    """
    factors = config.params.n_factors
    embedding_bytes = 2 * dataset.n_items * factors * 8
    feature_bytes = embedding_bytes  # taxonomy/brand/price + bias, bounded
    optimizer_bytes = embedding_bytes + feature_bytes
    example_bytes = dataset.n_train_interactions * 400  # contexts + events
    total = embedding_bytes + feature_bytes + optimizer_bytes + example_bytes
    overhead_gb = 0.5  # interpreter + buffers
    return overhead_gb + total / (1024.0 ** 3)


def checkpoint_key(config: ConfigRecord) -> str:
    """Checkpoint namespace for one Train() invocation.

    Includes the day: config keys are re-issued daily, and a leftover
    checkpoint from an earlier day (e.g. a config that dead-lettered
    mid-training) must never be mistaken for this run's resume point.
    """
    return f"day{config.day}/{config.key}"


def _make_sampler(
    settings: TrainerSettings, model: BPRModel, dataset: RetailerDataset
) -> NegativeSampler:
    if settings.sampler == "uniform":
        return UniformNegativeSampler(model.n_items)
    return CompositeNegativeSampler(
        model.n_items, taxonomy=dataset.taxonomy, model=model
    )


def _record_train_metrics(metrics, output: OutputConfigRecord) -> None:
    """Fold one Train() invocation into a metrics registry.

    Recorded from the output record's *absolute* totals (restored epochs
    included), so a run resumed from a checkpoint reports the same
    numbers an uninterrupted run would — the invariant the crash-parity
    suite asserts.
    """
    retailer = output.retailer_id
    metrics.counter("train_epochs_total", retailer=retailer).inc(
        output.epochs_run
    )
    metrics.counter("train_sgd_steps_total", retailer=retailer).inc(
        output.sgd_steps
    )
    metrics.counter("train_seconds_total", retailer=retailer).inc(
        output.train_seconds
    )
    metrics.counter(
        "train_configs_total", retailer=retailer, outcome="trained"
    ).inc()
    metrics.histogram(
        "train_config_seconds", TRAIN_SECONDS_BUCKETS, retailer=retailer
    ).observe(output.train_seconds)


def train_config(
    config: ConfigRecord,
    dataset: RetailerDataset,
    settings: TrainerSettings = TrainerSettings(),
    warm_model: Optional[BPRModel] = None,
    checkpoints: Optional[CheckpointManager] = None,
    start_time: float = 0.0,
    crash_plan: Optional["CrashPlan"] = None,
    metrics=NULL_METRICS,
    warm_state: Optional[Tuple[str, Dict[str, np.ndarray]]] = None,
) -> Tuple[BPRModel, OutputConfigRecord]:
    """The paper's Train(): config record in, model + output record out.

    Warm-started (incremental) runs copy yesterday's parameters, reset
    Adagrad norms, and run fewer epochs — "incremental runs require much
    fewer iterations to converge" (section III-C3).  Checkpoints are
    written on the configured simulated-time interval as epochs complete.

    **Crash recovery**: if a valid checkpoint already exists under this
    config's key, a previous attempt was killed mid-training — the model
    restores from it and trains only the remaining epochs, so lost work
    is bounded by the checkpoint interval.  Checkpoints carry parameters
    only (paper IV-B3 checkpoints "the model learned"), so Adagrad norms
    are explicitly reset on restore, the same semantics as a warm start.
    A corrupt or missing checkpoint degrades to a clean cold start.

    ``config.model_kind == "wals"`` dispatches to the least-squares
    learner instead (paper section VI's drop-in substitute); WALS trains
    in one monolithic fit, so checkpointing does not apply to it.

    ``warm_state`` is the fleet-worker form of ``warm_model``: yesterday's
    parameters as a ``(model_kind, get_state())`` pair, because live model
    objects never cross the process boundary.  Same row-prefix copy and
    epoch-budget semantics.
    """
    if dataset.retailer_id != config.retailer_id:
        raise DataError(
            f"config {config.key} cannot train on {dataset.retailer_id!r} data"
        )
    if config.model_kind == "wals":
        return _train_wals_config(
            config, dataset, settings, warm_model, start_time, metrics, warm_state
        )
    model = BPRModel(dataset.catalog, dataset.taxonomy, config.params)
    warmed = False
    if warm_model is not None and isinstance(warm_model, BPRModel):
        model.warm_start_from(warm_model)
        warmed = True
    elif warm_state is not None and warm_state[0] == "bpr":
        model.warm_start_from_state(warm_state[1])
        warmed = True
    max_epochs = (
        settings.max_epochs_incremental
        if config.warm_start and warmed
        else settings.max_epochs_full
    )
    ckpt_key = checkpoint_key(config)
    start_epoch = 0
    if checkpoints is not None:
        resumed = checkpoints.try_restore(ckpt_key, model)
        if resumed is not None:
            model.optimizer.reset_norms()  # norms are not checkpointed
            start_epoch = resumed + 1
    trainer = BPRTrainer(
        model,
        dataset,
        sampler=_make_sampler(settings, model, dataset),
        max_epochs=max(0, max_epochs - start_epoch),
        convergence_tol=settings.convergence_tol,
        patience=settings.patience,
        batch_size=settings.batch_size,
        seed=derive_seed(config.params.seed, "trainer"),
    )
    report = TrainingReport()
    epoch_seconds = (
        trainer.n_examples
        * settings.seconds_per_sgd_step
        / settings.thread_speedup()
    )
    # Totals are *absolute*: epochs restored from a checkpoint count as
    # run (they were, before the crash), so a resumed Train() reports the
    # same epochs/steps/seconds as the uninterrupted run it replaces.
    report.epochs_run = start_epoch
    report.sgd_steps = start_epoch * trainer.n_examples
    simulated_now = start_time + start_epoch * epoch_seconds
    for epoch, loss in trainer.iter_epochs():
        absolute_epoch = start_epoch + epoch
        report.epochs_run = absolute_epoch + 1
        report.sgd_steps += trainer.n_examples
        report.epoch_losses.append(loss)
        simulated_now += epoch_seconds
        if checkpoints is not None:
            checkpoints.maybe_checkpoint(
                ckpt_key, model, simulated_now, absolute_epoch
            )
        if crash_plan is not None:
            crash_plan.check("train_epoch", f"{config.key}@e{absolute_epoch}")
    report.converged = trainer.converged
    if checkpoints is not None:
        checkpoints.discard(ckpt_key)

    evaluator = HoldoutEvaluator(dataset, seed=derive_seed(config.params.seed, "eval"))
    result = evaluator.evaluate(model)
    output = OutputConfigRecord(
        config=config,
        metrics=dict(result.metrics),
        epochs_run=report.epochs_run,
        sgd_steps=report.sgd_steps,
        train_seconds=simulated_now - start_time,
    )
    _record_train_metrics(metrics, output)
    return model, output


def _train_wals_config(
    config: ConfigRecord,
    dataset: RetailerDataset,
    settings: TrainerSettings,
    warm_model,
    start_time: float,
    metrics=NULL_METRICS,
    warm_state=None,
):
    """Train() for the least-squares substitute (paper section VI).

    Reuses the config's factor count, item regularization, and seed;
    iteration count maps from the epoch budget.
    """
    from repro.models.wals import WALSHyperParams, WALSModel

    params = config.params
    warmed = (warm_model is not None and isinstance(warm_model, WALSModel)) or (
        warm_state is not None and warm_state[0] == "wals"
    )
    iterations = (
        settings.max_epochs_incremental
        if config.warm_start and warmed
        else settings.max_epochs_full
    )
    model = WALSModel(
        dataset.n_items,
        WALSHyperParams(
            n_factors=params.n_factors,
            regularization=max(params.reg_item, 1e-4),
            n_iterations=max(1, iterations),
            seed=params.seed,
        ),
        retailer_id=dataset.retailer_id,
    )
    if warm_model is not None and isinstance(warm_model, WALSModel):
        model.warm_start_from(warm_model)
    elif warm_state is not None and warm_state[0] == "wals":
        model.warm_start_from_state(warm_state[1])
    model.fit(dataset.train)
    # One ALS iteration visits every observation once on each side.
    steps = 2 * dataset.n_train_interactions * model.params.n_iterations
    simulated_seconds = (
        steps * settings.seconds_per_sgd_step / settings.thread_speedup()
    )
    evaluator = HoldoutEvaluator(dataset, seed=derive_seed(params.seed, "eval"))
    result = evaluator.evaluate(model)
    output = OutputConfigRecord(
        config=config,
        metrics=dict(result.metrics),
        epochs_run=model.params.n_iterations,
        sgd_steps=steps,
        train_seconds=simulated_seconds,
    )
    _record_train_metrics(metrics, output)
    return model, output


class HogwildTrainer:
    """Lock-free multi-threaded training on shared parameter arrays.

    Each thread trains on its own shard of the examples, updating the one
    shared model without locks (Niu et al. [26]).  Updates race benignly:
    embedding collisions are rare because each example touches only a few
    rows.  (CPython's GIL limits the *real* wall-clock speedup here; the
    cluster simulator models the speedup for cost experiments — the point
    of this class is the correctness property, exercised by tests.)
    """

    def __init__(
        self,
        model: BPRModel,
        dataset: RetailerDataset,
        n_threads: int = 4,
        max_epochs: int = 5,
        seed: int = 0,
    ):
        if n_threads < 1:
            raise ConfigError("n_threads must be >= 1")
        self.model = model
        self.n_threads = n_threads
        self.max_epochs = max_epochs
        # One single-threaded trainer builds the shared example list.
        self._base = BPRTrainer(
            model, dataset, max_epochs=max_epochs, seed=seed
        )
        self._seed = seed

    @property
    def n_examples(self) -> int:
        return self._base.n_examples

    def train(self) -> TrainingReport:
        """Run ``max_epochs`` Hogwild epochs; returns per-epoch mean losses."""
        examples = self._base.examples
        report = TrainingReport()
        if not examples:
            return report
        sampler = self._base.sampler
        model = self.model
        for epoch in range(self.max_epochs):
            shard_losses = [0.0] * self.n_threads
            shard_counts = [0] * self.n_threads
            threads = []

            def work(thread_id: int) -> None:
                # Lane seed from logical (process, thread) indices — the
                # namespaced stream keeps thread lanes disjoint from the
                # fleet's process lanes and from the trainer/eval streams.
                rng = np.random.default_rng(
                    derive_worker_seed(self._seed, 0, thread_id, "hogwild", epoch)
                )
                shard = examples[thread_id :: self.n_threads]
                order = rng.permutation(len(shard))
                total = 0.0
                for position in order:
                    example = shard[position]
                    negative = example.negative
                    if negative is None:
                        negative = sampler.sample(example.context, example.positive, rng)
                    total += model.sgd_step(example.context, example.positive, negative)
                shard_losses[thread_id] = total
                shard_counts[thread_id] = len(shard)

            for thread_id in range(self.n_threads):
                thread = threading.Thread(target=work, args=(thread_id,))
                threads.append(thread)
                thread.start()
            for thread in threads:
                thread.join()
            report.epochs_run = epoch + 1
            report.sgd_steps += sum(shard_counts)
            report.epoch_losses.append(sum(shard_losses) / max(1, sum(shard_counts)))
        return report


@dataclass(frozen=True)
class ConfigFailure:
    """One config record the sweep gave up on (dead-lettered or crashed)."""

    config: ConfigRecord
    error: str
    attempts: int = 1

    @property
    def retailer_id(self) -> str:
        return self.config.retailer_id


@dataclass
class PipelineStats:
    """Aggregated execution statistics of one training pipeline run."""

    configs_trained: int = 0
    configs_failed: int = 0
    total_cost: float = 0.0
    makespan_seconds: float = 0.0
    preemptions: int = 0
    per_cell: Dict[str, JobStats] = field(default_factory=dict)
    #: Every config that failed, with the error that killed it.
    failures: List[ConfigFailure] = field(default_factory=list)
    #: Retailers for which *no* config trained successfully this run —
    #: the ones the service must degrade to yesterday's models for.
    failed_retailers: List[str] = field(default_factory=list)


class TrainingPipeline:
    """Runs a sweep's config records as per-cell MapReduce jobs.

    The pipeline (1) splits records across cells proportionally to free
    capacity, (2) runs one MapReduce per cell whose mapper is
    :func:`train_config`, (3) publishes every *successfully* trained
    model to the registry, and (4) charges all simulated compute to the
    ledger.

    Failure isolation: jobs run under the ``skip_record`` policy by
    default, so one config's crash (bad data, injected fault, task out of
    attempts) dead-letters that config instead of aborting the sweep —
    the failure lands in :attr:`PipelineStats.failures`, and retailers
    with no surviving config in :attr:`PipelineStats.failed_retailers`.
    """

    def __init__(
        self,
        cluster: Cluster,
        registry: ModelRegistry,
        settings: TrainerSettings = TrainerSettings(),
        pricing: ResourcePricing = ResourcePricing(),
        preemption_model: PreemptionModel = PreemptionModel(),
        ledger: Optional[CostLedger] = None,
        seed: int = 0,
        fault_plan: Optional[FaultPlan] = None,
        failure_policy: str = SKIP_RECORD,
        checkpoint_storage: Optional["CheckpointStorage"] = None,
        checkpoint_fault_plan: Optional["CheckpointFaultPlan"] = None,
        crash_plan: Optional["CrashPlan"] = None,
        executor=None,
    ):
        self.cluster = cluster
        self.registry = registry
        self.settings = settings
        self.ledger = ledger or CostLedger(pricing)
        self.failure_policy = failure_policy
        #: A :class:`repro.fleet.executor.Executor` (or None for the
        #: serial reference path).  With an executor, every cell job's
        #: Train() calls fan out over its workers; coordinator-side
        #: semantics (checkpoints, crash plans, billing, metrics) are
        #: replayed in record order, keeping outputs byte-identical.
        self.executor = executor
        self.runtime = MapReduceRuntime(
            pricing=pricing,
            preemption_model=preemption_model,
            ledger=self.ledger,
            seed=seed,
            fault_plan=fault_plan,
            executor=executor,
        )
        self.checkpoints = CheckpointManager(
            settings.checkpoint_interval_seconds,
            storage=checkpoint_storage,
            fault_plan=checkpoint_fault_plan,
        )
        self.crash_plan = crash_plan
        self._seed = seed

    def run(
        self,
        configs: Sequence[ConfigRecord],
        datasets: Dict[str, RetailerDataset],
        day: int = 0,
        metrics=NULL_METRICS,
        tracer=NULL_TRACER,
    ) -> Tuple[List[OutputConfigRecord], PipelineStats]:
        """Train every config record; returns outputs + execution stats.

        A failed config (or a whole failed cell job) is reported on the
        stats instead of aborting the sweep: the remaining cells and
        configs still train and publish.

        ``metrics`` collects this run's throughput/cost series (per
        retailer via Train(), per cell via the job stats); everything
        recorded here derives deterministically from the run's inputs,
        which is what lets the service seal a crashed-and-recovered
        day's metrics bit-identical to an uninterrupted one.
        """
        stats = PipelineStats()
        if not configs:
            return [], stats
        shares = self.cluster.split_by_capacity(len(configs))
        outputs: List[OutputConfigRecord] = []
        cursor = 0
        ordered_cells = sorted(shares, key=lambda name: -shares[name])
        for cell_name in ordered_cells:
            share = shares[cell_name]
            if share <= 0:
                continue
            chunk = list(configs[cursor : cursor + share])
            cursor += share
            if not chunk:
                continue
            try:
                job_outputs, job_stats = self._run_cell_job(
                    cell_name, chunk, datasets, day, metrics, tracer
                )
            except SigmundError as exc:
                # The whole cell job died (capacity, isolation, a crash
                # under fail_job policy): every config it held fails, but
                # the other cells' sweeps continue.
                stats.failures.extend(
                    ConfigFailure(config, f"cell {cell_name!r}: {exc}")
                    for config in chunk
                )
                continue
            outputs.extend(job_outputs)
            stats.failures.extend(
                ConfigFailure(
                    letter.record, str(letter.exception), letter.attempts
                )
                for letter in job_stats.dead_letters
                if isinstance(letter.record, ConfigRecord)
            )
            stats.per_cell[cell_name] = job_stats
            stats.total_cost += job_stats.cost
            stats.preemptions += job_stats.preemptions
            stats.makespan_seconds = max(
                stats.makespan_seconds, job_stats.makespan_seconds
            )
        stats.configs_trained = len(outputs)
        stats.configs_failed = len(stats.failures)
        succeeded = {output.retailer_id for output in outputs}
        stats.failed_retailers = sorted(
            {failure.retailer_id for failure in stats.failures} - succeeded
        )
        for failure in stats.failures:
            metrics.counter(
                "train_configs_total",
                retailer=failure.retailer_id,
                outcome="failed",
            ).inc()
        return outputs, stats

    def _run_cell_job(
        self,
        cell_name: str,
        configs: List[ConfigRecord],
        datasets: Dict[str, RetailerDataset],
        day: int,
        metrics=NULL_METRICS,
        tracer=NULL_TRACER,
    ) -> Tuple[List[OutputConfigRecord], JobStats]:
        settings = self.settings
        registry = self.registry

        def mapper(record: object):
            config: ConfigRecord = record  # type: ignore[assignment]
            dataset = datasets[config.retailer_id]
            registry.assert_isolated(config.retailer_id, dataset.retailer_id)
            warm_model = self._warm_model(config)
            model, output = train_config(
                config,
                dataset,
                settings=settings,
                warm_model=warm_model,
                checkpoints=self.checkpoints,
                crash_plan=self.crash_plan,
                metrics=metrics,
            )
            # Publication happens after the job, from surviving outputs
            # only — a config on a task that later fails permanently must
            # not leave a half-published model in the registry.
            yield config.retailer_id, TrainedModel(model=model, output=output)

        def record_cost(record: object) -> float:
            config: ConfigRecord = record  # type: ignore[assignment]
            dataset = datasets[config.retailer_id]
            epochs = (
                settings.max_epochs_incremental
                if config.warm_start
                else settings.max_epochs_full
            )
            # Examples scale with interactions; cost is per-thread-divided.
            steps = dataset.n_train_interactions * epochs
            return steps * settings.seconds_per_sgd_step / settings.thread_speedup()

        def task_payload(record: object) -> TrainTaskSpec:
            """Coordinator side of a fleet Train(): resolve everything a
            worker cannot reach (registry, checkpoint storage) into a
            picklable spec."""
            config: ConfigRecord = record  # type: ignore[assignment]
            dataset = datasets[config.retailer_id]
            registry.assert_isolated(config.retailer_id, dataset.retailer_id)
            warm_model = self._warm_model(config)
            warm_state = None
            if warm_model is not None:
                kind = "bpr" if isinstance(warm_model, BPRModel) else "wals"
                warm_state = (kind, warm_model.get_state())
            resume = None
            if config.model_kind != "wals":
                resume = self.checkpoints.try_restore_state(
                    checkpoint_key(config)
                )
            return TrainTaskSpec(
                config=config,
                dataset=dataset,
                settings=settings,
                warm_state=warm_state,
                resume=resume,
                record_crash_checks=self.crash_plan is not None,
                metrics_enabled=bool(getattr(metrics, "enabled", False)),
            )

        def task_collect(record: object, result: TrainTaskResult):
            """Coordinator side of a fleet result: replay the worker's
            recorded side effects in record order (checkpoint durability,
            crash-plan counters, metrics), then rebuild the model."""
            config: ConfigRecord = record  # type: ignore[assignment]
            ckpt_key = checkpoint_key(config)
            for event in result.events:
                kind = event[0]
                if kind == CHECKPOINT_EVENT:
                    _, epoch, now, state = event
                    self.checkpoints.write_state(ckpt_key, state, now, epoch)
                elif kind == DISCARD_EVENT:
                    self.checkpoints.discard(ckpt_key)
                elif kind == CRASH_CHECK_EVENT and self.crash_plan is not None:
                    # May raise SimulatedCrash — exactly where the serial
                    # path would have, with identical plan counters.
                    self.crash_plan.check(event[1], event[2])
            if result.metrics is not None:
                metrics.fold(result.metrics)
            model = rebuild_trained_model(
                config, datasets[config.retailer_id], result
            )
            yield config.retailer_id, TrainedModel(model=model, output=result.output)

        cell = self.cluster.cell(cell_name)
        workers = max(1, cell.free_cpus // settings.n_threads)
        # Dynamically sized VMs (section IV-B2): the job's memory ask is
        # driven by the largest model it will train, rounded up to the
        # next power-of-two tier like real machine shapes.
        peak_gb = max(
            estimate_model_memory_gb(config, datasets[config.retailer_id])
            for config in configs
        )
        memory_gb = float(
            max(2.0, 2.0 ** float(np.ceil(np.log2(max(peak_gb, 1e-9)))))
        )
        job = MapReduceJob(
            name=f"train/day{day}/{cell_name}",
            mapper=mapper,
            n_workers=min(workers, len(configs)),
            vm_request=VMRequest(
                cpus=settings.n_threads,
                memory_gb=memory_gb,
                priority=Priority.PREEMPTIBLE,
            ),
            record_cost_fn=record_cost,
            failure_policy=self.failure_policy,
            remote=RemoteMapSpec(
                task_fn=run_train_task,
                payload_fn=task_payload,
                collect_fn=task_collect,
            ),
        )
        # One config record per split: a map task trains exactly one model,
        # so no machine ever holds two retailers' models at once.
        splits = uniform_splits(configs, len(configs))
        raw_outputs, job_stats = self.runtime.run(
            job, splits, metrics=metrics, tracer=tracer
        )
        metrics.counter(
            "train_billed_vm_seconds_total", cell=cell_name
        ).inc(job_stats.billed_vm_seconds)
        metrics.counter(
            "preemptions_total", phase="train", cell=cell_name
        ).inc(job_stats.preemptions)
        metrics.counter(
            "dead_letters_total", phase="train", cell=cell_name
        ).inc(len(job_stats.dead_letters))
        metrics.counter(
            "speculative_copies_total", phase="train", cell=cell_name
        ).inc(job_stats.speculative_copies)
        metrics.gauge("train_makespan_seconds", cell=cell_name).set(
            job_stats.makespan_seconds
        )
        self._attribute_chargebacks(
            configs, record_cost, job_stats.cost, metrics
        )
        outputs: List[OutputConfigRecord] = []
        for entry in _trained_models(raw_outputs):
            registry.publish(entry)
            outputs.append(entry.output)
        return outputs, job_stats

    def _attribute_chargebacks(
        self,
        configs: List[ConfigRecord],
        record_cost,
        job_cost: float,
        metrics=NULL_METRICS,
    ) -> None:
        """Split one job's bill across retailers ∝ estimated work (§V).

        Sigmund chose not to *bill* retailers, but the attribution view is
        cheap to keep and answers "who consumes the fleet" questions.
        """
        estimates = {
            config.key: float(record_cost(config)) for config in configs
        }
        total = sum(estimates.values())
        if total <= 0 or job_cost <= 0:
            return
        for config in configs:
            share = estimates[config.key] / total
            self.ledger.attribute(
                f"chargeback/{config.retailer_id}", job_cost * share
            )
            metrics.counter(
                "train_cost_total", retailer=config.retailer_id
            ).inc(job_cost * share)

    def _warm_model(self, config: ConfigRecord) -> Optional[BPRModel]:
        if not config.warm_start or not self.registry.has_models(config.retailer_id):
            return None
        try:
            return self.registry.get(config.retailer_id, config.model_number).model
        except Exception:
            return None


def _trained_models(outputs: List[object]) -> List[TrainedModel]:
    entries = []
    for item in outputs:
        if isinstance(item, TrainedModel):
            entries.append(item)
        else:  # (retailer_id, entry) pairs from a non-identity reducer
            entries.append(item[1])
    return entries
