"""Per-retailer grid search specification (paper section III-C1).

The grid crosses number of factors (scaled to the retailer's catalog
size), learning rates, separate item/context regularizations, feature
switches, and RNG seeds.  Two properties from the paper are reproduced
carefully:

* **Size-aware factor range** — "to account for the wide range of
  retailer sizes we experiment between 5 to 200 dimensions": tiny
  retailers never get 200-factor models.
* **Feature selection by coverage** — "in many retailers we found the
  brand coverage to be less than 10%, which makes it detrimental to add
  it in as a feature": switches for features with low coverage are forced
  off before the cross product.
* **Budget cap** — the cross product is capped (paper: "we typically
  restrict to around a hundred for each retailer") by deterministic
  subsampling.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.config import ConfigRecord
from repro.data.datasets import RetailerDataset
from repro.exceptions import ConfigError
from repro.models.bpr import BPRHyperParams
from repro.obs.metrics import NULL_METRICS
from repro.rng import derive_seed, make_rng

#: Features whose attribute coverage falls below this are never used.
MIN_FEATURE_COVERAGE = 0.10

#: The paper's factor-count search range.
FACTOR_RANGE = (5, 200)


@dataclass(frozen=True)
class GridSpec:
    """The axes of one retailer's hyper-parameter grid."""

    n_factors: Tuple[int, ...] = (5, 10, 20, 50, 100, 200)
    learning_rates: Tuple[float, ...] = (0.02, 0.05, 0.1)
    reg_items: Tuple[float, ...] = (0.001, 0.01, 0.1)
    reg_contexts: Tuple[float, ...] = (0.001, 0.01)
    use_taxonomy: Tuple[bool, ...] = (True, False)
    use_brand: Tuple[bool, ...] = (True, False)
    use_price: Tuple[bool, ...] = (True, False)
    context_decays: Tuple[float, ...] = (0.85,)
    optimizers: Tuple[str, ...] = ("adagrad",)
    #: Learner families to sweep: "bpr" and/or "wals" (paper section VI).
    model_kinds: Tuple[str, ...] = ("bpr",)
    seeds: Tuple[int, ...] = (0,)
    #: Cap on the number of configs per retailer (paper: ~100).
    max_configs: int = 100

    def __post_init__(self) -> None:
        if self.max_configs < 1:
            raise ConfigError("max_configs must be >= 1")
        if not self.n_factors:
            raise ConfigError("grid needs at least one factor count")

    @staticmethod
    def small() -> "GridSpec":
        """A compact grid for tests and fast experiments."""
        return GridSpec(
            n_factors=(8, 16),
            learning_rates=(0.05,),
            reg_items=(0.01,),
            reg_contexts=(0.01,),
            use_taxonomy=(True, False),
            use_brand=(True,),
            use_price=(True,),
            max_configs=16,
        )


def applicable_factor_counts(
    grid: GridSpec, n_items: int
) -> Tuple[int, ...]:
    """Drop factor counts that exceed what the catalog can support.

    A model with more factors than items is pure overfitting surface;
    Sigmund's size-aware grid keeps ``F`` meaningfully below the catalog
    size (while always keeping at least the smallest option).
    """
    viable = tuple(f for f in grid.n_factors if f <= max(FACTOR_RANGE[0], n_items // 2))
    return viable or (min(grid.n_factors),)


def feature_switch_axes(
    grid: GridSpec, dataset: RetailerDataset
) -> Tuple[Tuple[bool, ...], Tuple[bool, ...], Tuple[bool, ...]]:
    """Per-retailer feature selection: force low-coverage features off."""
    brand_axis = grid.use_brand
    if dataset.catalog.brand_coverage() < MIN_FEATURE_COVERAGE:
        brand_axis = (False,)
    price_axis = grid.use_price
    if dataset.catalog.price_coverage() < MIN_FEATURE_COVERAGE:
        price_axis = (False,)
    taxonomy_axis = grid.use_taxonomy
    if dataset.taxonomy.num_items == 0:
        taxonomy_axis = (False,)
    return taxonomy_axis, brand_axis, price_axis


def generate_configs(
    dataset: RetailerDataset,
    grid: GridSpec = GridSpec(),
    day: int = 0,
    base_seed: int = 0,
    metrics=NULL_METRICS,
) -> List[ConfigRecord]:
    """The full cross product for one retailer, deduplicated and capped.

    Deterministic: the same dataset + grid + seed always yields the same
    configs with the same model numbers, which is what lets incremental
    sweeps refer back to yesterday's model numbers.
    """
    taxonomy_axis, brand_axis, price_axis = feature_switch_axes(grid, dataset)
    factor_axis = applicable_factor_counts(grid, dataset.n_items)

    seen = set()
    combos = []
    for values in itertools.product(
        factor_axis,
        grid.learning_rates,
        grid.reg_items,
        grid.reg_contexts,
        taxonomy_axis,
        brand_axis,
        price_axis,
        grid.context_decays,
        grid.optimizers,
        grid.model_kinds,
        grid.seeds,
    ):
        if values in seen:
            continue
        seen.add(values)
        combos.append(values)

    if len(combos) > grid.max_configs:
        # Deterministic subsample, stable per retailer.
        rng = make_rng(derive_seed(base_seed, dataset.retailer_id, "grid"))
        keep = sorted(rng.choice(len(combos), size=grid.max_configs, replace=False))
        combos = [combos[int(i)] for i in keep]

    records = []
    for model_number, values in enumerate(combos):
        (
            n_factors,
            learning_rate,
            reg_item,
            reg_context,
            use_taxonomy,
            use_brand,
            use_price,
            context_decay,
            optimizer,
            model_kind,
            seed,
        ) = values
        params = BPRHyperParams(
            n_factors=n_factors,
            learning_rate=learning_rate,
            reg_item=reg_item,
            reg_context=reg_context,
            use_taxonomy=use_taxonomy,
            use_brand=use_brand,
            use_price=use_price,
            context_decay=context_decay,
            optimizer=optimizer,
            seed=derive_seed(base_seed, dataset.retailer_id, model_number, seed),
        )
        records.append(
            ConfigRecord(
                retailer_id=dataset.retailer_id,
                model_number=model_number,
                params=params,
                day=day,
                model_kind=model_kind,
            )
        )
    metrics.counter(
        "grid_configs_generated_total", retailer=dataset.retailer_id
    ).inc(len(records))
    return records
