"""The offline inference pipeline (paper section IV-C).

For each retailer the pipeline takes the best model from the registry,
walks every item in the inventory, selects candidates (section III-D1),
scores them, and materializes the top-N view-based (substitutes) and
purchase-based (complements) recommendations per item.

Systems properties reproduced:

* the input is the union of all retailers' items, **organized so one
  retailer's records are contiguous** — the mapper reloads a model only
  at retailer boundaries (model loads are counted and reported),
* each MapReduce record is a contiguous **block of one retailer's
  items** (``(retailer_id, (item, item, ...))``), so a record amortizes
  one batched candidate-selection + scoring call (one ``U @ V_eff.T``
  GEMM) instead of paying Python overhead per item; a dead-lettered
  block degrades its retailer exactly as a dead-lettered item used to,
* retailers are partitioned across map workers by **greedy first-fit bin
  packing weighted by inventory size** (cost is linear in items thanks to
  candidate capping),
* work is split across cells by free capacity, like training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.cell import Cluster
from repro.cluster.cost import CostLedger, ResourcePricing
from repro.cluster.machine import Priority, VMRequest
from repro.cluster.preemption import PreemptionModel
from repro.cooccurrence.counts import CoOccurrenceCounts
from repro.core.binpack import first_fit_decreasing
from repro.core.candidates import CandidateSelector, RepurchaseDetector
from repro.core.recovery import CrashPlan
from repro.core.registry import ModelRegistry
from repro.data.datasets import RetailerDataset
from repro.data.events import EventType
from repro.data.sessions import UserContext
from repro.exceptions import ModelNotTrainedError, RetrievalError, SigmundError
from repro.mapreduce.runtime import (
    SKIP_RECORD,
    FaultPlan,
    JobStats,
    MapReduceJob,
    MapReduceRuntime,
)
from repro.mapreduce.splits import InputSplit
from repro.models.base import Recommender, ScoredItem
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracing import NULL_TRACER
from repro.retrieval.backend import ModelRetrieval, ann_for_model
from repro.retrieval.harness import resolve_ann_threshold
from repro.retrieval.ivf import IVFConfig

#: Top-N recommendations materialized per item per surface.
DEFAULT_TOP_N = 10

#: Items per inference block (one MapReduce record): large enough to
#: amortize one batched scoring call, small enough that a poisoned block
#: dead-letters without dragging the whole retailer through the mapper.
DEFAULT_BLOCK_SIZE = 128


def _item_blocks(n_items: int, block_size: int) -> List[Tuple[int, ...]]:
    """Contiguous item-index blocks covering ``range(n_items)``."""
    return [
        tuple(range(start, min(start + block_size, n_items)))
        for start in range(0, n_items, block_size)
    ]


@dataclass
class InferenceResult:
    """Materialized recommendations for one retailer."""

    retailer_id: str
    model_number: int
    view_recs: Dict[int, List[ScoredItem]] = field(default_factory=dict)
    purchase_recs: Dict[int, List[ScoredItem]] = field(default_factory=dict)

    @property
    def items_covered(self) -> int:
        """Items with at least one view-based recommendation."""
        return sum(1 for recs in self.view_recs.values() if recs)

    def coverage(self, n_items: int) -> float:
        return self.items_covered / n_items if n_items else 0.0


@dataclass
class InferenceStats:
    """Execution statistics across all cells for one inference run."""

    items_processed: int = 0
    model_loads: int = 0
    total_cost: float = 0.0
    makespan_seconds: float = 0.0
    preemptions: int = 0
    records_skipped: int = 0
    per_cell: Dict[str, JobStats] = field(default_factory=dict)
    #: Retailers whose inference failed (stale model, crashed mapper, or
    #: a dead cell job); the service serves them yesterday's tables.
    failed_retailers: List[str] = field(default_factory=list)
    #: Human-readable reason per failed retailer.
    failure_reasons: Dict[str, str] = field(default_factory=dict)


class InferencePipeline:
    """Materializes item-item recommendations for every retailer daily."""

    def __init__(
        self,
        cluster: Cluster,
        registry: ModelRegistry,
        top_n: int = DEFAULT_TOP_N,
        pricing: ResourcePricing = ResourcePricing(),
        preemption_model: PreemptionModel = PreemptionModel(),
        ledger: Optional[CostLedger] = None,
        per_candidate_seconds: float = 2e-5,
        model_load_seconds: float = 5.0,
        workers_per_cell: int = 8,
        seed: int = 0,
        fault_plan: Optional[FaultPlan] = None,
        failure_policy: str = SKIP_RECORD,
        block_size: int = DEFAULT_BLOCK_SIZE,
        crash_plan: Optional["CrashPlan"] = None,
        retrieval_threshold: Optional[int] = None,
        retrieval_config: Optional[IVFConfig] = None,
    ):
        self.cluster = cluster
        self.registry = registry
        self.top_n = top_n
        self.ledger = ledger or CostLedger(pricing)
        self.failure_policy = failure_policy
        self.runtime = MapReduceRuntime(
            pricing=pricing,
            preemption_model=preemption_model,
            ledger=self.ledger,
            seed=seed,
            fault_plan=fault_plan,
        )
        self.per_candidate_seconds = per_candidate_seconds
        self.model_load_seconds = model_load_seconds
        self.workers_per_cell = workers_per_cell
        if block_size < 1:
            raise SigmundError("inference block_size must be >= 1")
        self.block_size = block_size
        self.crash_plan = crash_plan
        #: Process-level registry (selector-cache hits/misses).  Distinct
        #: from the per-run ``metrics`` argument of :meth:`run_cell`:
        #: cache behaviour depends on what already ran in this process,
        #: so these counters are *not* part of the crash-parity contract.
        self.process_metrics = NULL_METRICS
        #: Candidate selectors reused across days: ``CoOccurrenceCounts``
        #: and ``RepurchaseDetector`` are deterministic functions of the
        #: training log, so as long as a retailer's dataset object is
        #: unchanged there is no reason to re-count every ``run()``.
        #: Keyed by retailer; entries pin the dataset they were built
        #: from and are invalidated when a different (or grown) dataset
        #: shows up.
        self._selector_cache: Dict[str, Tuple[RetailerDataset, int, CandidateSelector]] = {}
        #: Catalog size at which candidate selection switches from the
        #: taxonomy walk to ANN retrieval; default comes from the
        #: committed E26 bench via :func:`resolve_ann_threshold`.
        self.retrieval_threshold = (
            resolve_ann_threshold()
            if retrieval_threshold is None
            else retrieval_threshold
        )
        self.retrieval_config = retrieval_config or IVFConfig()
        #: ANN adapters built lazily per retailer when no published index
        #: is handed in, keyed by retailer and pinned to the model number
        #: they were built from.
        self._retrieval_cache: Dict[str, Tuple[int, ModelRetrieval]] = {}

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def plan(
        self, datasets: Dict[str, RetailerDataset]
    ) -> List[Tuple[str, List[str]]]:
        """Cell -> retailer-bin assignment for one day's inference.

        Split retailers across cells proportionally to free capacity,
        then bin-pack within each cell.  Cells are ordered by their
        capacity share and bins by total weight before pairing, so the
        heaviest retailer group lands on the cell with the most spare
        capacity instead of whatever dict insertion order yields.

        Exposed separately from :meth:`run` so the service layer can
        journal the assignment as *intent* before executing any cell: a
        recovery then re-runs only the incomplete cells with the
        original bins, rather than re-planning against a cluster whose
        free capacity has since changed.
        """
        for rid in list(self._selector_cache):
            if rid not in datasets:
                del self._selector_cache[rid]  # offboarded retailer
                self._retrieval_cache.pop(rid, None)
        ready = {
            retailer_id: dataset
            for retailer_id, dataset in datasets.items()
            if self.registry.has_models(retailer_id)
        }
        if not ready:
            return []
        weights = {rid: float(ds.n_items) for rid, ds in ready.items()}
        cell_shares = self.cluster.split_by_capacity(len(ready))
        cells = sorted(
            (name for name, share in cell_shares.items() if share > 0),
            key=lambda name: (-cell_shares[name], name),
        )
        cell_bins = first_fit_decreasing(weights, max(1, len(cells)))
        cell_bins.sort(key=lambda group: -sum(weights[rid] for rid in group))
        return [
            (cell_name, list(group))
            for cell_name, group in zip(cells, cell_bins)
            if group
        ]

    def run(
        self,
        datasets: Dict[str, RetailerDataset],
        day: int = 0,
        assignment: Optional[List[Tuple[str, List[str]]]] = None,
        metrics=NULL_METRICS,
        tracer=NULL_TRACER,
        retrieval: Optional[Dict[str, ModelRetrieval]] = None,
    ) -> Tuple[Dict[str, InferenceResult], InferenceStats]:
        """Run inference for every retailer with a trained model.

        ``assignment`` overrides the cell plan (see :meth:`plan`); the
        recovery path passes the journaled one.  ``retrieval`` maps
        retailer ids to pre-built ANN adapters (the service passes the
        day's published indexes); retailers not in the mapping fall back
        to the size-threshold switch.
        """
        stats = InferenceStats()
        if assignment is None:
            assignment = self.plan(datasets)
        results: Dict[str, InferenceResult] = {}
        failed: Dict[str, str] = {}
        for cell_name, retailer_group in assignment:
            if not retailer_group:
                continue
            group = {rid: datasets[rid] for rid in retailer_group}
            try:
                cell_results, job_stats, loads, cell_failed = self.run_cell(
                    cell_name,
                    group,
                    day,
                    metrics=metrics,
                    tracer=tracer,
                    retrieval=retrieval,
                )
            except SigmundError as exc:
                # The whole cell job died; its retailers degrade, the
                # other cells still publish fresh tables.
                failed.update(
                    {rid: f"cell {cell_name!r}: {exc}" for rid in group}
                )
                continue
            results.update(cell_results)
            failed.update(cell_failed)
            self.fold_cell(stats, cell_name, job_stats, loads)
        self.finalize_stats(stats, results, failed)
        return results, stats

    @staticmethod
    def fold_cell(
        stats: InferenceStats, cell_name: str, job_stats: JobStats, loads: int
    ) -> None:
        """Fold one completed cell job into the run-wide stats."""
        stats.per_cell[cell_name] = job_stats
        stats.total_cost += job_stats.cost
        stats.preemptions += job_stats.preemptions
        stats.model_loads += loads
        stats.records_skipped += job_stats.records_skipped
        stats.makespan_seconds = max(
            stats.makespan_seconds, job_stats.makespan_seconds
        )

    @staticmethod
    def finalize_stats(
        stats: InferenceStats,
        results: Dict[str, InferenceResult],
        failed: Dict[str, str],
    ) -> None:
        """Derive the run-wide aggregates once every cell has been folded."""
        stats.items_processed = sum(
            len(result.view_recs) for result in results.values()
        )
        stats.failed_retailers = sorted(failed)
        stats.failure_reasons = failed

    # ------------------------------------------------------------------
    # Per-cell job
    # ------------------------------------------------------------------
    def run_cell(
        self,
        cell_name: str,
        datasets: Dict[str, RetailerDataset],
        day: int,
        metrics=NULL_METRICS,
        tracer=NULL_TRACER,
        retrieval: Optional[Dict[str, ModelRetrieval]] = None,
    ) -> Tuple[Dict[str, InferenceResult], JobStats, int, Dict[str, str]]:
        """Run one cell's inference job; the journaled-recovery unit.

        Returns ``(results, job_stats, model_loads, failed)``.  Raising
        :class:`SigmundError` means the whole cell job died.

        Everything recorded on ``metrics`` here is a deterministic
        function of this cell's inputs (models, selectors, block layout),
        so the service can journal the snapshot with the cell payload and
        replay it bit-identically on recovery.
        """
        # Per-retailer preload isolation: a retailer whose selector or
        # model cannot be prepared (stale model after a catalog grew,
        # missing registry entry) is excluded from the job and reported,
        # instead of sinking every retailer sharing its cell.
        failed: Dict[str, str] = {}
        selectors: Dict[str, CandidateSelector] = {}
        models: Dict[str, Tuple[int, Recommender]] = {}
        for rid, dataset in datasets.items():
            try:
                best = self.registry.best(rid)
                if best.model.n_items < dataset.n_items:
                    raise ModelNotTrainedError(
                        f"best model for {rid!r} covers {best.model.n_items} "
                        f"items but the catalog has {dataset.n_items}; retrain "
                        f"before running inference on the new catalog"
                    )
                selectors[rid] = self._build_selector(dataset)
                # Candidate-selection counters land in this run's registry
                # (the selector object itself is cached across days).
                selectors[rid].metrics = metrics
                models[rid] = (best.model_number, best.model)
                # ANN candidate source: the published index when the
                # service provides one, else a locally built (cached)
                # index above the size threshold.  Re-bound every run,
                # like ``metrics`` — selectors are cached across days.
                if retrieval is not None:
                    adapter = retrieval.get(rid)
                else:
                    adapter = self._build_retrieval(rid, dataset, best)
                selectors[rid].retrieval = adapter
                if adapter is not None:
                    adapter.metrics = metrics
                # Prime the effective-item matrix once per loaded model: no
                # updates happen during inference, so every candidate scoring
                # call below gathers from the cache instead of re-stacking
                # per-item feature vectors.
                prime = getattr(best.model, "effective_item_matrix", None)
                if prime is not None:
                    prime()
            except SigmundError as exc:
                failed[rid] = str(exc)
        datasets = {
            rid: dataset
            for rid, dataset in datasets.items()
            if rid not in failed
        }
        if not datasets:
            return {}, JobStats(job_name=f"inference/day{day}/{cell_name}"), 0, failed

        # The mapper keeps "the model for the current retailer in memory";
        # a load is counted whenever consecutive records change retailer.
        loader_state = {"current": None, "loads": 0}

        def mapper(record: object):
            retailer_id, items = record  # type: ignore[misc]
            if loader_state["current"] != retailer_id:
                loader_state["current"] = retailer_id
                loader_state["loads"] += 1
            model_number, model = models[retailer_id]
            selector = selectors[retailer_id]
            items = list(items)
            if self.crash_plan is not None and items:
                # Mid-mapper coordinator kill: mappers run before any
                # billing or scheduling-RNG draws, so an abort here costs
                # nothing and leaves the runtime's random stream aligned
                # for the recovery re-run.
                self.crash_plan.check(
                    "infer_block", f"{retailer_id}@{items[0]}"
                )
            view_recs = self._rank_block(
                model,
                [UserContext((item,), (EventType.VIEW,)) for item in items],
                selector.batch_view_based(items),
            )
            purchase_recs = self._rank_block(
                model,
                [UserContext((item,), (EventType.CONVERSION,)) for item in items],
                selector.batch_purchase_based(items),
            )
            metrics.counter(
                "inference_blocks_total", retailer=retailer_id
            ).inc()
            metrics.counter(
                "inference_items_total", retailer=retailer_id
            ).inc(len(items))
            for item, view, purchase in zip(items, view_recs, purchase_recs):
                yield retailer_id, (item, model_number, view, purchase)

        def reducer(key: object, values: List[object]):
            result = InferenceResult(retailer_id=str(key), model_number=-1)
            for item_index, model_number, view, purchase in values:
                result.model_number = model_number
                result.view_recs[item_index] = view
                result.purchase_recs[item_index] = purchase
            yield result

        def record_cost(record: object) -> float:
            retailer_id, items = record  # type: ignore[misc]
            dataset = datasets[retailer_id]
            candidates = min(dataset.n_items, selectors[retailer_id].max_candidates)
            return len(items) * candidates * self.per_candidate_seconds

        records = [
            (rid, block)
            for rid in sorted(datasets)
            for block in _item_blocks(datasets[rid].n_items, self.block_size)
        ]
        n_workers = min(self.workers_per_cell, max(1, len(datasets)))
        splits = self._binpacked_splits(records, datasets, n_workers)
        job = MapReduceJob(
            name=f"inference/day{day}/{cell_name}",
            mapper=mapper,
            reducer=reducer,
            n_workers=n_workers,
            vm_request=VMRequest(cpus=4, memory_gb=16.0, priority=Priority.PREEMPTIBLE),
            record_cost_fn=record_cost,
            task_startup_seconds=self.model_load_seconds,
            failure_policy=self.failure_policy,
        )
        outputs, job_stats = self.runtime.run(
            job, splits, metrics=metrics, tracer=tracer
        )
        metrics.counter(
            "inference_billed_vm_seconds_total", cell=cell_name
        ).inc(job_stats.billed_vm_seconds)
        metrics.counter("inference_cost_total", cell=cell_name).inc(
            job_stats.cost
        )
        metrics.counter(
            "inference_model_loads_total", cell=cell_name
        ).inc(loader_state["loads"])
        metrics.counter(
            "preemptions_total", phase="inference", cell=cell_name
        ).inc(job_stats.preemptions)
        metrics.counter(
            "dead_letters_total", phase="inference", cell=cell_name
        ).inc(len(job_stats.dead_letters))
        metrics.counter(
            "speculative_copies_total", phase="inference", cell=cell_name
        ).inc(job_stats.speculative_copies)
        metrics.gauge("inference_makespan_seconds", cell=cell_name).set(
            job_stats.makespan_seconds
        )
        results = {
            result.retailer_id: result
            for result in outputs
            if isinstance(result, InferenceResult)
        }
        # An item record that dead-lettered means the retailer's table
        # would be incomplete; serving a partial table is worse than
        # serving yesterday's complete one, so the whole retailer
        # degrades (versioned stores make that safe).
        for letter in job_stats.dead_letters:
            rid = letter.record[0] if isinstance(letter.record, tuple) else None
            if rid is not None and rid not in failed:
                failed[rid] = str(letter.exception)
        for rid in failed:
            results.pop(rid, None)
        # Charge-back attribution (section V): split the job bill across
        # retailers in proportion to their inference work (≈ item count
        # times capped candidates).
        work = {
            rid: dataset.n_items
            * min(dataset.n_items, selectors[rid].max_candidates)
            for rid, dataset in datasets.items()
        }
        total_work = sum(work.values())
        if total_work > 0 and job_stats.cost > 0:
            for rid, units in work.items():
                share = job_stats.cost * units / total_work
                self.ledger.attribute(f"chargeback/{rid}", share)
                metrics.counter(
                    "inference_cost_attributed_total", retailer=rid
                ).inc(share)
        return results, job_stats, loader_state["loads"], failed

    def _binpacked_splits(
        self,
        records: List[Tuple[str, Tuple[int, ...]]],
        datasets: Dict[str, RetailerDataset],
        n_workers: int,
    ) -> List[InputSplit]:
        """One split per bin; retailers stay contiguous inside each split."""
        weights = {rid: float(ds.n_items) for rid, ds in datasets.items()}
        bins = first_fit_decreasing(weights, n_workers)
        by_retailer: Dict[str, List[Tuple[str, Tuple[int, ...]]]] = {}
        for record in records:
            by_retailer.setdefault(record[0], []).append(record)
        splits = []
        for split_id, group in enumerate(bins):
            chunk: List[Tuple[str, int]] = []
            for rid in group:
                chunk.extend(by_retailer.get(rid, []))
            splits.append(InputSplit(split_id, chunk))
        return [split for split in splits if split.records] or [InputSplit(0, [])]

    def _build_selector(self, dataset: RetailerDataset) -> CandidateSelector:
        """Selector for one retailer, cached across days.

        The cache entry pins the exact dataset object it was built from
        (so the identity check can never alias a recycled ``id()``) plus
        the training-log length, catching both a *replaced* dataset (the
        usual day-over-day evolution) and one mutated in place.
        """
        cached = self._selector_cache.get(dataset.retailer_id)
        if (
            cached is not None
            and cached[0] is dataset
            and cached[1] == len(dataset.train)
        ):
            self.process_metrics.counter("selector_cache_hits_total").inc()
            return cached[2]
        self.process_metrics.counter("selector_cache_misses_total").inc()
        counts = CoOccurrenceCounts.from_interactions(dataset.n_items, dataset.train)
        detector = RepurchaseDetector(dataset.taxonomy, dataset.train)
        selector = CandidateSelector(
            taxonomy=dataset.taxonomy,
            counts=counts,
            catalog=dataset.catalog,
            repurchase=detector,
        )
        self._selector_cache[dataset.retailer_id] = (
            dataset,
            len(dataset.train),
            selector,
        )
        return selector

    def _build_retrieval(
        self, retailer_id: str, dataset: RetailerDataset, best
    ) -> Optional[ModelRetrieval]:
        """ANN adapter for large catalogs, cached per (retailer, model).

        Below :attr:`retrieval_threshold` the taxonomy walk stays cheaper
        than quantizing, so no index is built.  A model with no embedding
        surface (popularity baselines) silently keeps the taxonomy path.
        """
        if dataset.n_items < self.retrieval_threshold:
            return None
        cached = self._retrieval_cache.get(retailer_id)
        if cached is not None and cached[0] == best.model_number:
            self.process_metrics.counter("retrieval_cache_hits_total").inc()
            return cached[1]
        try:
            adapter = ann_for_model(best.model, config=self.retrieval_config)
        except RetrievalError:
            return None
        adapter.model_number = best.model_number
        self.process_metrics.counter("retrieval_cache_misses_total").inc()
        self._retrieval_cache[retailer_id] = (best.model_number, adapter)
        return adapter

    def _rank_block(
        self,
        model: Recommender,
        contexts: List[UserContext],
        candidate_lists: Sequence[Sequence[int]],
    ) -> List[List[ScoredItem]]:
        """Top-N for one block of single-item contexts in one batched call."""
        return model.recommend_batch(
            contexts,
            candidate_lists,
            k=self.top_n,
            exclude_context_items=True,
        )
