"""Sigmund's core: the multi-tenant recommendation pipeline.

This package is the paper's primary contribution — everything that turns
"one BPR model" into "thousands of recommendation problems solved daily":

* config records and per-retailer grid search with feature selection
  (:mod:`~repro.core.config`, :mod:`~repro.core.grid`),
* full and incremental sweeps (:mod:`~repro.core.sweep`),
* the model registry with strict retailer isolation
  (:mod:`~repro.core.registry`),
* the training pipeline — Hogwild threads, time-interval checkpointing,
  pre-emptible execution (:mod:`~repro.core.training`,
  :mod:`~repro.core.checkpoint`),
* candidate selection and the offline inference pipeline with bin-packed
  parallelization (:mod:`~repro.core.candidates`,
  :mod:`~repro.core.inference`, :mod:`~repro.core.binpack`),
* the head/tail hybrid (:mod:`~repro.core.hybrid`),
* and the daily service loop plus quality monitoring
  (:mod:`~repro.core.service`, :mod:`~repro.core.monitoring`).
"""

from repro.core.binpack import first_fit_decreasing, makespan
from repro.core.candidates import CandidateSelector, RepurchaseDetector
from repro.core.checkpoint import (
    CheckpointFaultPlan,
    CheckpointManager,
    CheckpointStats,
    CheckpointStorage,
    FilesystemCheckpointStorage,
    InMemoryCheckpointStorage,
)
from repro.core.config import ConfigRecord, OutputConfigRecord
from repro.core.grid import GridSpec, generate_configs
from repro.core.hybrid import HybridRecommender
from repro.core.inference import InferencePipeline, InferenceResult
from repro.core.journal import JournalError, RunJournal
from repro.core.monitoring import QualityMonitor
from repro.core.recovery import KILL_STAGES, CrashPlan
from repro.core.registry import ModelRegistry, TrainedModel
from repro.core.service import DailyRunReport, SigmundService
from repro.core.sweep import SweepPlan, SweepPlanner
from repro.core.training import HogwildTrainer, TrainingPipeline, train_config

__all__ = [
    "ConfigRecord",
    "OutputConfigRecord",
    "GridSpec",
    "generate_configs",
    "ModelRegistry",
    "TrainedModel",
    "SweepPlan",
    "SweepPlanner",
    "train_config",
    "TrainingPipeline",
    "HogwildTrainer",
    "CheckpointManager",
    "CheckpointStorage",
    "CheckpointStats",
    "CheckpointFaultPlan",
    "InMemoryCheckpointStorage",
    "FilesystemCheckpointStorage",
    "RunJournal",
    "JournalError",
    "CrashPlan",
    "KILL_STAGES",
    "CandidateSelector",
    "RepurchaseDetector",
    "InferencePipeline",
    "InferenceResult",
    "first_fit_decreasing",
    "makespan",
    "HybridRecommender",
    "SigmundService",
    "DailyRunReport",
    "QualityMonitor",
]
