"""Quality monitoring across thousands of retailers.

A self-serve service cannot be babysat per retailer (section I: "design
away any manual per-retailer configuration"); instead, per-retailer
MAP@10 is recorded every day and regressions beyond a threshold raise
alerts for the (two-engineer) team.  The monitor also surfaces fleet-wide
aggregates for dashboards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

#: Relative MAP drop that fires an alert.
DEFAULT_REGRESSION_THRESHOLD = 0.30

#: The frontend's mutually-exclusive serving outcome buckets.  Every
#: request terminates in exactly one, so their counts must sum to the
#: request count — the conservation law serving-window accounting
#: enforces (no double-count, no gap).
SERVING_BUCKETS = (
    "cache", "coalesced", "fresh", "stale", "fallback", "shed", "empty",
)


@dataclass(frozen=True)
class Alert:
    """One quality regression or pipeline failure worth a human look."""

    retailer_id: str
    day: int
    metric: str
    previous: float
    current: float
    #: "regression" (metric dropped) or "failure" (pipeline stage died).
    kind: str = "regression"
    #: Free-form context, e.g. the exception message behind a failure.
    detail: str = ""
    #: Which pipeline stage raised the alert ("training", "inference",
    #: "publish"); empty for metric regressions, which are stage-less.
    stage: str = ""

    @property
    def drop_fraction(self) -> float:
        if self.previous == 0:
            return 0.0
        return (self.previous - self.current) / self.previous


@dataclass(frozen=True)
class ServingWindow:
    """One observation window of serving-outcome accounting.

    ``buckets`` maps each :data:`SERVING_BUCKETS` name to its count;
    construction via :meth:`QualityMonitor.record_serving_window` has
    already verified conservation (``sum(buckets) == requests``).
    """

    day: int
    requests: int
    buckets: Dict[str, int]

    @property
    def availability(self) -> float:
        """Fraction of requests answered with *something* (non-empty)."""
        if self.requests == 0:
            return 1.0
        return 1.0 - self.buckets.get("empty", 0) / self.requests

    @property
    def degraded_fraction(self) -> float:
        """Fraction served below full freshness (stale/fallback/shed/empty)."""
        if self.requests == 0:
            return 0.0
        degraded = sum(
            self.buckets.get(name, 0)
            for name in ("stale", "fallback", "shed", "empty")
        )
        return degraded / self.requests


class QualityMonitor:
    """Tracks per-retailer daily metrics and raises regression alerts."""

    def __init__(self, regression_threshold: float = DEFAULT_REGRESSION_THRESHOLD):
        if not 0.0 < regression_threshold <= 1.0:
            raise ValueError("regression_threshold must be in (0, 1]")
        self.regression_threshold = regression_threshold
        self._history: Dict[str, Dict[int, float]] = {}
        self.alerts: List[Alert] = []
        # day -> the sealed observability snapshot the service recorded.
        self._day_snapshots: Dict[int, Dict[str, object]] = {}
        # day -> conservation-checked serving-outcome accounting.
        self._serving_windows: Dict[int, ServingWindow] = {}

    def record(self, retailer_id: str, day: int, map_at_10: float) -> Optional[Alert]:
        """Record today's metric; returns an alert if it regressed badly."""
        history = self._history.setdefault(retailer_id, {})
        previous_day = max((d for d in history if d < day), default=None)
        history[day] = map_at_10
        if previous_day is None:
            return None
        previous = history[previous_day]
        if previous <= 0:
            return None
        drop = (previous - map_at_10) / previous
        if drop >= self.regression_threshold:
            alert = Alert(
                retailer_id=retailer_id,
                day=day,
                metric="map@10",
                previous=previous,
                current=map_at_10,
            )
            self.alerts.append(alert)
            return alert
        return None

    def record_failure(
        self, retailer_id: str, day: int, stage: str, detail: str = ""
    ) -> Alert:
        """Record that a pipeline stage failed for a retailer today.

        A failed retailer keeps serving yesterday's recommendations (the
        degradation the service layer arranges), so nothing shows up in
        the metric history — this alert is what keeps the failure from
        being silent.  Always alerts: availability loss is never below
        the threshold.
        """
        alert = Alert(
            retailer_id=retailer_id,
            day=day,
            metric=f"{stage}_availability",
            previous=1.0,
            current=0.0,
            kind="failure",
            detail=detail,
            stage=stage,
        )
        self.alerts.append(alert)
        return alert

    def record_serving_window(
        self,
        day: int,
        requests: int,
        buckets: Dict[str, int],
        availability_floor: Optional[float] = None,
    ) -> ServingWindow:
        """Record one serving window, enforcing bucket conservation.

        ``buckets`` must cover each request exactly once: an unknown
        bucket name, a negative count, or a sum that misses ``requests``
        (double-count or gap) raises ``ValueError`` — accounting bugs
        fail loudly here instead of silently skewing availability.
        With an ``availability_floor``, a window whose availability
        falls below it raises a ``kind="failure"`` alert with
        ``stage="serving"``.
        """
        unknown = sorted(set(buckets) - set(SERVING_BUCKETS))
        if unknown:
            raise ValueError(f"unknown serving buckets: {unknown}")
        negative = sorted(name for name, count in buckets.items() if count < 0)
        if negative:
            raise ValueError(f"negative serving bucket counts: {negative}")
        total = sum(buckets.values())
        if total != requests:
            raise ValueError(
                "serving bucket conservation violated: buckets sum to "
                f"{total} but {requests} requests were served "
                "(double-count or gap)"
            )
        window = ServingWindow(
            day=day,
            requests=int(requests),
            buckets={name: int(buckets.get(name, 0)) for name in SERVING_BUCKETS},
        )
        self._serving_windows[day] = window
        if (
            availability_floor is not None
            and window.availability < availability_floor
        ):
            self.alerts.append(
                Alert(
                    retailer_id="*",
                    day=day,
                    metric="serving_availability",
                    previous=float(availability_floor),
                    current=window.availability,
                    kind="failure",
                    detail=(
                        f"{window.buckets.get('empty', 0)} of "
                        f"{window.requests} requests went unanswered"
                    ),
                    stage="serving",
                )
            )
        return window

    def serving_window(self, day: int) -> Optional[ServingWindow]:
        return self._serving_windows.get(day)

    def metric_history(self, retailer_id: str) -> Dict[int, float]:
        return dict(self._history.get(retailer_id, {}))

    def last_map(self, retailer_id: str, before_day: int) -> Optional[float]:
        """The most recent recorded MAP strictly before ``before_day``.

        The publish gate's baseline: today's candidate table is sanity-
        checked against the last run that actually served.  ``None`` when
        the retailer has no earlier history (nothing to compare against —
        the gate skips the MAP check rather than blocking a first
        publish).
        """
        history = self._history.get(retailer_id, {})
        previous_day = max((d for d in history if d < before_day), default=None)
        if previous_day is None:
            return None
        return history[previous_day]

    def fleet_summary(self, day: int) -> Dict[str, float]:
        """Aggregate MAP stats over every retailer with a value for ``day``."""
        values = [
            history[day] for history in self._history.values() if day in history
        ]
        if not values:
            return {"retailers": 0.0, "mean_map": 0.0, "p10_map": 0.0, "p90_map": 0.0}
        arr = np.asarray(values)
        return {
            "retailers": float(arr.size),
            "mean_map": float(arr.mean()),
            "p10_map": float(np.percentile(arr, 10)),
            "p90_map": float(np.percentile(arr, 90)),
        }

    def record_day_snapshot(self, day: int, seal: Dict[str, object]) -> None:
        """Attach the day's sealed observability snapshot to the monitor.

        Dashboards read fleet health and alert context from one place;
        the seal is the same object the journal commits, so the monitor
        view can never drift from the durable record.
        """
        self._day_snapshots[day] = seal

    def day_snapshot(self, day: int) -> Optional[Dict[str, object]]:
        return self._day_snapshots.get(day)

    def alerts_for_day(self, day: int) -> List[Alert]:
        return [alert for alert in self.alerts if alert.day == day]

    def failures_for_day(self, day: int) -> List[Alert]:
        return [
            alert
            for alert in self.alerts
            if alert.day == day and alert.kind == "failure"
        ]
