"""The daily-run journal: a write-ahead intent log for crash recovery.

The paper runs Sigmund entirely on pre-emptible capacity (section IV-B3),
which protects *tasks* via checkpoints — but the daily coordinator itself
can die mid-run, stranding a half-trained, half-published day.  The
journal closes that gap with classic WAL discipline:

1. ``begin_day`` records the day's **intent** before any work starts —
   the sweep kind and the exact config records planned, so recovery
   replans nothing (the plan may depend on registry state that later
   work mutates).
2. ``log_task`` records each unit of work **after** it completed (and
   after its side effects — registry publish, ledger billing — landed),
   together with a payload carrying everything the final report needs.
   Logging the same task twice raises: recovery must never replay
   completed work, and the journal is where that invariant lives.
3. ``commit_day`` marks the day durable; an uncommitted day is exactly
   what :meth:`~repro.core.service.SigmundService.recover` resumes.

Like the checkpoint store, the journal is an in-memory stand-in for the
shared filesystem (payloads hold live objects where a real system would
reference files); what it models faithfully is the *ordering*: intent
before work, completion after effects, commit last.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import SigmundError


class JournalError(SigmundError):
    """The run journal was used out of protocol (duplicate task, no day)."""


@dataclass
class JournalEntry:
    """One journal record: begin / task-completion / commit."""

    day: int
    kind: str  # "begin" | "task" | "commit" | "purge"
    phase: str = ""  # for tasks: "train" | "inference_plan" | "infer_cell" | "publish"
    task_id: str = ""
    payload: Dict[str, object] = field(default_factory=dict)


class RunJournal:
    """Append-only log of daily-run intents and completions."""

    def __init__(self) -> None:
        self.entries: List[JournalEntry] = []
        # day -> phase -> task_id -> payload (completion index).
        self._done: Dict[int, Dict[str, Dict[str, Dict[str, object]]]] = {}
        self._begun: Dict[int, Dict[str, object]] = {}
        self._committed: Dict[int, bool] = {}
        # day -> the seal (observability snapshot) committed with it.
        self._seals: Dict[int, Dict[str, object]] = {}

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def begin_day(self, day: int, payload: Dict[str, object]) -> None:
        """Log the day's intent; re-beginning an open day is a no-op.

        (Recovery re-executes the day through the same code path as the
        original run; the original ``begin`` record must win.)
        """
        if day in self._begun:
            if self._committed.get(day):
                raise JournalError(f"day {day} is already committed")
            return
        self._begun[day] = payload
        self.entries.append(JournalEntry(day=day, kind="begin", payload=payload))

    def log_task(
        self,
        day: int,
        phase: str,
        task_id: str,
        payload: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record one completed unit of work; duplicates raise loudly."""
        if day not in self._begun:
            raise JournalError(f"day {day} was never begun")
        tasks = self._done.setdefault(day, {}).setdefault(phase, {})
        if task_id in tasks:
            raise JournalError(
                f"task {phase}/{task_id!r} already logged for day {day}: "
                "completed work must never be replayed"
            )
        tasks[task_id] = payload or {}
        self.entries.append(
            JournalEntry(
                day=day, kind="task", phase=phase, task_id=task_id,
                payload=payload or {},
            )
        )

    def commit_day(
        self, day: int, seal: Optional[Dict[str, object]] = None
    ) -> None:
        """Mark the day durable, optionally with a **seal**.

        The seal is the day's observability snapshot (metrics rollups,
        report fields) written atomically with the commit record — the
        parity contract of crash recovery is that a recovered day commits
        a byte-identical seal to the uninterrupted run's.
        """
        if day not in self._begun:
            raise JournalError(f"day {day} was never begun")
        if self._committed.get(day):
            raise JournalError(f"day {day} is already committed")
        self._committed[day] = True
        if seal is not None:
            self._seals[day] = seal
        self.entries.append(
            JournalEntry(day=day, kind="commit", payload=seal or {})
        )

    def purge_tasks(self, day, match) -> int:
        """Drop completed tasks of an *open* day matching a predicate.

        ``match(phase, task_id)`` picks the records to forget; returns
        how many were dropped.  This exists for offboarding: a retailer
        leaving mid-crash must not be resurrected when :meth:`recover`
        replays the open day, and the privacy framing forbids keeping its
        journaled payloads (they carry model state and result tables)
        alive at all.  Purging a committed day raises — its seal is the
        immutable record of what happened.
        """
        if day not in self._begun:
            return 0
        if self._committed.get(day):
            raise JournalError(
                f"day {day} is committed; its record is immutable"
            )
        purged = 0
        for phase, tasks in self._done.get(day, {}).items():
            for task_id in [t for t in tasks if match(phase, t)]:
                del tasks[task_id]
                self.entries.append(
                    JournalEntry(day=day, kind="purge", phase=phase, task_id=task_id)
                )
                purged += 1
        return purged

    # ------------------------------------------------------------------
    # Reading (the recovery path)
    # ------------------------------------------------------------------
    def open_day(self) -> Optional[int]:
        """The begun-but-uncommitted day, if any (at most one exists)."""
        for day in sorted(self._begun, reverse=True):
            if not self._committed.get(day):
                return day
        return None

    def day_intent(self, day: int) -> Dict[str, object]:
        if day not in self._begun:
            raise JournalError(f"day {day} was never begun")
        return self._begun[day]

    def is_done(self, day: int, phase: str, task_id: str) -> bool:
        return task_id in self._done.get(day, {}).get(phase, {})

    def task_payload(self, day: int, phase: str, task_id: str) -> Dict[str, object]:
        try:
            return self._done[day][phase][task_id]
        except KeyError:
            raise JournalError(
                f"no completed task {phase}/{task_id!r} for day {day}"
            ) from None

    def completed(self, day: int, phase: str) -> Dict[str, Dict[str, object]]:
        """task_id -> payload of every completed task in one phase."""
        return dict(self._done.get(day, {}).get(phase, {}))

    def is_committed(self, day: int) -> bool:
        return bool(self._committed.get(day))

    def committed_days(self) -> List[int]:
        """Every committed day, ascending (backfills target the latest)."""
        return sorted(day for day in self._begun if self._committed.get(day))

    def day_seal(self, day: int) -> Dict[str, object]:
        """The seal committed with ``day`` (raises when none exists)."""
        if day not in self._seals:
            raise JournalError(f"no seal committed for day {day}")
        return self._seals[day]

    def seals(self) -> Dict[int, Dict[str, object]]:
        """All committed day seals, keyed by day."""
        return dict(self._seals)

    def task_count(self, day: int, phase: str) -> int:
        return len(self._done.get(day, {}).get(phase, {}))
