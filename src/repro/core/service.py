"""The Sigmund service: onboarding, daily runs, periodic full restarts.

This ties every subsystem together into the loop the paper describes:

1. retailers sign up (their datasets enter the fleet),
2. every day: plan a sweep (full on day 0 or on the periodic restart,
   incremental otherwise), train on pre-emptible capacity, publish to the
   registry, run offline inference, and batch-load the serving stores,
3. record quality metrics and raise regression alerts,
4. every ``full_restart_every`` days, discard history and re-run the full
   grid — the terms-of-service constraint that models reflect only recent
   history, which also re-finds hyper-parameters after data drift.

Crash recovery: every daily run is journaled (intent first, completions
after their side effects), so a coordinator death mid-run — simulated by
a :class:`~repro.core.recovery.CrashPlan` — is resumed by
:meth:`SigmundService.recover`, which re-executes the open day through
the same code path, skipping journaled work.  Completed retailers are
not retrained, completed cells are not re-inferred, billed cost is never
double-billed, and the final report matches an uninterrupted run.

Publish safety: before a retailer's tables reach the stores they pass a
:class:`~repro.serving.gate.PublishGate`; a rejected table keeps the
last-good one serving and surfaces through the quality monitor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.cell import Cluster
from repro.cluster.cost import CostLedger, ResourcePricing
from repro.cluster.preemption import PreemptionModel
from repro.core.candidates import RepurchaseDetector
from repro.core.checkpoint import CheckpointFaultPlan, CheckpointStorage
from repro.core.config import ConfigRecord
from repro.core.grid import GridSpec
from repro.core.inference import InferencePipeline, InferenceResult, InferenceStats
from repro.core.journal import RunJournal
from repro.core.monitoring import QualityMonitor
from repro.core.recovery import CrashPlan
from repro.core.registry import ModelRegistry
from repro.core.sweep import SweepPlanner
from repro.core.training import PipelineStats, TrainerSettings, TrainingPipeline
from repro.dag.dayplan import (
    BackfillState,
    DayState,
    build_backfill_graph,
    build_day_graph,
    build_selection,
)
from repro.dag.runner import GraphRunner, GraphRunResult
from repro.data.datasets import RetailerDataset
from repro.exceptions import DataError, SigmundError
from repro.mapreduce.runtime import FaultPlan
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.snapshot import build_day_seal
from repro.obs.tracing import NULL_TRACER
from repro.retrieval.backend import ModelRetrieval, ann_for_model
from repro.retrieval.harness import measure_model_recall, resolve_ann_threshold
from repro.retrieval.ivf import IVFConfig
from repro.retrieval.store import RetrievalIndexStore
from repro.serving.gate import PublishGate
from repro.serving.server import RecommendationServer
from repro.serving.store import RecommendationStore

#: Paper: "periodically we restart the full model selection".
DEFAULT_FULL_RESTART_EVERY = 30


@dataclass
class DailyRunReport:
    """Everything one daily run did, for logs and benchmarks."""

    day: int
    sweep_kind: str = "incremental"
    configs_trained: int = 0
    configs_failed: int = 0
    retailers_served: int = 0
    #: Retailers kept on yesterday's table after today's pipeline failed.
    retailers_stale: int = 0
    #: Failed retailers with no previous table to fall back on (day-0
    #: failures) — the only case a retailer is not served at all.
    retailers_unserved: int = 0
    training_cost: float = 0.0
    inference_cost: float = 0.0
    training_makespan: float = 0.0
    inference_makespan: float = 0.0
    preemptions: int = 0
    alerts: int = 0
    #: Tables the publish gate refused (the retailer degrades to its
    #: last-good table instead of serving a broken one).
    publishes_rejected: int = 0
    #: ANN retrieval indexes built (catalogs over the size threshold).
    indexes_built: int = 0
    #: Indexes whose measured recall missed the target and were not
    #: published (inference falls back to the taxonomy walk).
    indexes_rejected: int = 0
    #: Retailers whose training, inference, or publish failed today.
    failed_retailers: List[str] = field(default_factory=list)
    failure_reasons: Dict[str, str] = field(default_factory=dict)

    @property
    def total_cost(self) -> float:
        return self.training_cost + self.inference_cost

    @property
    def availability(self) -> float:
        """Fraction of retailers served at all (fresh or stale) today."""
        fleet = self.retailers_served + self.retailers_stale + self.retailers_unserved
        if fleet == 0:
            return 1.0
        return 1.0 - self.retailers_unserved / fleet


class SigmundService:
    """Recommendations-as-a-service for a fleet of retailers."""

    def __init__(
        self,
        cluster: Cluster,
        grid: GridSpec = GridSpec.small(),
        settings: TrainerSettings = TrainerSettings(),
        pricing: ResourcePricing = ResourcePricing(),
        preemption_model: PreemptionModel = PreemptionModel(),
        top_k_incremental: int = 3,
        full_restart_every: int = DEFAULT_FULL_RESTART_EVERY,
        seed: int = 0,
        fault_plan: Optional[FaultPlan] = None,
        crash_plan: Optional[CrashPlan] = None,
        publish_gate: Optional[PublishGate] = None,
        checkpoint_storage: Optional[CheckpointStorage] = None,
        checkpoint_fault_plan: Optional[CheckpointFaultPlan] = None,
        metrics=None,
        tracer=None,
        retrieval_threshold: Optional[int] = None,
        retrieval_config: Optional[IVFConfig] = None,
        retrieval_recall_target: float = 0.95,
        n_workers: int = 0,
        executor=None,
        orchestration: str = "serial",
        max_parallelism: int = 1,
    ):
        if orchestration not in ("serial", "dag"):
            raise SigmundError(
                f"orchestration must be 'serial' or 'dag', got {orchestration!r}"
            )
        if max_parallelism < 1:
            raise SigmundError(
                f"max_parallelism must be >= 1, got {max_parallelism}"
            )
        #: How the daily run is driven: "serial" is the imperative
        #: reference sequence; "dag" schedules the same blocks through
        #: :class:`~repro.dag.runner.GraphRunner` with up to
        #: ``max_parallelism`` lanes (and enables ``--blocks`` partial
        #: reruns).  Both paths are pinned byte-identical on the day seal
        #: by tests/test_dag_recovery.py.
        self.orchestration = orchestration
        self.max_parallelism = max_parallelism
        #: The block-level outcome of the most recent DAG-driven day (or
        #: backfill); None before the first and under serial orchestration.
        self.last_dag_run: Optional[GraphRunResult] = None
        self.cluster = cluster
        #: Process-level observability (None -> the zero-overhead nulls).
        #: Day-scoped metrics live in per-day registries built inside
        #: :meth:`_execute_day`; this registry accumulates cross-day
        #: process state (ledger, stores, caches, gate).
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.registry = ModelRegistry()
        self.monitor = QualityMonitor()
        self.ledger = CostLedger(pricing, metrics=self.metrics)
        self.planner = SweepPlanner(grid, top_k=top_k_incremental, base_seed=seed)
        self.journal = RunJournal()
        self.crash_plan = crash_plan
        self.gate = publish_gate or PublishGate(metrics=self.metrics)
        #: Real process parallelism for Train() map tasks.  ``executor``
        #: wins if given; otherwise ``n_workers > 1`` builds a
        #: ProcessFleetExecutor the service owns (and closes).  The
        #: default (0/None) keeps the serial in-process reference path.
        self._owns_executor = False
        if executor is None and n_workers > 1:
            from repro.fleet.executor import ProcessFleetExecutor

            executor = ProcessFleetExecutor(n_workers, metrics=self.metrics)
            self._owns_executor = True
        self.executor = executor
        self.training = TrainingPipeline(
            cluster,
            self.registry,
            settings=settings,
            pricing=pricing,
            preemption_model=preemption_model,
            ledger=self.ledger,
            seed=seed,
            fault_plan=fault_plan,
            checkpoint_storage=checkpoint_storage,
            checkpoint_fault_plan=checkpoint_fault_plan,
            crash_plan=crash_plan,
            executor=executor,
        )
        #: Catalog size at which the ANN index replaces the taxonomy
        #: walk; defaults to the crossover the committed E26 bench
        #: measured (:func:`~repro.retrieval.harness.resolve_ann_threshold`).
        self.retrieval_threshold = (
            resolve_ann_threshold()
            if retrieval_threshold is None
            else retrieval_threshold
        )
        self.retrieval_config = retrieval_config or IVFConfig()
        #: An index whose measured recall@k misses this is not published;
        #: its retailer keeps the exact taxonomy candidate path.
        self.retrieval_recall_target = retrieval_recall_target
        self.inference = InferencePipeline(
            cluster,
            self.registry,
            pricing=pricing,
            preemption_model=preemption_model,
            ledger=self.ledger,
            seed=seed + 1,
            fault_plan=fault_plan,
            crash_plan=crash_plan,
            retrieval_threshold=self.retrieval_threshold,
            retrieval_config=self.retrieval_config,
        )
        self.inference.process_metrics = self.metrics
        self.retrieval_store = RetrievalIndexStore(metrics=self.metrics)
        self.substitutes_store = RecommendationStore(
            metrics=self.metrics, name="substitutes"
        )
        self.accessories_store = RecommendationStore(
            metrics=self.metrics, name="accessories"
        )
        self.substitutes_server = RecommendationServer(self.substitutes_store)
        self.accessories_server = RecommendationServer(self.accessories_store)
        self.full_restart_every = full_restart_every
        self._datasets: Dict[str, RetailerDataset] = {}
        self._repurchase: Dict[str, RepurchaseDetector] = {}
        self._next_day = 0
        self.reports: List[DailyRunReport] = []

    # ------------------------------------------------------------------
    # Fleet management
    # ------------------------------------------------------------------
    def onboard(self, dataset: RetailerDataset) -> None:
        """Sign a retailer up; first training happens on the next run."""
        if dataset.retailer_id in self._datasets:
            raise DataError(f"retailer {dataset.retailer_id!r} already onboarded")
        self._datasets[dataset.retailer_id] = dataset

    def update_dataset(self, dataset: RetailerDataset) -> None:
        """Replace a retailer's data (new day's interactions arrived)."""
        if dataset.retailer_id not in self._datasets:
            raise DataError(f"retailer {dataset.retailer_id!r} not onboarded")
        self._datasets[dataset.retailer_id] = dataset

    def offboard(self, retailer_id: str) -> None:
        """Remove a retailer and every artifact derived from its data.

        Besides the dataset and registry entries, this purges the serving
        tables and the re-purchase detector — all of them are derived from
        the tenant's interaction data, and the store's privacy framing
        forbids keeping any of it alive after departure.  The open day's
        journal records and the retailer's checkpoints are purged too:
        without that, a retailer offboarded mid-crash was resurrected by
        :meth:`recover` (its journaled train/publish payloads replayed
        into the report, and its model state lingered in the checkpoint
        store).
        """
        self._datasets.pop(retailer_id, None)
        self.registry.drop_retailer(retailer_id)
        self.substitutes_store.drop_retailer(retailer_id)
        self.accessories_store.drop_retailer(retailer_id)
        self.retrieval_store.drop_retailer(retailer_id)
        self._repurchase.pop(retailer_id, None)
        self._purge_journal(retailer_id)
        self.training.checkpoints.discard_matching(
            lambda key: retailer_id in key.split("/")[1:2]
        )

    def _purge_journal(self, retailer_id: str) -> None:
        """Scrub a departing retailer from the open day's journal.

        Four places reference it: the pinned sweep intent, the
        per-retailer task records (train/retrieval/publish), the
        journaled inference cell assignment, and completed cell payloads
        (whose result tables are derived from the tenant's data).  All
        are mutated in place so a later :meth:`recover` of the open day
        neither retrains, re-infers, nor reports the departed tenant.
        """
        day = self.journal.open_day()
        if day is None:
            return
        intent = self.journal.day_intent(day)
        configs = intent.get("configs")
        if configs is not None:
            intent["configs"] = [
                c for c in configs if c.retailer_id != retailer_id  # type: ignore[union-attr]
            ]
        self.journal.purge_tasks(
            day, lambda phase, task_id: task_id == retailer_id
        )
        if self.journal.is_done(day, "infer_plan", "assignment"):
            payload = self.journal.task_payload(day, "infer_plan", "assignment")
            payload["assignment"] = [
                (cell, [rid for rid in group if rid != retailer_id])
                for cell, group in payload["assignment"]  # type: ignore[union-attr]
            ]
        for cell_payload in self.journal.completed(day, "infer").values():
            for field_name in ("results", "failed"):
                table = cell_payload.get(field_name)
                if isinstance(table, dict):
                    table.pop(retailer_id, None)

    def close(self) -> None:
        """Shut down the training fleet's worker pool (idempotent).

        Only closes an executor the service created itself (via
        ``n_workers``); an injected executor belongs to the caller, who
        may be sharing it across services.
        """
        if self._owns_executor and self.executor is not None:
            self.executor.close()

    def __enter__(self) -> "SigmundService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def retailers(self) -> List[str]:
        return sorted(self._datasets)

    # ------------------------------------------------------------------
    # The daily loop
    # ------------------------------------------------------------------
    def run_day(
        self,
        force_full_sweep: bool = False,
        blocks: Optional[List[str]] = None,
    ) -> DailyRunReport:
        """One full daily cycle: sweep -> train -> infer -> serve -> monitor.

        The day's intent (sweep kind plus the exact configs planned) is
        journaled before any work; each unit of work is journaled after
        its side effects land.  If the coordinator dies mid-run (a
        :class:`SimulatedCrash` from the armed :class:`CrashPlan`), call
        :meth:`recover` to resume the open day where it stopped.

        ``blocks`` (DAG orchestration only) restricts the run to a
        selection of graph blocks — e.g. ``["train/r3"]`` — leaving the
        day open; a later :meth:`recover` (or :meth:`run_day` of the
        selection's complement) finishes and commits it.
        """
        day = self._next_day
        self._next_day += 1
        datasets = list(self._datasets.values())
        if not datasets:
            report = DailyRunReport(day=day)
            self.reports.append(report)
            return report

        full = (
            force_full_sweep
            or day == 0
            or (self.full_restart_every > 0 and day % self.full_restart_every == 0)
        )
        if full:
            plan = self.planner.full_sweep(datasets, day=day)
            sweep_kind = "full"
        else:
            plan = self.planner.incremental_sweep(datasets, self.registry, day=day)
            sweep_kind = "incremental"
        # WAL step 1: intent before work.  The exact configs are pinned
        # so recovery never replans (an incremental sweep depends on
        # registry state that the crashed run may already have mutated).
        self.journal.begin_day(
            day, {"sweep_kind": sweep_kind, "configs": list(plan.configs)}
        )
        return self._execute_day(day, blocks=blocks)

    def recover(self, blocks: Optional[List[str]] = None) -> Optional[DailyRunReport]:
        """Resume the begun-but-uncommitted day, if any.

        Re-executes the open day through the same code path as
        :meth:`run_day`, consulting the journal at every step: completed
        retailers are not retrained, completed inference cells are not
        re-run (their results are replayed from the journal), published
        tables are not re-validated or re-loaded, and no billed cost is
        billed again.  Returns ``None`` when there is nothing to recover.

        ``blocks`` (DAG orchestration only) resumes just a selection of
        the open day's graph, leaving the day open for further recovery.
        """
        day = self.journal.open_day()
        if day is None:
            return None
        return self._execute_day(day, blocks=blocks)

    def _check(self, stage: str, label: str = "") -> None:
        if self.crash_plan is not None:
            self.crash_plan.check(stage, label)

    def _execute_day(
        self, day: int, blocks: Optional[List[str]] = None
    ) -> DailyRunReport:
        """Run (or resume) one journaled day; shared by run_day/recover."""
        if self.orchestration == "dag":
            return self._execute_day_dag(day, blocks=blocks)
        if blocks:
            raise SigmundError(
                "partial --blocks runs require orchestration='dag'"
            )
        intent = self.journal.day_intent(day)
        report = DailyRunReport(day=day, sweep_kind=str(intent["sweep_kind"]))
        self._check("day_begin")

        # The day registry folds *only* journaled task payloads (plus
        # values derived from them), and a fresh one is built per
        # execution — the two facts that make a crashed-and-recovered
        # day seal metrics byte-identical to an uninterrupted run's.
        day_metrics = MetricsRegistry() if self.metrics.enabled else NULL_METRICS
        with self.tracer.span(
            "run_day", day=day, sweep_kind=report.sweep_kind
        ):
            with self.tracer.span("train_phase"):
                failure_reasons = self._train_phase(
                    day, intent, report, day_metrics
                )
            with self.tracer.span("retrieval_phase"):
                retrieval_indexes = self._retrieval_phase(
                    day, failure_reasons, report, day_metrics
                )
            with self.tracer.span("inference_phase"):
                results, infer_stats = self._inference_phase(
                    day, failure_reasons, report, day_metrics,
                    retrieval=retrieval_indexes,
                )
            with self.tracer.span("publish_phase"):
                served = self._publish_phase(
                    day, results, failure_reasons, report, day_metrics
                )
            with self.tracer.span("wrapup"):
                self._wrapup_phase(
                    day, served, failure_reasons, report, day_metrics
                )

        self.reports.append(report)
        return report

    def _execute_day_dag(
        self, day: int, blocks: Optional[List[str]] = None
    ) -> DailyRunReport:
        """Run (or resume) one journaled day as a dependency graph.

        The same blocks, journal keys, kill points, and fold logic as the
        serial phases — declared in :func:`repro.dag.dayplan.build_day_graph`
        and scheduled by :class:`~repro.dag.runner.GraphRunner` with up to
        ``max_parallelism`` lanes.  A full run commits inside the wrapup
        block exactly like the serial path; a ``blocks``-restricted run
        leaves the day open (and out of :attr:`reports`) until a later
        :meth:`recover` completes it.
        """
        intent = self.journal.day_intent(day)
        report = DailyRunReport(day=day, sweep_kind=str(intent["sweep_kind"]))
        self._check("day_begin")
        # Same invariant as the serial path: the day registry folds only
        # journaled task payloads, rebuilt fresh per execution.
        day_metrics = MetricsRegistry() if self.metrics.enabled else NULL_METRICS
        state = DayState(report=report, day_metrics=day_metrics)
        graph = build_day_graph(self, day, intent, state)
        select = build_selection(graph, list(blocks)) if blocks else None
        runner = GraphRunner(
            journal=self.journal,
            day=day,
            crash_check=self._check,
            max_parallelism=self.max_parallelism,
        )
        result = runner.run(graph, select=select)
        self.last_dag_run = result
        if self.tracer.enabled:
            # One span per scheduled block at its simulated lane times;
            # the day seal (the equivalence contract) carries no traces.
            start = self.tracer.clock.now
            for block_run in result.schedule():
                self.tracer.record_span(
                    "block",
                    start + block_run.start,
                    start + block_run.finish,
                    name=block_run.name,
                )
            self.tracer.clock.advance(result.makespan)
        if self.journal.is_committed(day):
            self.reports.append(report)
        return report

    def backfill_retailer(
        self, retailer_id: str, day: Optional[int] = None
    ) -> Dict[str, object]:
        """Re-run one retailer's failed subgraph of a *committed* day.

        The daily run degrades a failed retailer to stale tables and
        moves on; this repairs it after the fact — train from the day's
        pinned intent configs, rebuild the ANN index, infer, and publish
        at the day's version — without touching any other retailer's
        tables, versions, or billed costs, and without reopening the
        day's sealed record.  Journaled under ``backfill_*`` phases, so
        repeating a backfill replays instead of re-billing.
        """
        if retailer_id not in self._datasets:
            raise DataError(f"retailer {retailer_id!r} not onboarded")
        if day is None:
            committed = self.journal.committed_days()
            if not committed:
                raise SigmundError("no committed day to backfill")
            day = committed[-1]
        if not self.journal.is_committed(day):
            raise SigmundError(
                f"day {day} is not committed; recover() resumes open days, "
                "backfill_retailer() repairs committed ones"
            )
        version = day + 1
        if (self.substitutes_store.version_of(retailer_id) or -1) >= version:
            raise SigmundError(
                f"nothing to backfill: {retailer_id!r} already serves "
                f"version {version}"
            )
        intent = self.journal.day_intent(day)
        configs = [
            c
            for c in intent["configs"]  # type: ignore[union-attr]
            if c.retailer_id == retailer_id
        ]
        if not configs:
            raise SigmundError(
                f"day {day} planned no configs for {retailer_id!r}"
            )
        state = BackfillState()
        graph = build_backfill_graph(
            self, day, retailer_id, configs, version, state
        )
        runner = GraphRunner(journal=self.journal, day=day, max_parallelism=1)
        self.last_dag_run = runner.run(graph)
        return {
            "retailer_id": retailer_id,
            "day": day,
            "version": version if state.published else None,
            "trained": state.trained,
            "cost": state.cost,
            "published": state.published,
            "failure": state.failure,
        }

    # -- phase 1: per-retailer training --------------------------------
    def _train_phase(
        self,
        day: int,
        intent: Dict[str, object],
        report: DailyRunReport,
        day_metrics=NULL_METRICS,
    ) -> Dict[str, str]:
        configs: List[ConfigRecord] = list(intent["configs"])  # type: ignore[arg-type]
        by_retailer: Dict[str, List[ConfigRecord]] = {}
        for config in configs:
            by_retailer.setdefault(config.retailer_id, []).append(config)

        failure_reasons: Dict[str, str] = {}
        phase_start = self.tracer.clock.now if self.tracer.enabled else 0.0
        phase_makespan = 0.0
        for retailer_id in sorted(by_retailer):
            if self.journal.is_done(day, "train", retailer_id):
                # Completed before the crash: replay the report numbers
                # from the journal; the registry publish and the ledger
                # charge already happened and must not happen again.
                payload = self.journal.task_payload(day, "train", retailer_id)
            else:
                self._check("train_task", retailer_id)
                payload = self._train_retailer(
                    day, retailer_id, by_retailer[retailer_id]
                )
                self.journal.log_task(day, "train", retailer_id, payload)
                self._check("train_logged", retailer_id)
            report.configs_trained += int(payload["trained"])  # type: ignore[call-overload]
            report.configs_failed += int(payload["failed"])  # type: ignore[call-overload]
            report.training_cost += float(payload["cost"])  # type: ignore[arg-type]
            makespan = float(payload["makespan"])  # type: ignore[arg-type]
            report.training_makespan = max(report.training_makespan, makespan)
            report.preemptions += int(payload["preemptions"])  # type: ignore[call-overload]
            if payload.get("failure"):
                failure_reasons[retailer_id] = str(payload["failure"])
            snapshot = payload.get("metrics")
            if snapshot is not None:
                day_metrics.fold(snapshot)
            day_metrics.gauge(
                "train_makespan_seconds", retailer=retailer_id
            ).set(makespan)
            if self.tracer.enabled:
                self.tracer.record_span(
                    "train_retailer",
                    phase_start,
                    phase_start + makespan,
                    retailer=retailer_id,
                )
                phase_makespan = max(phase_makespan, makespan)
        if self.tracer.enabled:
            # Retailer sweeps run "in parallel": the phase lasts as long
            # as its slowest retailer, not the sum.
            self.tracer.clock.advance(phase_makespan)
        return failure_reasons

    def _train_retailer(
        self, day: int, retailer_id: str, configs: List[ConfigRecord]
    ) -> Dict[str, object]:
        """Train one retailer's configs; the journaled unit of work."""
        failure: Optional[str] = None
        # Per-task registry: its snapshot travels in the journal payload,
        # so a recovered day folds the exact snapshot the crashed run
        # recorded instead of re-deriving (and double-counting) it.
        task_metrics = (
            MetricsRegistry() if self.metrics.enabled else NULL_METRICS
        )
        try:
            _, train_stats = self.training.run(
                configs,
                self._datasets,
                day=day,
                metrics=task_metrics,
                tracer=self.tracer,
            )
        except SigmundError as exc:
            # This retailer's sweep died outright (e.g. no free capacity
            # for its job); it degrades to yesterday's models while the
            # rest of the fleet trains on.
            train_stats = PipelineStats()
            train_stats.configs_failed = len(configs)
            failure = f"training: {exc}"
        else:
            if retailer_id in train_stats.failed_retailers:
                reason = next(
                    (
                        str(f.error)
                        for f in train_stats.failures
                        if f.retailer_id == retailer_id
                    ),
                    "failed",
                )
                failure = f"training: {reason}"
        return {
            "trained": train_stats.configs_trained,
            "failed": train_stats.configs_failed,
            "cost": train_stats.total_cost,
            "makespan": train_stats.makespan_seconds,
            "preemptions": train_stats.preemptions,
            "failure": failure,
            "metrics": task_metrics.snapshot(),
        }

    # -- phase 1b: per-retailer ANN index builds -----------------------
    def _retrieval_phase(
        self,
        day: int,
        failure_reasons: Dict[str, str],
        report: DailyRunReport,
        day_metrics=NULL_METRICS,
    ) -> Dict[str, ModelRetrieval]:
        """Rebuild each large catalog's ANN index from today's best model.

        Journaled like training: one task per retailer, with the recall
        measurement folded into the day metrics from the payload so a
        recovered day is byte-identical.  An index only reaches inference
        (and later the serving stores) when its measured recall@k clears
        :attr:`retrieval_recall_target`; rejected indexes leave the
        retailer on the exact taxonomy candidate path.
        """
        accepted: Dict[str, ModelRetrieval] = {}
        for retailer_id in sorted(self._datasets):
            if retailer_id in failure_reasons:
                continue
            if not self.registry.has_models(retailer_id):
                continue
            if self.journal.is_done(day, "retrieval", retailer_id):
                payload = self.journal.task_payload(day, "retrieval", retailer_id)
            else:
                self._check("retrieval_build", retailer_id)
                payload = self._build_retrieval_index(day, retailer_id)
                self.journal.log_task(day, "retrieval", retailer_id, payload)
                self._check("retrieval_logged", retailer_id)
            snapshot = payload.get("metrics")
            if snapshot is not None:
                day_metrics.fold(snapshot)
            if not payload["built"]:
                continue
            report.indexes_built += 1
            if payload["accepted"]:
                accepted[retailer_id] = payload["index"]
            else:
                report.indexes_rejected += 1
        return accepted

    def _build_retrieval_index(
        self, day: int, retailer_id: str
    ) -> Dict[str, object]:
        """Build + recall-gate one retailer's index; the journaled unit.

        Below the size threshold no index is built, but the task is still
        journaled — the decision is part of the day's record, and the
        kill points above must exist for every retailer regardless of
        catalog size.
        """
        task_metrics = (
            MetricsRegistry() if self.metrics.enabled else NULL_METRICS
        )
        dataset = self._datasets[retailer_id]
        if dataset.n_items < self.retrieval_threshold:
            return {
                "built": False,
                "accepted": False,
                "reason": f"catalog below threshold {self.retrieval_threshold}",
                "index": None,
                "recall": None,
                "model_number": None,
                "metrics": task_metrics.snapshot(),
            }
        best = self.registry.best(retailer_id)
        try:
            adapter = ann_for_model(
                best.model,
                config=self.retrieval_config,
                metrics=task_metrics,
            )
        except SigmundError as exc:
            task_metrics.counter(
                "retrieval_indexes_built_total", outcome="failed"
            ).inc()
            return {
                "built": False,
                "accepted": False,
                "reason": f"retrieval: {exc}",
                "index": None,
                "recall": None,
                "model_number": best.model_number,
                "metrics": task_metrics.snapshot(),
            }
        adapter.model_number = best.model_number
        recall = measure_model_recall(
            best.model,
            adapter,
            k=min(100, adapter.n_items),
            seed=self.retrieval_config.seed + day,
        )
        task_metrics.gauge(
            "retrieval_recall", retailer=retailer_id
        ).set(recall)
        ok = recall >= self.retrieval_recall_target
        task_metrics.counter(
            "retrieval_indexes_built_total",
            outcome="accepted" if ok else "rejected",
        ).inc()
        return {
            "built": True,
            "accepted": ok,
            "reason": "" if ok else (
                f"recall {recall:.4f} below target "
                f"{self.retrieval_recall_target}"
            ),
            "index": adapter,
            "recall": recall,
            "model_number": best.model_number,
            "metrics": task_metrics.snapshot(),
        }

    # -- phase 2: per-cell inference -----------------------------------
    def _inference_phase(
        self,
        day: int,
        failure_reasons: Dict[str, str],
        report: DailyRunReport,
        day_metrics=NULL_METRICS,
        retrieval: Optional[Dict[str, ModelRetrieval]] = None,
    ) -> Tuple[Dict[str, InferenceResult], InferenceStats]:
        stats = InferenceStats()
        # A retailer whose training failed outright is served from
        # yesterday's tables; running inference on its stale registry
        # entry would hide the failure behind quietly old models.
        healthy = {
            retailer_id: dataset
            for retailer_id, dataset in self._datasets.items()
            if retailer_id not in failure_reasons
        }
        if self.journal.is_done(day, "infer_plan", "assignment"):
            payload = self.journal.task_payload(day, "infer_plan", "assignment")
            assignment: List[Tuple[str, List[str]]] = list(payload["assignment"])  # type: ignore[arg-type]
        else:
            self._check("inference_plan")
            # The cell assignment is journaled as *intent*: free capacity
            # changes as jobs run, so a recovery that replanned would bin
            # retailers differently and re-run work that already billed.
            assignment = self.inference.plan(healthy)
            self.journal.log_task(
                day, "infer_plan", "assignment", {"assignment": assignment}
            )

        results: Dict[str, InferenceResult] = {}
        failed: Dict[str, str] = {}
        phase_start = self.tracer.clock.now if self.tracer.enabled else 0.0
        phase_makespan = 0.0
        for cell_name, retailer_group in assignment:
            if self.journal.is_done(day, "infer", cell_name):
                payload = self.journal.task_payload(day, "infer", cell_name)
                results.update(payload["results"])  # type: ignore[arg-type]
                failed.update(payload["failed"])  # type: ignore[arg-type]
                if payload["job_stats"] is not None:
                    self.inference.fold_cell(
                        stats,
                        cell_name,
                        payload["job_stats"],  # type: ignore[arg-type]
                        int(payload["loads"]),  # type: ignore[arg-type]
                    )
            else:
                self._check("infer_cell", cell_name)
                group = {
                    rid: self._datasets[rid]
                    for rid in retailer_group
                    if rid in self._datasets
                }
                # Per-cell registry journaled with the payload, like the
                # train phase: recovery folds the recorded snapshot.
                cell_metrics = (
                    MetricsRegistry() if self.metrics.enabled else NULL_METRICS
                )
                payload: Dict[str, object]
                try:
                    cell_results, job_stats, loads, cell_failed = (
                        self.inference.run_cell(
                            cell_name,
                            group,
                            day,
                            metrics=cell_metrics,
                            tracer=self.tracer,
                            retrieval=retrieval or {},
                        )
                    )
                except SigmundError as exc:
                    cell_failed = {
                        rid: f"cell {cell_name!r}: {exc}" for rid in group
                    }
                    payload = {
                        "results": {},
                        "failed": cell_failed,
                        "job_stats": None,
                        "loads": 0,
                        "metrics": cell_metrics.snapshot(),
                    }
                    failed.update(cell_failed)
                else:
                    payload = {
                        "results": cell_results,
                        "failed": cell_failed,
                        "job_stats": job_stats,
                        "loads": loads,
                        "metrics": cell_metrics.snapshot(),
                    }
                    results.update(cell_results)
                    failed.update(cell_failed)
                    self.inference.fold_cell(stats, cell_name, job_stats, loads)
                self.journal.log_task(day, "infer", cell_name, payload)
                self._check("infer_logged", cell_name)
            snapshot = payload.get("metrics")
            if snapshot is not None:
                day_metrics.fold(snapshot)
            if self.tracer.enabled:
                job_stats_payload = payload.get("job_stats")
                cell_makespan = (
                    job_stats_payload.makespan_seconds
                    if job_stats_payload is not None
                    else 0.0
                )
                self.tracer.record_span(
                    "infer_cell",
                    phase_start,
                    phase_start + cell_makespan,
                    cell=cell_name,
                )
                phase_makespan = max(phase_makespan, cell_makespan)
        if self.tracer.enabled:
            self.tracer.clock.advance(phase_makespan)
        self.inference.finalize_stats(stats, results, failed)

        for retailer_id in stats.failed_retailers:
            failure_reasons.setdefault(
                retailer_id,
                "inference: "
                + stats.failure_reasons.get(retailer_id, "failed"),
            )
        report.inference_cost = stats.total_cost
        report.inference_makespan = stats.makespan_seconds
        report.preemptions += stats.preemptions
        return results, stats

    # -- phase 3: gated publish ----------------------------------------
    def _publish_phase(
        self,
        day: int,
        results: Dict[str, InferenceResult],
        failure_reasons: Dict[str, str],
        report: DailyRunReport,
        day_metrics=NULL_METRICS,
    ) -> List[str]:
        """Validate and atomically load each retailer's tables; returns
        the retailers actually served fresh today."""
        version = day + 1
        served: List[str] = []
        for retailer_id in sorted(results):
            if self.journal.is_done(day, "publish", retailer_id):
                payload = self.journal.task_payload(day, "publish", retailer_id)
                accepted = bool(payload["accepted"])
                reason = str(payload["reason"])
            else:
                self._check("publish", retailer_id)
                result = results[retailer_id]
                accepted, reason = self._publish_retailer(
                    day, retailer_id, result, version
                )
                self.journal.log_task(
                    day,
                    "publish",
                    retailer_id,
                    {"accepted": accepted, "reason": reason},
                )
                self._check("publish_logged", retailer_id)
            day_metrics.counter(
                "publish_total",
                retailer=retailer_id,
                outcome="accepted" if accepted else "rejected",
            ).inc()
            if accepted:
                served.append(retailer_id)
            else:
                report.publishes_rejected += 1
                failure_reasons[retailer_id] = reason
        report.retailers_served = len(served)
        return served

    def _publish_retailer(
        self,
        day: int,
        retailer_id: str,
        result: InferenceResult,
        version: int,
    ) -> Tuple[bool, str]:
        """Gate both surfaces, then load them; returns (accepted, reason).

        A crash between the two loads leaves the substitutes store ahead
        of the accessories store; recovery detects that (the substitutes
        table is already at today's version, which can only mean both
        surfaces passed validation before the first load) and completes
        the pair without re-validating — re-validation would wrongly
        reject today's version as "not newer" than itself.
        """
        view_done = (self.substitutes_store.version_of(retailer_id) or -1) >= version
        if not view_done:
            n_items = (
                self._datasets[retailer_id].n_items
                if retailer_id in self._datasets
                else 0
            )
            current_map = (
                self.registry.best(retailer_id).map_at_10
                if self.registry.has_models(retailer_id)
                else None
            )
            previous_map = self.monitor.last_map(retailer_id, day)
            view_decision = self.gate.validate(
                retailer_id,
                result.view_recs,
                version,
                self.substitutes_store,
                n_items,
                current_map=current_map,
                previous_map=previous_map,
            )
            # An empty complements table is a legitimate state for a
            # retailer with no conversion co-occurrence yet; the gate
            # still vets scores and version.
            purchase_decision = self.gate.validate(
                retailer_id,
                result.purchase_recs,
                version,
                self.accessories_store,
                n_items,
                current_map=current_map,
                previous_map=previous_map,
                allow_empty=True,
            )
            if not (view_decision.accepted and purchase_decision.accepted):
                # Neither surface loads: the retailer keeps serving its
                # complete last-good tables on both, never a mixed pair.
                reasons = view_decision.reasons + purchase_decision.reasons
                return False, "publish: " + "; ".join(reasons)
            self.substitutes_store.load_batch(
                retailer_id, result.view_recs, version=version
            )
        self._check("publish_mid", retailer_id)
        if (self.accessories_store.version_of(retailer_id) or -1) < version:
            self.accessories_store.load_batch(
                retailer_id, result.purchase_recs, version=version
            )
        self._load_retrieval_index(day, retailer_id, version)
        return True, ""

    def _load_retrieval_index(
        self, day: int, retailer_id: str, version: int
    ) -> None:
        """Publish the day's accepted ANN index with the tables.

        The index rides the table's version: it only loads when the
        retrieval task journaled an accepted index, and skips (idempotent
        on recovery) when the store is already at today's version.
        """
        if not self.journal.is_done(day, "retrieval", retailer_id):
            return
        payload = self.journal.task_payload(day, "retrieval", retailer_id)
        if not payload["accepted"]:
            return
        if (self.retrieval_store.version_of(retailer_id) or -1) >= version:
            return
        self.retrieval_store.load(retailer_id, payload["index"], version)

    def rollback_retailer(self, retailer_id: str) -> int:
        """Roll every serving artifact back to its last-good version.

        Both recommendation tables and, when one was published alongside
        them, the retrieval index — a rolled-back table served with the
        newer model's index would recommend from mismatched embeddings.
        Returns the version now being served.
        """
        version = self.substitutes_store.rollback(retailer_id)
        self.accessories_store.rollback(retailer_id)
        if self.retrieval_store.has_retailer(retailer_id):
            try:
                self.retrieval_store.rollback(retailer_id)
            except SigmundError:
                # The index predates today's tables (e.g. the catalog only
                # crossed the threshold today): drop it rather than serve
                # an index for a table version that no longer exists.
                self.retrieval_store.drop_retailer(retailer_id)
        return version

    # -- phase 4: wrap-up (monitoring, detectors, commit) --------------
    def _wrapup_phase(
        self,
        day: int,
        served: List[str],
        failure_reasons: Dict[str, str],
        report: DailyRunReport,
        day_metrics=NULL_METRICS,
    ) -> None:
        # The kill point sits *before* any monitor mutation: recording is
        # not idempotent, so a wrap-up crash must happen before all of it
        # and recovery then performs the whole pass exactly once.
        self._check("wrapup")
        report.failed_retailers = sorted(failure_reasons)
        report.failure_reasons = dict(failure_reasons)
        for retailer_id in report.failed_retailers:
            # Graceful degradation: the store still holds the last good
            # table (versioned batch loads never partially apply), so the
            # retailer keeps serving — just stale.  Only a retailer that
            # never had a table (day-0 failure) goes unserved.
            if self.substitutes_store.has_retailer(retailer_id):
                report.retailers_stale += 1
            else:
                report.retailers_unserved += 1
            self.monitor.record_failure(
                retailer_id,
                day,
                stage=failure_reasons[retailer_id].split(":", 1)[0],
                detail=failure_reasons[retailer_id],
            )
            report.alerts += 1
            day_metrics.counter("alerts_total", kind="failure").inc()

        # Refresh the re-purchase surface (section III-D1): detectors are
        # rebuilt daily from the latest training data.
        for retailer_id, dataset in self._datasets.items():
            self._repurchase[retailer_id] = RepurchaseDetector(
                dataset.taxonomy, dataset.train
            )

        for retailer_id in self._datasets:
            # Failed retailers already got an availability alert; their
            # registry entry is yesterday's, so recording it as today's
            # metric would just mask the failure.
            if retailer_id in failure_reasons:
                continue
            if self.registry.has_models(retailer_id):
                best = self.registry.best(retailer_id)
                alert = self.monitor.record(retailer_id, day, best.map_at_10)
                if alert is not None:
                    report.alerts += 1
                    day_metrics.counter(
                        "alerts_total", kind="regression"
                    ).inc()

        day_metrics.counter("retailers_total", status="served").inc(
            report.retailers_served
        )
        day_metrics.counter("retailers_total", status="stale").inc(
            report.retailers_stale
        )
        day_metrics.counter("retailers_total", status="unserved").inc(
            report.retailers_unserved
        )

        # The seal is written atomically with the commit record; it is
        # the artifact the crash-recovery parity suite compares byte for
        # byte between recovered and uninterrupted runs.
        seal = build_day_seal(
            day,
            report.sweep_kind,
            report,
            day_metrics.snapshot(),
            self.retailers,
        )
        self.journal.commit_day(day, seal=seal)
        self.monitor.record_day_snapshot(day, seal)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def best_map(self, retailer_id: str) -> float:
        return self.registry.best(retailer_id).map_at_10

    def total_cost(self) -> float:
        """Total billed compute (job accounts only, not attribution views)."""
        return sum(
            amount
            for account, amount in self.ledger.accounts().items()
            if not account.startswith("chargeback/")
        )

    def repurchase_recommendations(
        self, retailer_id: str, user_id: int, now: Optional[float] = None
    ) -> List[int]:
        """Items this user is due to buy again (periodic surface, §III-D1).

        Requires at least one completed daily run (detectors are rebuilt
        per day).  ``now`` defaults to just past the user's last event.
        """
        detector = self._repurchase.get(retailer_id)
        dataset = self._datasets.get(retailer_id)
        if detector is None or dataset is None:
            raise DataError(
                f"no re-purchase surface for {retailer_id!r}; run a day first"
            )
        history = dataset.train_histories().get(user_id, [])
        if not history:
            return []
        if now is None:
            now = history[-1].timestamp + 1.0
        return detector.due_for_repurchase(history, now)

    def retailer_costs(self) -> Dict[str, float]:
        """Per-retailer charge-back attribution of all compute so far.

        Sigmund deliberately does not *bill* retailers (section V), but
        the attribution answers capacity-planning questions; the values
        sum to :meth:`total_cost` up to estimation error.
        """
        return {
            account.split("/", 1)[1]: amount
            for account, amount in self.ledger.accounts_with_prefix(
                "chargeback/"
            ).items()
        }
