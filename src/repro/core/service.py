"""The Sigmund service: onboarding, daily runs, periodic full restarts.

This ties every subsystem together into the loop the paper describes:

1. retailers sign up (their datasets enter the fleet),
2. every day: plan a sweep (full on day 0 or on the periodic restart,
   incremental otherwise), train on pre-emptible capacity, publish to the
   registry, run offline inference, and batch-load the serving stores,
3. record quality metrics and raise regression alerts,
4. every ``full_restart_every`` days, discard history and re-run the full
   grid — the terms-of-service constraint that models reflect only recent
   history, which also re-finds hyper-parameters after data drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.cell import Cluster
from repro.cluster.cost import CostLedger, ResourcePricing
from repro.cluster.preemption import PreemptionModel
from repro.core.candidates import RepurchaseDetector
from repro.core.grid import GridSpec
from repro.core.inference import InferencePipeline, InferenceStats
from repro.core.monitoring import QualityMonitor
from repro.core.registry import ModelRegistry
from repro.core.sweep import SweepPlanner
from repro.core.training import PipelineStats, TrainerSettings, TrainingPipeline
from repro.data.datasets import RetailerDataset
from repro.exceptions import DataError
from repro.serving.server import RecommendationServer
from repro.serving.store import RecommendationStore

#: Paper: "periodically we restart the full model selection".
DEFAULT_FULL_RESTART_EVERY = 30


@dataclass
class DailyRunReport:
    """Everything one daily run did, for logs and benchmarks."""

    day: int
    sweep_kind: str = "incremental"
    configs_trained: int = 0
    retailers_served: int = 0
    training_cost: float = 0.0
    inference_cost: float = 0.0
    training_makespan: float = 0.0
    inference_makespan: float = 0.0
    preemptions: int = 0
    alerts: int = 0

    @property
    def total_cost(self) -> float:
        return self.training_cost + self.inference_cost


class SigmundService:
    """Recommendations-as-a-service for a fleet of retailers."""

    def __init__(
        self,
        cluster: Cluster,
        grid: GridSpec = GridSpec.small(),
        settings: TrainerSettings = TrainerSettings(),
        pricing: ResourcePricing = ResourcePricing(),
        preemption_model: PreemptionModel = PreemptionModel(),
        top_k_incremental: int = 3,
        full_restart_every: int = DEFAULT_FULL_RESTART_EVERY,
        seed: int = 0,
    ):
        self.cluster = cluster
        self.registry = ModelRegistry()
        self.monitor = QualityMonitor()
        self.ledger = CostLedger(pricing)
        self.planner = SweepPlanner(grid, top_k=top_k_incremental, base_seed=seed)
        self.training = TrainingPipeline(
            cluster,
            self.registry,
            settings=settings,
            pricing=pricing,
            preemption_model=preemption_model,
            ledger=self.ledger,
            seed=seed,
        )
        self.inference = InferencePipeline(
            cluster,
            self.registry,
            pricing=pricing,
            preemption_model=preemption_model,
            ledger=self.ledger,
            seed=seed + 1,
        )
        self.substitutes_store = RecommendationStore()
        self.accessories_store = RecommendationStore()
        self.substitutes_server = RecommendationServer(self.substitutes_store)
        self.accessories_server = RecommendationServer(self.accessories_store)
        self.full_restart_every = full_restart_every
        self._datasets: Dict[str, RetailerDataset] = {}
        self._repurchase: Dict[str, RepurchaseDetector] = {}
        self._next_day = 0
        self.reports: List[DailyRunReport] = []

    # ------------------------------------------------------------------
    # Fleet management
    # ------------------------------------------------------------------
    def onboard(self, dataset: RetailerDataset) -> None:
        """Sign a retailer up; first training happens on the next run."""
        if dataset.retailer_id in self._datasets:
            raise DataError(f"retailer {dataset.retailer_id!r} already onboarded")
        self._datasets[dataset.retailer_id] = dataset

    def update_dataset(self, dataset: RetailerDataset) -> None:
        """Replace a retailer's data (new day's interactions arrived)."""
        if dataset.retailer_id not in self._datasets:
            raise DataError(f"retailer {dataset.retailer_id!r} not onboarded")
        self._datasets[dataset.retailer_id] = dataset

    def offboard(self, retailer_id: str) -> None:
        """Remove a retailer and every artifact derived from its data.

        Besides the dataset and registry entries, this purges the serving
        tables and the re-purchase detector — all of them are derived from
        the tenant's interaction data, and the store's privacy framing
        forbids keeping any of it alive after departure.
        """
        self._datasets.pop(retailer_id, None)
        self.registry.drop_retailer(retailer_id)
        self.substitutes_store.drop_retailer(retailer_id)
        self.accessories_store.drop_retailer(retailer_id)
        self._repurchase.pop(retailer_id, None)

    @property
    def retailers(self) -> List[str]:
        return sorted(self._datasets)

    # ------------------------------------------------------------------
    # The daily loop
    # ------------------------------------------------------------------
    def run_day(self, force_full_sweep: bool = False) -> DailyRunReport:
        """One full daily cycle: sweep -> train -> infer -> serve -> monitor."""
        day = self._next_day
        self._next_day += 1
        datasets = list(self._datasets.values())
        report = DailyRunReport(day=day)
        if not datasets:
            self.reports.append(report)
            return report

        full = (
            force_full_sweep
            or day == 0
            or (self.full_restart_every > 0 and day % self.full_restart_every == 0)
        )
        if full:
            plan = self.planner.full_sweep(datasets, day=day)
            report.sweep_kind = "full"
        else:
            plan = self.planner.incremental_sweep(datasets, self.registry, day=day)
            report.sweep_kind = "incremental"

        outputs, train_stats = self.training.run(
            plan.configs, self._datasets, day=day
        )
        report.configs_trained = train_stats.configs_trained
        report.training_cost = train_stats.total_cost
        report.training_makespan = train_stats.makespan_seconds
        report.preemptions += train_stats.preemptions

        results, infer_stats = self.inference.run(self._datasets, day=day)
        report.inference_cost = infer_stats.total_cost
        report.inference_makespan = infer_stats.makespan_seconds
        report.preemptions += infer_stats.preemptions

        for retailer_id, result in results.items():
            self.substitutes_store.load_batch(
                retailer_id, result.view_recs, version=day + 1
            )
            self.accessories_store.load_batch(
                retailer_id, result.purchase_recs, version=day + 1
            )
        report.retailers_served = len(results)

        # Refresh the re-purchase surface (section III-D1): detectors are
        # rebuilt daily from the latest training data.
        for retailer_id, dataset in self._datasets.items():
            self._repurchase[retailer_id] = RepurchaseDetector(
                dataset.taxonomy, dataset.train
            )

        for retailer_id in self._datasets:
            if self.registry.has_models(retailer_id):
                best = self.registry.best(retailer_id)
                alert = self.monitor.record(retailer_id, day, best.map_at_10)
                if alert is not None:
                    report.alerts += 1

        self.reports.append(report)
        return report

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def best_map(self, retailer_id: str) -> float:
        return self.registry.best(retailer_id).map_at_10

    def total_cost(self) -> float:
        """Total billed compute (job accounts only, not attribution views)."""
        return sum(
            amount
            for account, amount in self.ledger.accounts().items()
            if not account.startswith("chargeback/")
        )

    def repurchase_recommendations(
        self, retailer_id: str, user_id: int, now: Optional[float] = None
    ) -> List[int]:
        """Items this user is due to buy again (periodic surface, §III-D1).

        Requires at least one completed daily run (detectors are rebuilt
        per day).  ``now`` defaults to just past the user's last event.
        """
        detector = self._repurchase.get(retailer_id)
        dataset = self._datasets.get(retailer_id)
        if detector is None or dataset is None:
            raise DataError(
                f"no re-purchase surface for {retailer_id!r}; run a day first"
            )
        history = dataset.train_histories().get(user_id, [])
        if not history:
            return []
        if now is None:
            now = history[-1].timestamp + 1.0
        return detector.due_for_repurchase(history, now)

    def retailer_costs(self) -> Dict[str, float]:
        """Per-retailer charge-back attribution of all compute so far.

        Sigmund deliberately does not *bill* retailers (section V), but
        the attribution answers capacity-planning questions; the values
        sum to :meth:`total_cost` up to estimation error.
        """
        return {
            account.split("/", 1)[1]: amount
            for account, amount in self.ledger.accounts_with_prefix(
                "chargeback/"
            ).items()
        }
