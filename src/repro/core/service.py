"""The Sigmund service: onboarding, daily runs, periodic full restarts.

This ties every subsystem together into the loop the paper describes:

1. retailers sign up (their datasets enter the fleet),
2. every day: plan a sweep (full on day 0 or on the periodic restart,
   incremental otherwise), train on pre-emptible capacity, publish to the
   registry, run offline inference, and batch-load the serving stores,
3. record quality metrics and raise regression alerts,
4. every ``full_restart_every`` days, discard history and re-run the full
   grid — the terms-of-service constraint that models reflect only recent
   history, which also re-finds hyper-parameters after data drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.cell import Cluster
from repro.cluster.cost import CostLedger, ResourcePricing
from repro.cluster.preemption import PreemptionModel
from repro.core.candidates import RepurchaseDetector
from repro.core.grid import GridSpec
from repro.core.inference import InferencePipeline, InferenceStats
from repro.core.monitoring import QualityMonitor
from repro.core.registry import ModelRegistry
from repro.core.sweep import SweepPlanner
from repro.core.training import PipelineStats, TrainerSettings, TrainingPipeline
from repro.data.datasets import RetailerDataset
from repro.exceptions import DataError, SigmundError
from repro.mapreduce.runtime import FaultPlan
from repro.serving.server import RecommendationServer
from repro.serving.store import RecommendationStore

#: Paper: "periodically we restart the full model selection".
DEFAULT_FULL_RESTART_EVERY = 30


@dataclass
class DailyRunReport:
    """Everything one daily run did, for logs and benchmarks."""

    day: int
    sweep_kind: str = "incremental"
    configs_trained: int = 0
    configs_failed: int = 0
    retailers_served: int = 0
    #: Retailers kept on yesterday's table after today's pipeline failed.
    retailers_stale: int = 0
    #: Failed retailers with no previous table to fall back on (day-0
    #: failures) — the only case a retailer is not served at all.
    retailers_unserved: int = 0
    training_cost: float = 0.0
    inference_cost: float = 0.0
    training_makespan: float = 0.0
    inference_makespan: float = 0.0
    preemptions: int = 0
    alerts: int = 0
    #: Retailers whose training or inference failed today, with reasons.
    failed_retailers: List[str] = field(default_factory=list)
    failure_reasons: Dict[str, str] = field(default_factory=dict)

    @property
    def total_cost(self) -> float:
        return self.training_cost + self.inference_cost

    @property
    def availability(self) -> float:
        """Fraction of retailers served at all (fresh or stale) today."""
        fleet = self.retailers_served + self.retailers_stale + self.retailers_unserved
        if fleet == 0:
            return 1.0
        return 1.0 - self.retailers_unserved / fleet


class SigmundService:
    """Recommendations-as-a-service for a fleet of retailers."""

    def __init__(
        self,
        cluster: Cluster,
        grid: GridSpec = GridSpec.small(),
        settings: TrainerSettings = TrainerSettings(),
        pricing: ResourcePricing = ResourcePricing(),
        preemption_model: PreemptionModel = PreemptionModel(),
        top_k_incremental: int = 3,
        full_restart_every: int = DEFAULT_FULL_RESTART_EVERY,
        seed: int = 0,
        fault_plan: Optional[FaultPlan] = None,
    ):
        self.cluster = cluster
        self.registry = ModelRegistry()
        self.monitor = QualityMonitor()
        self.ledger = CostLedger(pricing)
        self.planner = SweepPlanner(grid, top_k=top_k_incremental, base_seed=seed)
        self.training = TrainingPipeline(
            cluster,
            self.registry,
            settings=settings,
            pricing=pricing,
            preemption_model=preemption_model,
            ledger=self.ledger,
            seed=seed,
            fault_plan=fault_plan,
        )
        self.inference = InferencePipeline(
            cluster,
            self.registry,
            pricing=pricing,
            preemption_model=preemption_model,
            ledger=self.ledger,
            seed=seed + 1,
            fault_plan=fault_plan,
        )
        self.substitutes_store = RecommendationStore()
        self.accessories_store = RecommendationStore()
        self.substitutes_server = RecommendationServer(self.substitutes_store)
        self.accessories_server = RecommendationServer(self.accessories_store)
        self.full_restart_every = full_restart_every
        self._datasets: Dict[str, RetailerDataset] = {}
        self._repurchase: Dict[str, RepurchaseDetector] = {}
        self._next_day = 0
        self.reports: List[DailyRunReport] = []

    # ------------------------------------------------------------------
    # Fleet management
    # ------------------------------------------------------------------
    def onboard(self, dataset: RetailerDataset) -> None:
        """Sign a retailer up; first training happens on the next run."""
        if dataset.retailer_id in self._datasets:
            raise DataError(f"retailer {dataset.retailer_id!r} already onboarded")
        self._datasets[dataset.retailer_id] = dataset

    def update_dataset(self, dataset: RetailerDataset) -> None:
        """Replace a retailer's data (new day's interactions arrived)."""
        if dataset.retailer_id not in self._datasets:
            raise DataError(f"retailer {dataset.retailer_id!r} not onboarded")
        self._datasets[dataset.retailer_id] = dataset

    def offboard(self, retailer_id: str) -> None:
        """Remove a retailer and every artifact derived from its data.

        Besides the dataset and registry entries, this purges the serving
        tables and the re-purchase detector — all of them are derived from
        the tenant's interaction data, and the store's privacy framing
        forbids keeping any of it alive after departure.
        """
        self._datasets.pop(retailer_id, None)
        self.registry.drop_retailer(retailer_id)
        self.substitutes_store.drop_retailer(retailer_id)
        self.accessories_store.drop_retailer(retailer_id)
        self._repurchase.pop(retailer_id, None)

    @property
    def retailers(self) -> List[str]:
        return sorted(self._datasets)

    # ------------------------------------------------------------------
    # The daily loop
    # ------------------------------------------------------------------
    def run_day(self, force_full_sweep: bool = False) -> DailyRunReport:
        """One full daily cycle: sweep -> train -> infer -> serve -> monitor."""
        day = self._next_day
        self._next_day += 1
        datasets = list(self._datasets.values())
        report = DailyRunReport(day=day)
        if not datasets:
            self.reports.append(report)
            return report

        full = (
            force_full_sweep
            or day == 0
            or (self.full_restart_every > 0 and day % self.full_restart_every == 0)
        )
        if full:
            plan = self.planner.full_sweep(datasets, day=day)
            report.sweep_kind = "full"
        else:
            plan = self.planner.incremental_sweep(datasets, self.registry, day=day)
            report.sweep_kind = "incremental"

        failure_reasons: Dict[str, str] = {}
        try:
            outputs, train_stats = self.training.run(
                plan.configs, self._datasets, day=day
            )
        except SigmundError as exc:
            # Catastrophic sweep failure (e.g. the cluster lost all free
            # capacity): nobody trains today, everybody degrades to
            # yesterday's models — but the day still completes.
            train_stats = PipelineStats()
            for retailer_id in sorted({c.retailer_id for c in plan.configs}):
                failure_reasons[retailer_id] = f"training: {exc}"
        else:
            for failure in train_stats.failures:
                if failure.retailer_id in train_stats.failed_retailers:
                    failure_reasons.setdefault(
                        failure.retailer_id, f"training: {failure.error}"
                    )
        report.configs_trained = train_stats.configs_trained
        report.configs_failed = train_stats.configs_failed
        report.training_cost = train_stats.total_cost
        report.training_makespan = train_stats.makespan_seconds
        report.preemptions += train_stats.preemptions

        # A retailer whose training failed outright is served from
        # yesterday's tables; running inference on its stale registry
        # entry would hide the failure behind quietly old models.
        healthy = {
            retailer_id: dataset
            for retailer_id, dataset in self._datasets.items()
            if retailer_id not in failure_reasons
        }
        try:
            results, infer_stats = self.inference.run(healthy, day=day)
        except SigmundError as exc:
            results, infer_stats = {}, InferenceStats()
            for retailer_id in healthy:
                if self.registry.has_models(retailer_id):
                    failure_reasons[retailer_id] = f"inference: {exc}"
        else:
            for retailer_id in infer_stats.failed_retailers:
                failure_reasons.setdefault(
                    retailer_id,
                    "inference: "
                    + infer_stats.failure_reasons.get(retailer_id, "failed"),
                )
        report.inference_cost = infer_stats.total_cost
        report.inference_makespan = infer_stats.makespan_seconds
        report.preemptions += infer_stats.preemptions

        for retailer_id, result in results.items():
            self.substitutes_store.load_batch(
                retailer_id, result.view_recs, version=day + 1
            )
            self.accessories_store.load_batch(
                retailer_id, result.purchase_recs, version=day + 1
            )
        report.retailers_served = len(results)
        report.failed_retailers = sorted(failure_reasons)
        report.failure_reasons = dict(failure_reasons)
        for retailer_id in report.failed_retailers:
            # Graceful degradation: the store still holds the last good
            # table (versioned batch loads never partially apply), so the
            # retailer keeps serving — just stale.  Only a retailer that
            # never had a table (day-0 failure) goes unserved.
            if self.substitutes_store.has_retailer(retailer_id):
                report.retailers_stale += 1
            else:
                report.retailers_unserved += 1
            self.monitor.record_failure(
                retailer_id,
                day,
                stage=failure_reasons[retailer_id].split(":", 1)[0],
                detail=failure_reasons[retailer_id],
            )
            report.alerts += 1

        # Refresh the re-purchase surface (section III-D1): detectors are
        # rebuilt daily from the latest training data.
        for retailer_id, dataset in self._datasets.items():
            self._repurchase[retailer_id] = RepurchaseDetector(
                dataset.taxonomy, dataset.train
            )

        for retailer_id in self._datasets:
            # Failed retailers already got an availability alert; their
            # registry entry is yesterday's, so recording it as today's
            # metric would just mask the failure.
            if retailer_id in failure_reasons:
                continue
            if self.registry.has_models(retailer_id):
                best = self.registry.best(retailer_id)
                alert = self.monitor.record(retailer_id, day, best.map_at_10)
                if alert is not None:
                    report.alerts += 1

        self.reports.append(report)
        return report

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def best_map(self, retailer_id: str) -> float:
        return self.registry.best(retailer_id).map_at_10

    def total_cost(self) -> float:
        """Total billed compute (job accounts only, not attribution views)."""
        return sum(
            amount
            for account, amount in self.ledger.accounts().items()
            if not account.startswith("chargeback/")
        )

    def repurchase_recommendations(
        self, retailer_id: str, user_id: int, now: Optional[float] = None
    ) -> List[int]:
        """Items this user is due to buy again (periodic surface, §III-D1).

        Requires at least one completed daily run (detectors are rebuilt
        per day).  ``now`` defaults to just past the user's last event.
        """
        detector = self._repurchase.get(retailer_id)
        dataset = self._datasets.get(retailer_id)
        if detector is None or dataset is None:
            raise DataError(
                f"no re-purchase surface for {retailer_id!r}; run a day first"
            )
        history = dataset.train_histories().get(user_id, [])
        if not history:
            return []
        if now is None:
            now = history[-1].timestamp + 1.0
        return detector.due_for_repurchase(history, now)

    def retailer_costs(self) -> Dict[str, float]:
        """Per-retailer charge-back attribution of all compute so far.

        Sigmund deliberately does not *bill* retailers (section V), but
        the attribution answers capacity-planning questions; the values
        sum to :meth:`total_cost` up to estimation error.
        """
        return {
            account.split("/", 1)[1]: amount
            for account, amount in self.ledger.accounts_with_prefix(
                "chargeback/"
            ).items()
        }
