"""Candidate selection for inference (paper section III-D1).

Naively ranking every item per context is quadratic in catalog size.
Sigmund instead selects ~a thousand likely candidates per item:

* **View-based** (substitutes): ``C = union over j in cv(i) of lca_k(j)``
  — taxonomy-expand the co-viewed items.  ``k = 2`` is the paper's
  empirical sweet spot between precision and coverage.
* **Purchase-based** (complements/accessories):
  ``C = union over j in cb(i) of lca_1(j) minus lca_1(i)`` — co-bought
  items expanded tightly, with the query item's own substitutes removed.
* **Re-purchasable categories** (diapers, water): detected by repeat
  purchases; for them the substitutes are *not* removed and periodic
  recommendations are made on the category's observed repurchase cycle.
* **Late-funnel users** get candidates constrained to the query item's
  facets (same color apparel, same weight-class laptop, ...).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.cooccurrence.counts import CoOccurrenceCounts
from repro.data.catalog import Catalog
from repro.data.events import EventType, Interaction
from repro.data.sessions import UserContext
from repro.data.taxonomy import Taxonomy
from repro.exceptions import DataError
from repro.obs.metrics import NULL_METRICS

#: Paper: "empirically we found that setting k = 2 provides a good
#: trade-off between quality and coverage" for view-based selection.
DEFAULT_VIEW_LCA_K = 2
#: Paper: "expanding with lca1 provides the best recommendations" for
#: purchase-based selection.
DEFAULT_PURCHASE_LCA_K = 1
#: Paper: "select a subset of likely candidates (about a thousand)".
DEFAULT_MAX_CANDIDATES = 1000
#: How many co-occurring neighbours seed the expansion.
DEFAULT_CO_NEIGHBOURS = 20
#: Per-item candidate count requested from a retrieval index when one is
#: attached — far below ``max_candidates`` because ANN neighbours are
#: already ranked by model score rather than taxonomy membership.
DEFAULT_RETRIEVAL_CANDIDATES = 256


def classify_funnel(context: UserContext, taxonomy: Taxonomy) -> str:
    """Classify a user context as ``"early"`` or ``"late"`` funnel.

    Paper section III-D1: "we also distinguish between early funnel and
    late funnel users.  For late funnel users, we focus very close to the
    viewed item".  A user is late-funnel when their recent actions show
    *converged intent*: strong events (search/cart) concentrated in one
    category neighbourhood.  Browsing across categories is early funnel.
    """
    if len(context) < 2:
        return "early"
    recent_items = context.item_indices[-4:]
    recent_events = context.events[-4:]
    has_strong_intent = any(
        event >= EventType.SEARCH for event in recent_events
    )
    if not has_strong_intent:
        return "early"
    categorized = [
        item for item in recent_items if taxonomy.has_item(item)
    ]
    if len(categorized) < 2:
        return "early"
    anchor = categorized[-1]
    near = sum(
        1
        for item in categorized
        if taxonomy.lca_distance(item, anchor) <= 2
    )
    return "late" if near / len(categorized) >= 0.75 else "early"


class RepurchaseDetector:
    """Finds categories users buy repeatedly, and their purchase cadence."""

    def __init__(
        self,
        taxonomy: Taxonomy,
        interactions: Sequence[Interaction],
        min_repeat_users: int = 2,
    ):
        self.taxonomy = taxonomy
        self.min_repeat_users = min_repeat_users
        self._repeat_users: Dict[str, Set[int]] = defaultdict(set)
        self._gaps: Dict[str, List[float]] = defaultdict(list)
        self._observe(interactions)

    def _observe(self, interactions: Sequence[Interaction]) -> None:
        last_purchase: Dict[tuple, float] = {}
        for interaction in sorted(interactions, key=lambda it: it.timestamp):
            if interaction.event != EventType.CONVERSION:
                continue
            if not self.taxonomy.has_item(interaction.item_index):
                continue
            category = self.taxonomy.category_of(interaction.item_index)
            key = (interaction.user_id, category)
            previous = last_purchase.get(key)
            if previous is not None:
                self._repeat_users[category].add(interaction.user_id)
                self._gaps[category].append(interaction.timestamp - previous)
            last_purchase[key] = interaction.timestamp

    def is_repurchasable(self, category_id: str) -> bool:
        """A category enough distinct users purchased twice or more."""
        return len(self._repeat_users.get(category_id, ())) >= self.min_repeat_users

    def repurchasable_categories(self) -> List[str]:
        return sorted(
            category
            for category, users in self._repeat_users.items()
            if len(users) >= self.min_repeat_users
        )

    def mean_repurchase_gap(self, category_id: str) -> Optional[float]:
        """Average time between purchases in the category (None if unknown)."""
        gaps = self._gaps.get(category_id)
        if not gaps:
            return None
        return sum(gaps) / len(gaps)

    def due_for_repurchase(
        self, history: Sequence[Interaction], now: float, slack: float = 0.25
    ) -> List[int]:
        """Items whose category cycle says the user is due to buy again.

        An item is due when ``now - last_purchase >= (1 - slack) * cycle``.
        """
        due = []
        last_by_item: Dict[int, float] = {}
        for interaction in history:
            if interaction.event == EventType.CONVERSION:
                last_by_item[interaction.item_index] = max(
                    last_by_item.get(interaction.item_index, 0.0),
                    interaction.timestamp,
                )
        for item, last_time in last_by_item.items():
            if not self.taxonomy.has_item(item):
                continue
            category = self.taxonomy.category_of(item)
            if not self.is_repurchasable(category):
                continue
            cycle = self.mean_repurchase_gap(category)
            if cycle is None:
                continue
            if now - last_time >= (1.0 - slack) * cycle:
                due.append(item)
        return sorted(due)


@dataclass
class CandidateSelector:
    """Produces the ranked-candidate pool for each item (per retailer)."""

    taxonomy: Taxonomy
    counts: CoOccurrenceCounts
    catalog: Catalog
    repurchase: Optional[RepurchaseDetector] = None
    view_lca_k: int = DEFAULT_VIEW_LCA_K
    purchase_lca_k: int = DEFAULT_PURCHASE_LCA_K
    max_candidates: int = DEFAULT_MAX_CANDIDATES
    co_neighbours: int = DEFAULT_CO_NEIGHBOURS
    #: Where batch-selection counters land; the inference pipeline re-binds
    #: this to the current run's registry (selectors are cached across days).
    metrics: object = field(default=NULL_METRICS, repr=False, compare=False)
    #: Optional :class:`~repro.retrieval.backend.ModelRetrieval` adapter.
    #: When attached (large catalogs), the batch selection methods source
    #: candidates from the ANN index instead of walking the taxonomy —
    #: the inference pipeline re-binds this per run, like ``metrics``.
    retrieval: Optional[object] = field(
        default=None, repr=False, compare=False
    )
    #: Neighbours requested per item from the retrieval index.
    retrieval_k: int = DEFAULT_RETRIEVAL_CANDIDATES
    #: Memo of subtree item sets used by the batch methods, keyed by the
    #: subtree's root category, as sorted int64 arrays.  ``lca_k(item, k)``
    #: for ``k >= 1`` is exactly the subtree of the ancestor ``k - 1``
    #: levels above the item's category, so tens of thousands of items
    #: share a few hundred entries here.
    _subtree_memo: Dict[str, np.ndarray] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    #: ``(category, k) -> subtree root`` (the ancestor ``k - 1`` up).
    _root_memo: Dict[Tuple[str, int], str] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    #: Computed unions keyed by their sorted subtree-root tuple; items
    #: whose co-occurrence neighbourhoods resolve to the same subtrees
    #: (the common case inside one category) share one entry.
    _union_memo: Dict[Tuple[str, ...], np.ndarray] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    #: Strict-ancestor sets per category, for nested-subtree checks.
    _ancestry_memo: Dict[str, frozenset] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.max_candidates < 1:
            raise DataError("max_candidates must be >= 1")

    def _subtree_array(self, root_category: str) -> np.ndarray:
        """Sorted item array of one category subtree, computed once."""
        subtree = self._subtree_memo.get(root_category)
        if subtree is None:
            members = self.taxonomy.items_in(root_category, include_descendants=True)
            subtree = np.sort(np.asarray(members, dtype=np.int64))
            self._subtree_memo[root_category] = subtree
        return subtree

    def _expansion(self, item_index: int, k: int) -> np.ndarray:
        """``taxonomy.lca_k`` as a sorted array, memoized for ``k >= 1``."""
        if k < 1:
            return np.asarray(self.taxonomy.lca_k(item_index, k), dtype=np.int64)
        category = self.taxonomy.category_of(item_index)
        return self._subtree_array(
            self.taxonomy.ancestor_at_distance(category, k - 1)
        )

    def _ancestry(self, category: str) -> frozenset:
        """Strict ancestors of ``category``, memoized."""
        ancestry = self._ancestry_memo.get(category)
        if ancestry is None:
            ancestry = frozenset(
                self.taxonomy.ancestors(category, include_self=False)
            )
            self._ancestry_memo[category] = ancestry
        return ancestry

    def _union_expansions(self, seeds: Sequence[int], k: int) -> np.ndarray:
        """Sorted union of the seeds' expansions, early break included.

        Mirrors the reference loop exactly: expansions accumulate in seed
        order and stop at the first seed that pushes the running union
        past ``max_candidates * 4``.  Because two category subtrees are
        either disjoint or nested, the running union is tracked as a set
        of *maximal* subtree roots: its size is the sum of their sizes
        (so the early-break condition is evaluated exactly, without
        materializing a hash set of items), and the final union is a
        concatenation of disjoint sorted arrays finished by one sort.
        """
        cap = self.max_candidates * 4
        included: Dict[str, np.ndarray] = {}
        seen_categories: Set[str] = set()
        size = 0
        category_of = self.taxonomy.category_of
        root_memo = self._root_memo
        for seed in seeds:
            category = category_of(seed)
            if category in seen_categories:
                continue
            seen_categories.add(category)
            key = (category, k)
            root = root_memo.get(key)
            if root is None:
                root = self.taxonomy.ancestor_at_distance(category, k - 1)
                root_memo[key] = root
            if root not in included and not any(
                ancestor in included for ancestor in self._ancestry(root)
            ):
                if included:
                    # New maximal root: absorb any included roots nested
                    # inside it so the size accounting stays exact.
                    covered = [
                        other
                        for other in included
                        if root in self._ancestry(other)
                    ]
                    for other in covered:
                        size -= included.pop(other).size
                subtree = self._subtree_array(root)
                included[root] = subtree
                size += subtree.size
            if size > cap:
                break
        if not included:
            return np.empty(0, dtype=np.int64)
        if len(included) == 1:
            return next(iter(included.values()))
        union_key = tuple(sorted(included))
        union = self._union_memo.get(union_key)
        if union is None:
            union = np.concatenate(list(included.values()))
            union.sort()
            self._union_memo[union_key] = union
        return union

    def _cap_array(self, item_index: int, candidates: np.ndarray) -> np.ndarray:
        """:meth:`_cap` for a sorted unique candidate array.

        Reproduces the reference ordering exactly: rank by
        ``(-co_view_strength, item_index)`` — a stable argsort over a
        strength vector breaks ties in ascending-index order because the
        input is already index-sorted — keep the strongest
        ``max_candidates``, and return them index-sorted.
        """
        if candidates.size <= self.max_candidates:
            return candidates
        strength = self.counts.co_viewed(item_index)
        weights = np.zeros(candidates.size)
        if strength:
            neighbours = np.fromiter(
                strength.keys(), dtype=np.int64, count=len(strength)
            )
            values = np.fromiter(
                strength.values(), dtype=np.float64, count=len(strength)
            )
            slots = np.minimum(
                np.searchsorted(candidates, neighbours), candidates.size - 1
            )
            present = candidates[slots] == neighbours
            weights[slots[present]] = values[present]
        order = np.argsort(-weights, kind="stable")[: self.max_candidates]
        capped = candidates[order]
        capped.sort()
        return capped

    # ------------------------------------------------------------------
    # View-based (substitutes, before the purchase decision)
    # ------------------------------------------------------------------
    def view_based(
        self,
        item_index: int,
        lca_k: Optional[int] = None,
        same_facets: Optional[Sequence[str]] = None,
    ) -> List[int]:
        """``C = union over j in cv(i) of lca_k(j)`` (minus the item itself).

        Cold items with no co-view data fall back to their own taxonomy
        neighbourhood — the cold-start path the taxonomy feature exists
        for.  ``same_facets`` restricts candidates to items matching the
        query item's facet values (late-funnel tightening).

        This is the per-item reference implementation (one taxonomy walk
        per seed); the inference pipeline uses :meth:`batch_view_based`,
        which produces identical candidates from memoized expansions.
        """
        k = self.view_lca_k if lca_k is None else lca_k
        seeds = self.counts.top_co_viewed(item_index, self.co_neighbours)
        if not seeds:
            seeds = [item_index]
        candidates: Set[int] = set()
        for seed in seeds:
            candidates.update(self.taxonomy.lca_k(seed, k))
            if len(candidates) > self.max_candidates * 4:
                break
        candidates.discard(item_index)
        if same_facets:
            candidates = self._filter_facets(item_index, candidates, same_facets)
        return self._cap(item_index, candidates)

    def batch_view_based(
        self,
        items: Sequence[int],
        lca_k: Optional[int] = None,
        same_facets: Optional[Sequence[str]] = None,
    ) -> List[np.ndarray]:
        """:meth:`view_based` for a block of items, one sorted int64 array
        per item (values identical to the singular method's list).

        Instead of re-walking the taxonomy per seed per item, expansions
        are memoized per ``(category, k)`` as sorted arrays and unioned
        with one ``np.unique`` per item, amortizing candidate selection
        over a whole inference block.
        """
        k = self.view_lca_k if lca_k is None else lca_k
        self.metrics.counter("candidate_batches_total", kind="view").inc()
        self.metrics.counter(
            "candidate_items_total", kind="view"
        ).inc(len(items))
        if same_facets or k < 1:
            # Facet filtering / item-local expansions: reference path.
            return [
                np.asarray(
                    self.view_based(item, lca_k=k, same_facets=same_facets),
                    dtype=np.int64,
                )
                for item in items
            ]
        if self.retrieval is not None:
            pools = self._retrieval_candidates(items)
            return [
                self._cap_array(item, pool)
                for item, pool in zip(items, pools)
            ]
        return [self._view_candidates_array(item, k) for item in items]

    def _view_candidates_array(self, item_index: int, k: int) -> np.ndarray:
        seeds = self.counts.top_co_viewed(item_index, self.co_neighbours)
        if not seeds:
            seeds = [item_index]
        union = self._union_expansions(seeds, k)
        return self._cap_array(item_index, union[union != item_index])

    # ------------------------------------------------------------------
    # Purchase-based (complements, after the purchase decision)
    # ------------------------------------------------------------------
    def purchase_based(
        self, item_index: int, lca_k: Optional[int] = None
    ) -> List[int]:
        """``C = union over j in cb(i) of lca_1(j) minus lca_1(i)``.

        The subtraction removes substitutes of the just-bought item —
        nobody wants a second phone right after buying one — *except* for
        re-purchasable categories, where the same items are exactly right.

        Like :meth:`view_based` this is the per-item reference path;
        :meth:`batch_purchase_based` is the amortized equivalent.
        """
        k = self.purchase_lca_k if lca_k is None else lca_k
        seeds = self.counts.top_co_bought(item_index, self.co_neighbours)
        if not seeds:
            # No purchase signal: fall back to co-viewed complements.
            seeds = self.counts.top_co_viewed(item_index, self.co_neighbours)
        candidates: Set[int] = set()
        for seed in seeds:
            candidates.update(self.taxonomy.lca_k(seed, k))
            if len(candidates) > self.max_candidates * 4:
                break
        candidates.discard(item_index)
        category = (
            self.taxonomy.category_of(item_index)
            if self.taxonomy.has_item(item_index)
            else None
        )
        repurchasable = (
            self.repurchase is not None
            and category is not None
            and self.repurchase.is_repurchasable(category)
        )
        if not repurchasable:
            substitutes = set(self.taxonomy.lca_k(item_index, self.purchase_lca_k))
            candidates -= substitutes
        return self._cap(item_index, candidates)

    def batch_purchase_based(
        self, items: Sequence[int], lca_k: Optional[int] = None
    ) -> List[np.ndarray]:
        """:meth:`purchase_based` for a block of items, one sorted int64
        array per item (values identical to the singular method's list)."""
        k = self.purchase_lca_k if lca_k is None else lca_k
        self.metrics.counter("candidate_batches_total", kind="purchase").inc()
        self.metrics.counter(
            "candidate_items_total", kind="purchase"
        ).inc(len(items))
        if k < 1:
            return [
                np.asarray(self.purchase_based(item, lca_k=k), dtype=np.int64)
                for item in items
            ]
        if self.retrieval is not None:
            pools = self._retrieval_candidates(items)
            return [
                self._cap_array(
                    item, self._strip_substitutes(item, pool)
                )
                for item, pool in zip(items, pools)
            ]
        return [self._purchase_candidates_array(item, k) for item in items]

    def _purchase_candidates_array(self, item_index: int, k: int) -> np.ndarray:
        seeds = self.counts.top_co_bought(item_index, self.co_neighbours)
        if not seeds:
            seeds = self.counts.top_co_viewed(item_index, self.co_neighbours)
        union = self._union_expansions(seeds, k)
        return self._cap_array(
            item_index, self._strip_substitutes(item_index, union[union != item_index])
        )

    def _strip_substitutes(
        self, item_index: int, candidates: np.ndarray
    ) -> np.ndarray:
        """Remove the query item's own substitutes from a sorted pool.

        Applied on the purchase path unless the item's category is
        re-purchasable (where substitutes are exactly right).
        """
        category = (
            self.taxonomy.category_of(item_index)
            if self.taxonomy.has_item(item_index)
            else None
        )
        repurchasable = (
            self.repurchase is not None
            and category is not None
            and self.repurchase.is_repurchasable(category)
        )
        if repurchasable:
            return candidates
        substitutes = self._expansion(item_index, self.purchase_lca_k)
        if substitutes.size and candidates.size:
            # Both arrays are sorted: a searchsorted membership probe
            # is several times cheaper than ``np.setdiff1d``.
            slots = np.minimum(
                np.searchsorted(substitutes, candidates),
                substitutes.size - 1,
            )
            candidates = candidates[substitutes[slots] != candidates]
        return candidates

    def _retrieval_candidates(self, items: Sequence[int]) -> List[np.ndarray]:
        """Per-item sorted neighbour pools from the attached ANN index.

        One batched index probe covers the whole block; padding ids and
        the query item itself are dropped per row.
        """
        seeds = np.asarray(items, dtype=np.int64)
        k = min(self.retrieval_k, self.retrieval.n_items)
        ids, _ = self.retrieval.search_items(seeds, k)
        pools: List[np.ndarray] = []
        total = 0
        for row, item in zip(ids, seeds):
            pool = row[(row >= 0) & (row != item)]
            pool = np.sort(pool)
            total += pool.size
            pools.append(pool)
        self.metrics.counter("retrieval_candidate_items_total").inc(total)
        return pools

    # ------------------------------------------------------------------
    # Context-aware selection (funnel stage)
    # ------------------------------------------------------------------
    def for_context(self, context: UserContext) -> List[int]:
        """Candidates for a live context, tightened for late-funnel users.

        Early funnel: the normal view-based expansion around the most
        recent item.  Late funnel (converged intent): candidates are
        constrained "very close to the viewed item" — same category
        (lca 1) and matching facets where the query item has them.
        """
        if len(context) == 0:
            return []
        query = context.most_recent_item
        stage = classify_funnel(context, self.taxonomy)
        if stage == "late":
            return self.near_item(query)
        return self.view_based(query)

    def near_item(self, item_index: int) -> List[int]:
        """Candidates "very close to the viewed item" (late funnel).

        Same category (lca 1) around the *query item itself*, facet-
        matched where the item carries facets; falls back to the plain
        same-category set when the facet filter empties the pool.
        """
        candidates: Set[int] = set(self.taxonomy.lca_k(item_index, 1))
        candidates.discard(item_index)
        facets = [
            name
            for name, value in self.catalog[item_index].facets.items()
            if value is not None
        ]
        if facets:
            matched = self._filter_facets(item_index, candidates, facets)
            if matched:
                return self._cap(item_index, matched)
        return self._cap(item_index, candidates)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _filter_facets(
        self, item_index: int, candidates: Set[int], facets: Sequence[str]
    ) -> Set[int]:
        query = self.catalog[item_index]
        kept = set()
        for candidate in candidates:
            other = self.catalog[candidate]
            if all(
                query.facets.get(facet) is not None
                and other.facets.get(facet) == query.facets.get(facet)
                for facet in facets
            ):
                kept.add(candidate)
        return kept

    def _cap(self, item_index: int, candidates: Set[int]) -> List[int]:
        """Deterministic cap: strongest co-occurrence first, then by index."""
        if len(candidates) <= self.max_candidates:
            return sorted(candidates)
        strength = self.counts.co_viewed(item_index)
        ranked = sorted(
            candidates, key=lambda c: (-strength.get(c, 0.0), c)
        )
        return sorted(ranked[: self.max_candidates])
