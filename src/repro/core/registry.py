"""The model registry: per-retailer models, metrics, and isolation.

Sigmund "guarantees ... completely separating the data and models for
each of the retailers" (section I).  The registry is where that guarantee
is enforced: every read requires the caller to name the retailer it is
acting for, and any mismatch between the requested retailer and the
artifact raises :class:`IsolationError` instead of returning data.

The registry also keeps yesterday's results so the incremental sweep can
pick the top-K configurations and warm-start from their parameters
(section III-C3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.config import OutputConfigRecord
from repro.exceptions import IsolationError, ModelNotTrainedError
from repro.models.bpr import BPRModel


@dataclass
class TrainedModel:
    """A trained model plus the output config record that produced it.

    ``model`` is any pipeline-trained recommender carrying a
    ``retailer_id`` — BPR by default, WALS when the config's
    ``model_kind`` selected the least-squares substitute.
    """

    model: "BPRModel"
    output: OutputConfigRecord

    @property
    def retailer_id(self) -> str:
        return self.output.retailer_id

    @property
    def model_number(self) -> int:
        return self.output.config.model_number

    @property
    def map_at_10(self) -> float:
        return self.output.map_at_10


class ModelRegistry:
    """Versioned store of trained models, strictly namespaced by retailer."""

    def __init__(self) -> None:
        self._models: Dict[str, Dict[int, TrainedModel]] = {}
        self._latest_day: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def publish(self, entry: TrainedModel) -> None:
        """Store one trained model under its retailer and model number."""
        if entry.model.retailer_id != entry.retailer_id:
            raise IsolationError(
                f"model trained for {entry.model.retailer_id!r} cannot be "
                f"published under {entry.retailer_id!r}"
            )
        retailer_models = self._models.setdefault(entry.retailer_id, {})
        retailer_models[entry.model_number] = entry
        day = entry.output.config.day
        self._latest_day[entry.retailer_id] = max(
            self._latest_day.get(entry.retailer_id, 0), day
        )

    def drop_retailer(self, retailer_id: str) -> None:
        """Remove every artifact of one retailer (off-boarding / ToS resets)."""
        self._models.pop(retailer_id, None)
        self._latest_day.pop(retailer_id, None)

    # ------------------------------------------------------------------
    # Reads (isolation-checked)
    # ------------------------------------------------------------------
    def _retailer_models(self, retailer_id: str) -> Dict[int, TrainedModel]:
        models = self._models.get(retailer_id)
        if models is None:
            raise ModelNotTrainedError(f"no models for retailer {retailer_id!r}")
        return models

    def get(self, retailer_id: str, model_number: int) -> TrainedModel:
        """Fetch one model; the retailer id must own that model number."""
        entry = self._retailer_models(retailer_id).get(model_number)
        if entry is None:
            raise ModelNotTrainedError(
                f"retailer {retailer_id!r} has no model {model_number}"
            )
        if entry.retailer_id != retailer_id:  # pragma: no cover - defence in depth
            raise IsolationError(
                f"registry corruption: model {model_number} belongs to "
                f"{entry.retailer_id!r}"
            )
        return entry

    def best(self, retailer_id: str) -> TrainedModel:
        """The retailer's best model by MAP@10 (model selection output)."""
        ranked = self.top_k(retailer_id, k=1)
        return ranked[0]

    def top_k(self, retailer_id: str, k: int = 3) -> List[TrainedModel]:
        """Top-K models by MAP@10 — what the incremental sweep retrains.

        Only models from the retailer's *latest* training day compete:
        older entries were trained on an older snapshot of the catalog
        (and evaluated on an older holdout), so their metrics are not
        comparable and their shapes may be stale.
        """
        models = list(self._retailer_models(retailer_id).values())
        if not models:
            raise ModelNotTrainedError(f"no models for retailer {retailer_id!r}")
        latest = max(m.output.config.day for m in models)
        fresh = [m for m in models if m.output.config.day == latest]
        fresh.sort(key=lambda m: (-m.map_at_10, m.model_number))
        return fresh[: max(1, k)]

    def has_models(self, retailer_id: str) -> bool:
        return bool(self._models.get(retailer_id))

    def retailers(self) -> List[str]:
        return sorted(self._models)

    def latest_day(self, retailer_id: str) -> int:
        if retailer_id not in self._latest_day:
            raise ModelNotTrainedError(f"no models for retailer {retailer_id!r}")
        return self._latest_day[retailer_id]

    def model_count(self, retailer_id: Optional[str] = None) -> int:
        if retailer_id is not None:
            return len(self._models.get(retailer_id, {}))
        return sum(len(models) for models in self._models.values())

    def assert_isolated(self, acting_for: str, artifact_retailer: str) -> None:
        """Guard helper used by pipelines before touching any artifact."""
        if acting_for != artifact_retailer:
            raise IsolationError(
                f"pipeline acting for {acting_for!r} attempted to touch an "
                f"artifact of {artifact_retailer!r}"
            )
