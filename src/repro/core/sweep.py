"""Sweep planning: full sweeps and incremental sweeps (paper section IV-A).

* A **full sweep** "kicks off training for every combination of
  hyper-parameters for every retailer" — needed when the service starts
  or after catastrophic model loss, and periodically to honor the
  terms-of-service constraint that models reflect only recent history.
* An **incremental sweep** trains only the top-K best-performing
  configurations per retailer (typically 3), warm-started from
  yesterday's parameters.  A *new* retailer inside an incremental sweep
  still gets its full grid.

The planner emits the config records in a **random permutation** — the
paper's load-balancing trick (section IV-B1): expensive (large-retailer)
records end up spread across MapReduce workers instead of clumping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.core.config import ConfigRecord
from repro.core.grid import GridSpec, generate_configs
from repro.core.registry import ModelRegistry
from repro.data.datasets import RetailerDataset
from repro.rng import derive_seed, make_rng

#: Paper: incremental sweeps keep "the top-K most promising models
#: (usually 3-5) from the previous day".
DEFAULT_TOP_K = 3


@dataclass
class SweepPlan:
    """The output of planning: permuted config records plus bookkeeping."""

    day: int
    configs: List[ConfigRecord] = field(default_factory=list)
    full_grid_retailers: List[str] = field(default_factory=list)
    incremental_retailers: List[str] = field(default_factory=list)

    @property
    def n_configs(self) -> int:
        return len(self.configs)

    def configs_for(self, retailer_id: str) -> List[ConfigRecord]:
        return [c for c in self.configs if c.retailer_id == retailer_id]


class SweepPlanner:
    """Plans which models to train today for every retailer."""

    def __init__(
        self,
        grid: GridSpec = GridSpec(),
        top_k: int = DEFAULT_TOP_K,
        base_seed: int = 0,
    ):
        self.grid = grid
        self.top_k = max(1, top_k)
        self.base_seed = base_seed

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def full_sweep(
        self, datasets: Sequence[RetailerDataset], day: int = 0
    ) -> SweepPlan:
        """Every hyper-parameter combination for every retailer."""
        plan = SweepPlan(day=day)
        for dataset in datasets:
            configs = generate_configs(
                dataset, self.grid, day=day, base_seed=self.base_seed
            )
            plan.configs.extend(configs)
            plan.full_grid_retailers.append(dataset.retailer_id)
        self._permute(plan)
        return plan

    def incremental_sweep(
        self,
        datasets: Sequence[RetailerDataset],
        registry: ModelRegistry,
        day: int,
    ) -> SweepPlan:
        """Top-K warm-started configs per known retailer; full grid for new."""
        plan = SweepPlan(day=day)
        for dataset in datasets:
            retailer_id = dataset.retailer_id
            if registry.has_models(retailer_id):
                top = registry.top_k(retailer_id, k=self.top_k)
                for entry in top:
                    plan.configs.append(
                        entry.output.config.for_day(day, warm_start=True)
                    )
                plan.incremental_retailers.append(retailer_id)
            else:
                configs = generate_configs(
                    dataset, self.grid, day=day, base_seed=self.base_seed
                )
                plan.configs.extend(configs)
                plan.full_grid_retailers.append(retailer_id)
        self._permute(plan)
        return plan

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _permute(self, plan: SweepPlan) -> None:
        """Randomly permute config records (deterministic per day)."""
        rng = make_rng(derive_seed(self.base_seed, "sweep", plan.day))
        order = rng.permutation(len(plan.configs))
        plan.configs = [plan.configs[int(i)] for i in order]
