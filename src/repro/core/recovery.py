"""Coordinator-kill injection: parameterized kill points for daily runs.

The daily loop is instrumented with named **kill points** — the places a
pre-emptible coordinator can realistically die.  A :class:`CrashPlan`
arms rules against them; when a rule matches, :class:`SimulatedCrash`
(a ``BaseException``) unwinds the whole run, leaving the run journal
open for :meth:`~repro.core.service.SigmundService.recover`.

Kill points, in daily-run order:

========================  ====================================================
stage                     label / meaning
========================  ====================================================
``day_begin``             right after the day's intent is journaled
``train_task``            ``<retailer_id>`` — before its training job launches
``train_epoch``           ``<config_key>@e<n>`` — inside Train(), after epoch n
``train_logged``          ``<retailer_id>`` — after its completion is journaled
``retrieval_build``       ``<retailer_id>`` — before its ANN index is built
``retrieval_logged``      ``<retailer_id>`` — after its index is journaled
``inference_plan``        before the cell assignment is journaled
``infer_cell``            ``<cell_name>`` — before that cell's job launches
``infer_block``           ``<retailer_id>@<first_item>`` — inside the mapper
``infer_logged``          ``<cell_name>`` — after its completion is journaled
``publish``               ``<retailer_id>`` — before its tables are validated
``publish_mid``           ``<retailer_id>`` — between the two store loads
``publish_logged``        ``<retailer_id>`` — after its publish is journaled
``wrapup``                before monitoring records and the day commit
========================  ====================================================

Rules fire a bounded number of times (default once) and then disarm —
recovery re-executes the same code path, and a persistent rule would
crash it forever.  Matching is by stage plus either an exact label, a
label predicate, or the n-th check of that stage (``nth``), which is
what lets a property test enumerate every expressible kill point.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.exceptions import SimulatedCrash

#: Every stage the daily loop checks, for tests that enumerate the space.
KILL_STAGES: Tuple[str, ...] = (
    "day_begin",
    "train_task",
    "train_epoch",
    "train_logged",
    "retrieval_build",
    "retrieval_logged",
    "inference_plan",
    "infer_cell",
    "infer_block",
    "infer_logged",
    "publish",
    "publish_mid",
    "publish_logged",
    "wrapup",
)


class CrashPlan:
    """Deterministic coordinator-kill injection for recovery tests."""

    def __init__(self) -> None:
        self._rules: List[dict] = []
        #: Every ``(stage, label)`` that actually crashed, in order.
        self.fired: List[Tuple[str, str]] = []
        #: Every ``(stage, label)`` checked, armed or not (introspection).
        self.checked: List[Tuple[str, str]] = []

    def crash_at(
        self,
        stage: str,
        label: Optional[str] = None,
        match: Optional[Callable[[str], bool]] = None,
        nth: Optional[int] = None,
        times: int = 1,
    ) -> "CrashPlan":
        """Arm a kill: at ``stage``, on an exact ``label``, a ``match``
        predicate over labels, or the ``nth`` (0-based) check of that
        stage; with none of those, the first check of the stage dies.
        Fires ``times`` times, then disarms.
        """
        if stage not in KILL_STAGES:
            raise ValueError(
                f"unknown kill stage {stage!r}; expected one of {KILL_STAGES}"
            )
        self._rules.append(
            {
                "stage": stage,
                "label": label,
                "match": match,
                "nth": nth,
                "times": times,
                "fired": 0,
                "seen": 0,
            }
        )
        return self

    def check(self, stage: str, label: str = "") -> None:
        """Raise :class:`SimulatedCrash` if an armed rule matches here."""
        self.checked.append((stage, label))
        for rule in self._rules:
            if rule["stage"] != stage:
                continue
            position = rule["seen"]
            rule["seen"] += 1
            if rule["fired"] >= rule["times"]:
                continue
            if rule["label"] is not None and rule["label"] != label:
                continue
            if rule["match"] is not None and not rule["match"](label):
                continue
            if rule["nth"] is not None and position != rule["nth"]:
                continue
            rule["fired"] += 1
            self.fired.append((stage, label))
            raise SimulatedCrash(stage, label)

    @property
    def crash_count(self) -> int:
        return len(self.fired)
