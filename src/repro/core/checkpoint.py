"""Durable time-interval checkpointing with keep-latest-only GC.

Paper section IV-B3: "we asynchronously checkpoint the model learned to a
shared filesystem ... on a fixed time-interval (e.g. every few minutes)
instead of ... after a fixed number of iterations", because iteration
time varies wildly across retailer sizes; and "we only need to keep the
latest checkpoint around, so as soon as a new checkpoint is written, we
garbage-collect the previous checkpoint".

The manager serializes each checkpoint to a self-verifying blob (magic
header + SHA-256 checksum + payload) and hands it to a pluggable
:class:`CheckpointStorage` backend: :class:`InMemoryCheckpointStorage`
is the default stand-in for the shared filesystem, and
:class:`FilesystemCheckpointStorage` writes real files with atomic
write-then-rename semantics.  Because the stored artifact is a byte
string in both cases, a restored model can never alias the stored
checkpoint — training after a restore cannot mutate the blob, and
re-restoring yields byte-identical state.

Durability failures are first-class: a :class:`CheckpointFaultPlan`
injects torn writes, bit flips, and dropped blobs, and ``restore``
detects every one of them via the checksum and raises
:class:`CheckpointCorruptionError` (``try_restore`` converts that into a
clean cold-start).  Timestamps run against the *simulated* clock so
experiments measure exactly the work-loss bound the policy provides.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import (
    CheckpointCorruptionError,
    CheckpointError,
    SigmundError,
)
from repro.models.bpr import BPRModel

#: Paper: "every few minutes".
DEFAULT_CHECKPOINT_INTERVAL_SECONDS = 300.0

#: Blob format: magic + 32-byte SHA-256 of the payload + pickled payload.
_MAGIC = b"SIGCKPT1"
_DIGEST_SIZE = 32


def _encode(state: Dict[str, np.ndarray], written_at: float, epoch: int) -> bytes:
    payload = pickle.dumps(
        {"state": state, "written_at": written_at, "epoch": epoch},
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return _MAGIC + hashlib.sha256(payload).digest() + payload


def _decode(key: str, blob: bytes) -> Dict[str, object]:
    header = len(_MAGIC) + _DIGEST_SIZE
    if len(blob) < header or not blob.startswith(_MAGIC):
        raise CheckpointCorruptionError(
            f"checkpoint {key!r} is truncated or not a checkpoint blob"
        )
    digest, payload = blob[len(_MAGIC) : header], blob[header:]
    if hashlib.sha256(payload).digest() != digest:
        raise CheckpointCorruptionError(
            f"checkpoint {key!r} failed its checksum (torn write or bit rot)"
        )
    try:
        decoded = pickle.loads(payload)
    except Exception as exc:  # checksum passed but payload unreadable
        raise CheckpointCorruptionError(
            f"checkpoint {key!r} could not be deserialized: {exc}"
        ) from exc
    return decoded


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
class CheckpointFaultPlan:
    """Deterministic storage-corruption injection for robustness tests.

    Three fault kinds, each optionally keyed by a predicate on the
    checkpoint key and limited to the first ``times`` matching writes:

    * :meth:`torn_write` — the stored blob is truncated mid-payload (a
      writer died without the atomic rename, or the filesystem lied).
    * :meth:`bit_flip` — one byte of the stored payload is corrupted
      (bit rot on the shared filesystem).
    * :meth:`drop` — the blob silently never lands (a lost file).

    The ``write`` call itself still *appears* to succeed — that is what
    makes these faults dangerous, and why ``restore`` must verify the
    checksum instead of trusting the write path.
    """

    def __init__(self) -> None:
        self._rules: List[dict] = []

    def _add(self, kind: str, match, times) -> "CheckpointFaultPlan":
        self._rules.append(
            {"kind": kind, "match": match, "times": times, "fired": 0}
        )
        return self

    def torn_write(
        self,
        match: Optional[Callable[[str], bool]] = None,
        times: Optional[int] = None,
    ) -> "CheckpointFaultPlan":
        """Truncate matching blobs mid-payload."""
        return self._add("torn", match, times)

    def bit_flip(
        self,
        match: Optional[Callable[[str], bool]] = None,
        times: Optional[int] = None,
    ) -> "CheckpointFaultPlan":
        """Flip one bit of matching blobs' payload."""
        return self._add("flip", match, times)

    def drop(
        self,
        match: Optional[Callable[[str], bool]] = None,
        times: Optional[int] = None,
    ) -> "CheckpointFaultPlan":
        """Silently lose matching blobs (the file never appears)."""
        return self._add("drop", match, times)

    def corrupt(self, key: str, blob: bytes) -> Optional[bytes]:
        """The blob to actually store for ``key`` (None = store nothing)."""
        for rule in self._rules:
            if rule["times"] is not None and rule["fired"] >= rule["times"]:
                continue
            if rule["match"] is not None and not rule["match"](key):
                continue
            rule["fired"] += 1
            if rule["kind"] == "drop":
                return None
            if rule["kind"] == "torn":
                return blob[: max(1, len(blob) * 2 // 3)]
            flipped = bytearray(blob)
            flipped[-1] ^= 0x40  # payload byte: checksum will not match
            return bytes(flipped)
        return blob


# ----------------------------------------------------------------------
# Storage backends
# ----------------------------------------------------------------------
class CheckpointStorage:
    """Abstract blob store keyed by checkpoint key (one blob per key)."""

    def put(self, key: str, blob: bytes) -> None:
        raise NotImplementedError

    def get(self, key: str) -> Optional[bytes]:
        raise NotImplementedError

    def delete(self, key: str) -> bool:
        """Remove ``key``'s blob; returns whether one existed."""
        raise NotImplementedError

    def keys(self) -> List[str]:
        raise NotImplementedError


class InMemoryCheckpointStorage(CheckpointStorage):
    """The default shared-filesystem stand-in: a dict of byte strings."""

    def __init__(self) -> None:
        self._blobs: Dict[str, bytes] = {}

    def put(self, key: str, blob: bytes) -> None:
        self._blobs[key] = blob

    def get(self, key: str) -> Optional[bytes]:
        return self._blobs.get(key)

    def delete(self, key: str) -> bool:
        return self._blobs.pop(key, None) is not None

    def keys(self) -> List[str]:
        return sorted(self._blobs)


class FilesystemCheckpointStorage(CheckpointStorage):
    """Real files under a root directory, written atomically.

    Each blob is written to a temporary file in the same directory and
    then moved into place with ``os.replace`` — readers see either the
    previous complete checkpoint or the new complete checkpoint, never a
    partially written file.  (The :class:`CheckpointFaultPlan` models the
    storage layer corrupting data *after* a successful-looking write,
    which atomic rename cannot defend against — only checksums can.)
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, key: str) -> str:
        # Keys contain "/" (e.g. "retailer_3/m17"); flatten, keep legible.
        safe = key.replace("%", "%25").replace("/", "%2F")
        return os.path.join(self.root, safe + ".ckpt")

    def put(self, key: str, blob: bytes) -> None:
        path = self._path(key)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def get(self, key: str) -> Optional[bytes]:
        path = self._path(key)
        if not os.path.exists(path):
            return None
        with open(path, "rb") as handle:
            return handle.read()

    def delete(self, key: str) -> bool:
        path = self._path(key)
        if not os.path.exists(path):
            return False
        os.unlink(path)
        return True

    def keys(self) -> List[str]:
        names = []
        for name in os.listdir(self.root):
            if name.endswith(".ckpt"):
                names.append(name[: -len(".ckpt")].replace("%2F", "/").replace("%25", "%"))
        return sorted(names)


@dataclass
class _CheckpointMeta:
    """In-memory index entry: when/what was last written for a key."""

    written_at: float
    epoch: int


@dataclass
class CheckpointStats:
    """Operational counters for dashboards and tests."""

    writes: int = 0
    #: Total encoded blob bytes handed to storage (the "checkpoint bytes"
    #: line on the fleet snapshot's process section).
    bytes_written: int = 0
    garbage_collected: int = 0
    restores: int = 0
    #: Restores that found a blob failing its integrity check.
    corruptions_detected: int = 0
    #: ``try_restore`` calls that fell back to cold start (missing or
    #: corrupt checkpoint).
    cold_starts: int = 0
    corrupt_keys: List[str] = field(default_factory=list)


class CheckpointManager:
    """Latest-only durable checkpoints on a fixed simulated-time interval.

    Interval semantics:

    * The **first** ``maybe_checkpoint`` call for a key always writes
      immediately (the epoch-0 checkpoint) — the interval clock only
      starts ticking once a checkpoint exists, so a fresh task is never
      exposed to a full interval of unprotected work.
    * :meth:`discard` resets the interval clock along with the blob, so
      a re-onboarded retailer (or a re-issued config key) checkpoints
      promptly on its first new ``maybe_checkpoint`` instead of
      inheriting a stale "recently written" timestamp.
    """

    def __init__(
        self,
        interval_seconds: float = DEFAULT_CHECKPOINT_INTERVAL_SECONDS,
        storage: Optional[CheckpointStorage] = None,
        fault_plan: Optional[CheckpointFaultPlan] = None,
    ):
        if interval_seconds <= 0:
            raise CheckpointError("checkpoint interval must be positive")
        self.interval_seconds = interval_seconds
        self.storage = storage if storage is not None else InMemoryCheckpointStorage()
        self.fault_plan = fault_plan
        self._meta: Dict[str, _CheckpointMeta] = {}
        self._last_written: Dict[str, float] = {}
        self.stats = CheckpointStats()

    # Backwards-compatible counter views (pre-durability API).
    @property
    def writes(self) -> int:
        return self.stats.writes

    @property
    def garbage_collected(self) -> int:
        return self.stats.garbage_collected

    @property
    def restores(self) -> int:
        return self.stats.restores

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def maybe_checkpoint(
        self, key: str, model: BPRModel, now: float, epoch: int
    ) -> bool:
        """Write a checkpoint if the interval has elapsed for this key.

        The first call for a key writes unconditionally (see the class
        docstring); afterwards a write happens once ``interval_seconds``
        of simulated time have passed since the last one.
        """
        last = self._last_written.get(key)
        if last is not None and now - last < self.interval_seconds:
            return False
        self.write(key, model, now, epoch)
        return True

    def write(self, key: str, model: BPRModel, now: float, epoch: int) -> None:
        """Unconditionally checkpoint; the previous one is GC'd."""
        self.write_state(key, model.get_state(), now, epoch)

    def write_state(
        self, key: str, state: Dict[str, np.ndarray], now: float, epoch: int
    ) -> None:
        """:meth:`write` from a raw state dict (no model object needed).

        The fleet path: a worker process makes the interval decision
        against its local clock shim and ships the state it would have
        written; the coordinator replays the write here so fault plans,
        stats, and the durable storage all stay coordinator-side.
        """
        blob = _encode(state, now, epoch)
        if self.fault_plan is not None:
            corrupted = self.fault_plan.corrupt(key, blob)
        else:
            corrupted = blob
        existed = key in self._meta or self.storage.get(key) is not None
        if corrupted is None:
            # Dropped blob: the writer believes it succeeded, but the
            # previous checkpoint (if any) was already GC'd — the key now
            # has nothing restorable, exactly like a lost file.
            self.storage.delete(key)
            self._meta.pop(key, None)
        else:
            self.storage.put(key, corrupted)
            self._meta[key] = _CheckpointMeta(written_at=now, epoch=epoch)
        if existed:
            self.stats.garbage_collected += 1
        self._last_written[key] = now
        self.stats.writes += 1
        self.stats.bytes_written += len(blob)

    # ------------------------------------------------------------------
    # Restoring
    # ------------------------------------------------------------------
    def has_checkpoint(self, key: str) -> bool:
        return self.storage.get(key) is not None

    def restore(self, key: str, model: BPRModel) -> int:
        """Load the latest checkpoint into ``model``; returns its epoch.

        Raises :class:`CheckpointError` when no blob exists and
        :class:`CheckpointCorruptionError` when the blob fails its
        integrity check; in the corruption case the useless blob is
        deleted so the next writer starts clean.
        """
        blob = self.storage.get(key)
        if blob is None:
            raise CheckpointError(f"no checkpoint for {key!r}")
        try:
            decoded = _decode(key, blob)
            try:
                model.set_state(decoded["state"])  # type: ignore[arg-type]
            except SigmundError as exc:
                # Checksum-valid but unusable (missing parameter, shape
                # drift): just as unrestorable as a torn write.
                raise CheckpointCorruptionError(
                    f"checkpoint {key!r} does not fit the model: {exc}"
                ) from exc
        except CheckpointCorruptionError:
            self.stats.corruptions_detected += 1
            self.stats.corrupt_keys.append(key)
            self.storage.delete(key)
            self._meta.pop(key, None)
            raise
        self.stats.restores += 1
        return int(decoded["epoch"])  # type: ignore[arg-type]

    def try_restore(self, key: str, model: BPRModel) -> Optional[int]:
        """Restore if a valid checkpoint exists; None means cold start.

        The recovery path: a missing blob and a corrupt blob both degrade
        cleanly to ``None`` (the model is untouched by a failed restore —
        :meth:`BPRModel.set_state` validates every array before assigning
        any).  On success the interval clock is reset so the resumed task
        writes a fresh checkpoint promptly rather than inheriting the
        pre-crash timestamp, which may be far in the resumed run's future.
        """
        if self.storage.get(key) is None:
            self.stats.cold_starts += 1
            return None
        try:
            epoch = self.restore(key, model)
        except CheckpointError:
            self.stats.cold_starts += 1
            return None
        self._last_written.pop(key, None)
        return epoch

    def try_restore_state(
        self, key: str
    ) -> Optional[Tuple[Dict[str, np.ndarray], int]]:
        """:meth:`try_restore` without a model: ``(state, epoch)`` or None.

        The fleet path reads the resume point *before* dispatching a task
        to a worker process (the worker has no access to coordinator
        storage), with the same integrity/cold-start semantics: a missing
        blob and a corrupt blob both degrade to ``None``, corrupt blobs
        are deleted, and the interval clock is reset on success.  Shape
        validation against the model happens worker-side in ``set_state``
        (checkpoints are day-namespaced, so shapes cannot drift within a
        key).
        """
        blob = self.storage.get(key)
        if blob is None:
            self.stats.cold_starts += 1
            return None
        try:
            decoded = _decode(key, blob)
        except CheckpointCorruptionError:
            self.stats.corruptions_detected += 1
            self.stats.corrupt_keys.append(key)
            self.storage.delete(key)
            self._meta.pop(key, None)
            self.stats.cold_starts += 1
            return None
        self.stats.restores += 1
        self._last_written.pop(key, None)
        return decoded["state"], int(decoded["epoch"])  # type: ignore[return-value,arg-type]

    def checkpoint_age(self, key: str, now: float) -> Optional[float]:
        """Seconds since this key's latest checkpoint (None if absent)."""
        meta = self._meta.get(key)
        if meta is None or self.storage.get(key) is None:
            return None
        return now - meta.written_at

    def discard(self, key: str) -> None:
        """Drop a finished task's checkpoint (training completed).

        Also resets the interval clock (see the class docstring): the
        next ``maybe_checkpoint`` under this key writes immediately.
        """
        if self.storage.delete(key):
            self.stats.garbage_collected += 1
        self._meta.pop(key, None)
        self._last_written.pop(key, None)

    def discard_matching(self, match: Callable[[str], bool]) -> int:
        """Discard every stored checkpoint whose key matches.

        The offboarding path: checkpoint keys embed the retailer id
        (``day<d>/<rid>/m<n>``), and a departed tenant's model state must
        not survive in the checkpoint store — nor be restorable by a
        recovered day.  Returns how many blobs were dropped.
        """
        dropped = 0
        for key in list(self.storage.keys()):
            if match(key):
                self.discard(key)
                dropped += 1
        return dropped

    @property
    def stored_count(self) -> int:
        return len(self.storage.keys())
