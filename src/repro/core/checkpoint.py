"""Time-interval checkpointing with keep-latest-only garbage collection.

Paper section IV-B3: "we asynchronously checkpoint the model learned to a
shared filesystem ... on a fixed time-interval (e.g. every few minutes)
instead of ... after a fixed number of iterations", because iteration
time varies wildly across retailer sizes; and "we only need to keep the
latest checkpoint around, so as soon as a new checkpoint is written, we
garbage-collect the previous checkpoint".

The manager stores checkpoints in memory (our stand-in for the shared
filesystem) keyed by config key, and timestamps them against the
*simulated* clock so experiments measure exactly the work-loss bound the
policy provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.exceptions import CheckpointError
from repro.models.bpr import BPRModel

#: Paper: "every few minutes".
DEFAULT_CHECKPOINT_INTERVAL_SECONDS = 300.0


@dataclass
class _Checkpoint:
    """One stored checkpoint: parameters plus bookkeeping."""

    state: Dict[str, np.ndarray]
    written_at: float
    epoch: int


class CheckpointManager:
    """Latest-only checkpoints on a fixed simulated-time interval."""

    def __init__(
        self, interval_seconds: float = DEFAULT_CHECKPOINT_INTERVAL_SECONDS
    ):
        if interval_seconds <= 0:
            raise CheckpointError("checkpoint interval must be positive")
        self.interval_seconds = interval_seconds
        self._store: Dict[str, _Checkpoint] = {}
        self._last_written: Dict[str, float] = {}
        self.writes = 0
        self.garbage_collected = 0
        self.restores = 0

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def maybe_checkpoint(
        self, key: str, model: BPRModel, now: float, epoch: int
    ) -> bool:
        """Write a checkpoint if the interval has elapsed for this key."""
        last = self._last_written.get(key)
        if last is not None and now - last < self.interval_seconds:
            return False
        self.write(key, model, now, epoch)
        return True

    def write(self, key: str, model: BPRModel, now: float, epoch: int) -> None:
        """Unconditionally checkpoint; the previous one is GC'd."""
        if key in self._store:
            self.garbage_collected += 1
        self._store[key] = _Checkpoint(
            state=model.get_state(), written_at=now, epoch=epoch
        )
        self._last_written[key] = now
        self.writes += 1

    # ------------------------------------------------------------------
    # Restoring
    # ------------------------------------------------------------------
    def has_checkpoint(self, key: str) -> bool:
        return key in self._store

    def restore(self, key: str, model: BPRModel) -> int:
        """Load the latest checkpoint into ``model``; returns its epoch."""
        checkpoint = self._store.get(key)
        if checkpoint is None:
            raise CheckpointError(f"no checkpoint for {key!r}")
        model.set_state(checkpoint.state)
        self.restores += 1
        return checkpoint.epoch

    def checkpoint_age(self, key: str, now: float) -> Optional[float]:
        """Seconds since this key's latest checkpoint (None if absent)."""
        checkpoint = self._store.get(key)
        if checkpoint is None:
            return None
        return now - checkpoint.written_at

    def discard(self, key: str) -> None:
        """Drop a finished task's checkpoint (training completed)."""
        if self._store.pop(key, None) is not None:
            self.garbage_collected += 1
        self._last_written.pop(key, None)

    @property
    def stored_count(self) -> int:
        return len(self._store)
