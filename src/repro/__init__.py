"""repro — a reproduction of Sigmund (ICDE 2018).

"Recommendations for All: Solving Thousands of Recommendation Problems
Daily" (Kanagal & Tata) describes Sigmund, Google's multi-tenant product
recommendation service.  This library rebuilds the whole system in
Python: the per-retailer BPR models with context users and side
features, the grid-search/incremental-training model-selection machinery,
candidate selection and offline inference, the head/tail hybrid, and the
simulated Borg/MapReduce substrate its cost story depends on.

Quickstart::

    from repro import (
        MarketplaceSpec, SigmundService, build_cluster,
        dataset_from_synthetic, generate_marketplace,
    )

    service = SigmundService(build_cluster())
    for retailer in generate_marketplace(MarketplaceSpec(n_retailers=5)):
        service.onboard(dataset_from_synthetic(retailer))
    report = service.run_day()            # full sweep on day 0
    print(report.configs_trained, service.total_cost())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results.
"""

from typing import Optional

from repro.cluster.cell import Cell, Cluster
from repro.cluster.clock import SimClock
from repro.cluster.machine import MachineSpec
from repro.core.config import ConfigRecord, OutputConfigRecord
from repro.core.grid import GridSpec, generate_configs
from repro.core.hybrid import HybridRecommender
from repro.core.inference import InferencePipeline, InferenceResult
from repro.core.registry import ModelRegistry, TrainedModel
from repro.core.service import DailyRunReport, SigmundService
from repro.core.sweep import SweepPlanner
from repro.core.training import TrainerSettings, TrainingPipeline, train_config
from repro.cooccurrence import CoOccurrenceCounts, CoOccurrenceModel
from repro.data import (
    MarketplaceSpec,
    RetailerDataset,
    RetailerSpec,
    dataset_from_synthetic,
    generate_marketplace,
    generate_retailer,
)
from repro.evaluation import HoldoutEvaluator
from repro.mapreduce import DeadLetter, FaultPlan
from repro.models import (
    BPRHyperParams,
    BPRModel,
    BPRTrainer,
    PopularityModel,
    WALSHyperParams,
    WALSModel,
)
from repro.obs import (
    MetricsRegistry,
    MetricsSnapshot,
    NullMetricsRegistry,
    NullTracer,
    Tracer,
    build_fleet_snapshot,
    fleet_snapshot_json,
)
from repro.retrieval import (
    ExactRetrieval,
    IVFConfig,
    IVFIndex,
    ModelRetrieval,
    RetrievalIndexStore,
    ann_for_model,
    exact_for_model,
    recall_at_k,
    retrieval_for_model,
)
from repro.serving import (
    PopularityFallback,
    RecommendationServer,
    RecommendationStore,
    ServingCluster,
    ServingFrontend,
    TrafficGenerator,
)

__version__ = "1.0.0"

__all__ = [
    "SigmundService",
    "DailyRunReport",
    "build_cluster",
    "RetailerSpec",
    "MarketplaceSpec",
    "generate_retailer",
    "generate_marketplace",
    "RetailerDataset",
    "dataset_from_synthetic",
    "BPRModel",
    "BPRHyperParams",
    "BPRTrainer",
    "WALSModel",
    "WALSHyperParams",
    "PopularityModel",
    "CoOccurrenceCounts",
    "CoOccurrenceModel",
    "HybridRecommender",
    "HoldoutEvaluator",
    "GridSpec",
    "generate_configs",
    "ConfigRecord",
    "OutputConfigRecord",
    "SweepPlanner",
    "TrainerSettings",
    "TrainingPipeline",
    "train_config",
    "InferencePipeline",
    "InferenceResult",
    "ModelRegistry",
    "TrainedModel",
    "IVFConfig",
    "IVFIndex",
    "ExactRetrieval",
    "ModelRetrieval",
    "RetrievalIndexStore",
    "ann_for_model",
    "exact_for_model",
    "recall_at_k",
    "retrieval_for_model",
    "RecommendationStore",
    "RecommendationServer",
    "ServingCluster",
    "ServingFrontend",
    "PopularityFallback",
    "TrafficGenerator",
    "Cell",
    "Cluster",
    "MachineSpec",
    "SimClock",
    "DeadLetter",
    "FaultPlan",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "MetricsSnapshot",
    "Tracer",
    "NullTracer",
    "build_fleet_snapshot",
    "fleet_snapshot_json",
]


def build_cluster(
    n_cells: int = 2,
    machines_per_cell: int = 16,
    machine_spec: Optional[MachineSpec] = None,
    clock: Optional[SimClock] = None,
) -> Cluster:
    """A ready-to-use simulated cluster (convenience for examples/tests)."""
    spec = machine_spec or MachineSpec(cpus=16, memory_gb=128.0)
    shared_clock = clock or SimClock()
    cells = [
        Cell(f"cell-{index}", machines_per_cell, spec, shared_clock)
        for index in range(n_cells)
    ]
    return Cluster(cells)
