"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``    — one-retailer train/evaluate/recommend walk-through.
* ``service`` — run the multi-tenant service for N days on a synthetic
  marketplace and print the daily reports.
* ``train``   — train a model on CSV data (catalog + events files) and
  print holdout metrics.
* ``inspect`` — summarize a CSV dataset (sizes, coverage, event mix).
* ``metrics`` — run a synthetic fleet with observability enabled and
  print the fleet snapshot as JSON.
* ``serve-bench`` — replay power-law traffic through the online serving
  frontend and print p50/p99 latency, QPS per shard, and cache hit rate.
* ``retrieval-bench`` — build an IVF ANN index over a synthetic catalog
  and print recall@k and exact-vs-ANN query timings per nprobe.
* ``chaos`` — run a scripted chaos drill (flash sale, bot flood, cell
  outage, ...) against the overload-protected serving stack and print
  the machine-checkable verdict.
* ``run-day`` — run the daily loop under the declarative DAG
  orchestrator (or ``--serial`` for the imperative reference path),
  optionally rerunning only ``--blocks`` of the last day's graph, and
  print per-block schedules and the sealed day record.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import (
    BPRHyperParams,
    BPRModel,
    BPRTrainer,
    GridSpec,
    HoldoutEvaluator,
    MarketplaceSpec,
    RetailerSpec,
    SigmundService,
    TrainerSettings,
    build_cluster,
    dataset_from_synthetic,
    generate_marketplace,
    generate_retailer,
)
from repro.data.loaders import dataset_from_files
from repro.models.popularity import PopularityModel


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sigmund reproduction: recommendations as a service",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="single-retailer walk-through")
    demo.add_argument("--items", type=int, default=300)
    demo.add_argument("--users", type=int, default=250)
    demo.add_argument("--events", type=int, default=4000)
    demo.add_argument("--factors", type=int, default=16)
    demo.add_argument("--epochs", type=int, default=8)
    demo.add_argument("--seed", type=int, default=7)

    service = commands.add_parser("service", help="multi-tenant daily loop")
    service.add_argument("--retailers", type=int, default=4)
    service.add_argument("--days", type=int, default=3)
    service.add_argument("--median-items", type=int, default=80)
    service.add_argument("--seed", type=int, default=0)
    service.add_argument(
        "--workers", type=int, default=0,
        help="fleet worker processes for Train() map tasks; 0 or 1 runs "
             "the serial reference path (outputs are identical either way)",
    )

    train = commands.add_parser("train", help="train on CSV data")
    train.add_argument("catalog", help="catalog CSV path")
    train.add_argument("events", help="interactions CSV path")
    train.add_argument("--retailer-id", default="csv_retailer")
    train.add_argument("--factors", type=int, default=16)
    train.add_argument("--epochs", type=int, default=8)
    train.add_argument(
        "--workers", type=int, default=1,
        help="Hogwild worker processes updating the model lock-free in "
             "shared memory; 1 runs the serial trainer",
    )

    inspect = commands.add_parser("inspect", help="summarize CSV data")
    inspect.add_argument("catalog", help="catalog CSV path")
    inspect.add_argument("events", help="interactions CSV path")
    inspect.add_argument("--retailer-id", default="csv_retailer")

    metrics = commands.add_parser(
        "metrics", help="run a synthetic fleet and print the fleet snapshot"
    )
    metrics.add_argument("--retailers", type=int, default=3)
    metrics.add_argument("--days", type=int, default=1)
    metrics.add_argument("--median-items", type=int, default=80)
    metrics.add_argument("--seed", type=int, default=0)
    metrics.add_argument("--indent", type=int, default=2)

    serve = commands.add_parser(
        "serve-bench",
        help="replay power-law traffic through the serving frontend",
    )
    serve.add_argument("--retailers", type=int, default=4)
    serve.add_argument("--items", type=int, default=800,
                       help="largest retailer's catalog size")
    serve.add_argument("--requests", type=int, default=2000)
    serve.add_argument("--users", type=int, default=100_000)
    serve.add_argument("--qps", type=float, default=1000.0)
    serve.add_argument("--nodes", type=int, default=4)
    serve.add_argument("--shards", type=int, default=16)
    serve.add_argument("--cache-ttl-ms", type=float, default=60_000.0)
    serve.add_argument("--seed", type=int, default=0)

    retrieval = commands.add_parser(
        "retrieval-bench",
        help="IVF ANN recall and exact-vs-ANN timing on a synthetic catalog",
    )
    retrieval.add_argument("--items", type=int, default=50_000)
    retrieval.add_argument("--factors", type=int, default=16)
    retrieval.add_argument("--queries", type=int, default=256)
    retrieval.add_argument(
        "--nprobes", type=int, nargs="+", default=[1, 2, 4, 8, 16, 32]
    )
    retrieval.add_argument("--k", type=int, default=100)
    retrieval.add_argument("--seed", type=int, default=0)

    chaos = commands.add_parser(
        "chaos",
        help="run a scripted chaos drill and print the sealed verdict",
    )
    chaos.add_argument(
        "--scenario", required=True,
        help="drill name (see --scenario list), or 'list' to enumerate",
    )
    chaos.add_argument(
        "--unprotected", action="store_true",
        help="disable admission control, breakers, and deadline budgets "
             "(demonstrates why they exist)",
    )
    chaos.add_argument(
        "--out", default=None,
        help="also write the canonical verdict JSON to this path",
    )

    run_day = commands.add_parser(
        "run-day",
        help="daily loop under the declarative DAG orchestrator",
    )
    run_day.add_argument("--retailers", type=int, default=3)
    run_day.add_argument("--days", type=int, default=2)
    run_day.add_argument("--median-items", type=int, default=80)
    run_day.add_argument("--seed", type=int, default=0)
    run_day.add_argument(
        "--serial", action="store_true",
        help="use the imperative serial reference path instead of the "
             "DAG runner (outputs are identical either way)",
    )
    run_day.add_argument(
        "--max-parallelism", type=int, default=1,
        help="DAG scheduler lanes; independent retailers' blocks "
             "overlap on the simulated clock when > 1",
    )
    run_day.add_argument(
        "--blocks", default=None,
        help="comma-separated block names or families (e.g. "
             "'train/r0,retrieval/r0' or 'train') — the LAST day runs "
             "only the closure of this selection, then recovery "
             "completes and commits it; requires the DAG path",
    )
    run_day.add_argument(
        "--schedule", action="store_true",
        help="print each day's per-block (start, finish, lane) schedule",
    )
    run_day.add_argument(
        "--seal-out", default=None,
        help="write the final day's sealed metrics record to this path "
             "as canonical sorted-keys JSON",
    )
    return parser


def cmd_demo(args: argparse.Namespace) -> int:
    retailer = generate_retailer(
        RetailerSpec(
            retailer_id="demo",
            n_items=args.items,
            n_users=args.users,
            n_events=args.events,
            seed=args.seed,
        )
    )
    dataset = dataset_from_synthetic(retailer)
    print(f"retailer: {dataset.n_items} items, "
          f"{dataset.n_train_interactions} interactions")
    model = BPRModel(
        dataset.catalog, dataset.taxonomy,
        BPRHyperParams(n_factors=args.factors, learning_rate=0.08,
                       seed=args.seed),
    )
    report = BPRTrainer(model, dataset, max_epochs=args.epochs).train()
    print(f"trained {report.epochs_run} epochs; "
          f"loss {report.epoch_losses[0]:.3f} -> {report.final_loss:.3f}")
    evaluator = HoldoutEvaluator(dataset)
    bpr_map = evaluator.evaluate(model).map_at_10
    pop_map = evaluator.evaluate(
        PopularityModel(dataset.n_items, dataset.train)
    ).map_at_10
    print(f"MAP@10: bpr={bpr_map:.4f} popularity={pop_map:.4f}")
    example = dataset.holdout[0]
    print("top-5 for one holdout context:")
    for rec in model.recommend(example.context, k=5):
        print(f"  {dataset.catalog[rec.item_index].item_id}  "
              f"score={rec.score:.3f}")
    return 0


def cmd_service(args: argparse.Namespace) -> int:
    with SigmundService(
        build_cluster(n_cells=2, machines_per_cell=6),
        grid=GridSpec.small(),
        settings=TrainerSettings(
            max_epochs_full=3, max_epochs_incremental=2, sampler="uniform"
        ),
        n_workers=args.workers,
    ) as service:
        fleet = generate_marketplace(
            MarketplaceSpec(
                n_retailers=args.retailers,
                median_items=args.median_items,
                seed=args.seed,
            )
        )
        for retailer in fleet:
            service.onboard(dataset_from_synthetic(retailer))
            print(f"onboarded {retailer.retailer_id} ({retailer.n_items} items)")
        for _ in range(args.days):
            report = service.run_day()
            print(
                f"day {report.day}: sweep={report.sweep_kind} "
                f"models={report.configs_trained} served={report.retailers_served} "
                f"cost={report.total_cost:.4f}"
            )
        print(f"total cost: {service.total_cost():.4f}")
        for retailer_id, cost in sorted(service.retailer_costs().items()):
            print(f"  chargeback {retailer_id}: {cost:.4f}")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    dataset = dataset_from_files(args.catalog, args.events, args.retailer_id)
    print(f"loaded: {dataset.n_items} items, "
          f"{dataset.n_train_interactions} interactions, "
          f"{len(dataset.holdout)} holdout examples")
    model = BPRModel(
        dataset.catalog, dataset.taxonomy,
        BPRHyperParams(n_factors=args.factors, learning_rate=0.08),
    )
    if args.workers > 1:
        from repro.fleet.hogwild import SharedMemoryHogwild

        report = SharedMemoryHogwild(
            model, dataset, n_processes=args.workers, max_epochs=args.epochs
        ).train()
    else:
        report = BPRTrainer(model, dataset, max_epochs=args.epochs).train()
    result = HoldoutEvaluator(dataset).evaluate(model)
    print(f"epochs={report.epochs_run} map@10={result.map_at_10:.4f} "
          f"mean_rank={result.metric('mean_rank'):.1f}")
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    dataset = dataset_from_files(args.catalog, args.events, args.retailer_id)
    for key, value in dataset.describe().items():
        print(f"{key}: {value}")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs import MetricsRegistry, Tracer, fleet_snapshot_json

    service = SigmundService(
        build_cluster(n_cells=2, machines_per_cell=6),
        grid=GridSpec.small(),
        settings=TrainerSettings(
            max_epochs_full=3, max_epochs_incremental=2, sampler="uniform"
        ),
        seed=args.seed,
        metrics=MetricsRegistry(),
        tracer=Tracer(),
    )
    fleet = generate_marketplace(
        MarketplaceSpec(
            n_retailers=args.retailers,
            median_items=args.median_items,
            seed=args.seed,
        )
    )
    for retailer in fleet:
        service.onboard(dataset_from_synthetic(retailer))
    for _ in range(args.days):
        service.run_day()
    print(fleet_snapshot_json(service, indent=args.indent))
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.serving.cluster import ServingCluster
    from repro.serving.frontend import PopularityFallback, ServingFrontend
    from repro.serving.traffic import (
        TrafficGenerator,
        synthetic_recommendation_table,
        unique_users,
    )

    catalogs = {
        f"r{i}": max(20, int(args.items / (i + 1)))
        for i in range(args.retailers)
    }
    cluster = ServingCluster(
        n_nodes=args.nodes, n_shards=args.shards, replication=2,
        hot_fraction=0.1,
    )
    fallback = PopularityFallback()
    for retailer_id, n_items in catalogs.items():
        fallback.load_view_counts(
            retailer_id, {item: float(n_items - item) for item in range(n_items)}
        )
        cluster.load_batch(
            retailer_id,
            synthetic_recommendation_table(n_items, seed=args.seed),
            version=1,
        )
    frontend = ServingFrontend(
        cluster, fallback=fallback, cache_ttl_ms=args.cache_ttl_ms
    )
    generator = TrafficGenerator(
        catalogs, n_users=args.users, qps=args.qps, seed=args.seed
    )
    requests = generator.generate(args.requests)
    print(
        f"{len(catalogs)} retailers, {args.users:,} simulated users, "
        f"{args.requests} requests at {args.qps:.0f} qps "
        f"({unique_users(requests)} distinct visitors)"
    )
    for phase in ("cold", "warm"):
        hits_before = frontend.stats.cache_hits
        latencies = [
            frontend.request(
                r.retailer_id, r.context, k=10, now_ms=r.timestamp_ms
            ).latency_ms
            for r in requests
        ]
        duration_s = max(
            (requests[-1].timestamp_ms - requests[0].timestamp_ms) / 1000.0,
            1e-9,
        )
        hit_rate = (frontend.stats.cache_hits - hits_before) / len(requests)
        print(
            f"{phase:>5}: p50={np.percentile(latencies, 50):.3f}ms "
            f"p99={np.percentile(latencies, 99):.3f}ms "
            f"qps/shard={len(requests) / duration_s / args.shards:.1f} "
            f"cache_hit_rate={hit_rate:.3f}"
        )
    stats = frontend.stats
    print(
        f"stale_serves={stats.stale_serves} fallbacks={stats.fallbacks} "
        f"coalesced={stats.coalesced} evictions={stats.cache_evictions}"
    )
    return 0


def cmd_retrieval_bench(args: argparse.Namespace) -> int:
    import time

    from repro.retrieval import (
        ExactRetrieval,
        IVFConfig,
        IVFIndex,
        recall_at_k,
        synthetic_embeddings,
        synthetic_queries,
    )

    vectors, bias = synthetic_embeddings(
        args.items, args.factors, seed=args.seed
    )
    queries = synthetic_queries(vectors, args.queries, seed=args.seed + 1)
    exact = ExactRetrieval(vectors, bias)
    build_start = time.perf_counter()
    index = IVFIndex.build(vectors, bias, IVFConfig(seed=args.seed))
    build_seconds = time.perf_counter() - build_start
    print(
        f"{args.items:,} items, {args.factors} factors: "
        f"{index.n_clusters} clusters built in {build_seconds:.2f}s"
    )
    start = time.perf_counter()
    exact.search(queries, args.k)
    exact_ms = (time.perf_counter() - start) * 1000.0 / args.queries
    print(f"exact: {exact_ms:.3f} ms/query")
    for nprobe in args.nprobes:
        start = time.perf_counter()
        index.search(queries, args.k, nprobe=nprobe)
        ann_ms = (time.perf_counter() - start) * 1000.0 / args.queries
        recall = recall_at_k(index, exact, queries, args.k, nprobe)
        print(
            f"nprobe={nprobe:>3}: recall@{args.k}={recall:.4f} "
            f"{ann_ms:.3f} ms/query ({exact_ms / max(ann_ms, 1e-9):.1f}x)"
        )
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.scenarios import get_scenario, run_scenario, scenario_names

    if args.scenario == "list":
        for name in scenario_names():
            print(f"{name:>16}: {get_scenario(name).description}")
        return 0
    scenario = get_scenario(args.scenario)
    protected = not args.unprotected
    mode = "protected" if protected else "UNPROTECTED"
    print(f"scenario {scenario.name} ({mode}): {scenario.description}")
    result = run_scenario(scenario, protected=protected)
    for stats in result.day_stats:
        degraded = {
            k: v for k, v in stats.buckets.items()
            if k in ("stale", "fallback", "shed", "empty") and v
        }
        print(
            f"day {stats.day}: p50={stats.p50_ms:.2f}ms "
            f"p99={stats.p99_ms:.2f}ms "
            f"availability={stats.availability:.4f}"
            + (f" degraded={degraded}" if degraded else "")
        )
    verdict = result.verdict()
    for check in verdict["checks"]:
        flag = "PASS" if check["passed"] else "FAIL"
        print(f"  [{flag}] {check['name']}: {check['detail']}")
    print("verdict:", "PASS" if verdict["passed"] else "FAIL")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(result.verdict_json())
        print(f"wrote {args.out}")
    return 0 if verdict["passed"] else 1


def cmd_run_day(args: argparse.Namespace) -> int:
    import json

    from repro.obs import MetricsRegistry

    service = SigmundService(
        build_cluster(n_cells=2, machines_per_cell=6),
        grid=GridSpec.small(),
        settings=TrainerSettings(
            max_epochs_full=3, max_epochs_incremental=2, sampler="uniform"
        ),
        seed=args.seed,
        metrics=MetricsRegistry(),
        orchestration="serial" if args.serial else "dag",
        max_parallelism=args.max_parallelism,
    )
    fleet = generate_marketplace(
        MarketplaceSpec(
            n_retailers=args.retailers,
            median_items=args.median_items,
            seed=args.seed,
        )
    )
    for retailer in fleet:
        service.onboard(dataset_from_synthetic(retailer))
        print(f"onboarded {retailer.retailer_id} ({retailer.n_items} items)")
    blocks = (
        [token.strip() for token in args.blocks.split(",") if token.strip()]
        if args.blocks
        else None
    )
    for day_index in range(args.days):
        if blocks and day_index == args.days - 1:
            service.run_day(blocks=blocks)
            partial = service.last_dag_run
            counts = ", ".join(
                f"{status}={n}"
                for status, n in sorted(partial.status_counts().items())
            )
            print(f"day {day_index} partial ({args.blocks}): {counts}")
            report = service.recover()
        else:
            report = service.run_day()
        print(
            f"day {report.day}: sweep={report.sweep_kind} "
            f"models={report.configs_trained} "
            f"served={report.retailers_served} "
            f"cost={report.total_cost:.4f}"
        )
        if args.schedule and service.last_dag_run is not None:
            result = service.last_dag_run
            for run in result.schedule():
                lane = "-" if run.lane is None else run.lane
                print(
                    f"  [{run.start:8.2f} -> {run.finish:8.2f}] "
                    f"lane={lane} {run.name} ({run.status})"
                )
            print(f"  makespan={result.makespan:.2f}s")
    if args.seal_out:
        last_day = service.journal.committed_days()[-1]
        seal = service.journal.day_seal(last_day)
        with open(args.seal_out, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(seal, sort_keys=True, indent=2))
        print(f"wrote day {last_day} seal to {args.seal_out}")
    return 0


COMMANDS = {
    "demo": cmd_demo,
    "service": cmd_service,
    "train": cmd_train,
    "inspect": cmd_inspect,
    "metrics": cmd_metrics,
    "serve-bench": cmd_serve_bench,
    "retrieval-bench": cmd_retrieval_bench,
    "chaos": cmd_chaos,
    "run-day": cmd_run_day,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
