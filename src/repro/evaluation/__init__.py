"""Goodness metrics and holdout evaluation (paper section III-C2).

Sigmund selects models by MAP@10 on a per-retailer leave-last-out holdout,
estimates MAP on a 10% item sample for very large retailers, and rejects
AUC because it weighs all rank positions equally and barely separates
good from mediocre models on large catalogs.  Everything needed to
reproduce those claims lives here.
"""

from repro.evaluation.evaluator import EvaluationResult, HoldoutEvaluator
from repro.evaluation.metrics import (
    auc_from_rank,
    average_precision_at_k,
    mean_rank_metrics,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
)
from repro.evaluation.sampled import SampledRankEstimator

__all__ = [
    "EvaluationResult",
    "HoldoutEvaluator",
    "average_precision_at_k",
    "precision_at_k",
    "recall_at_k",
    "ndcg_at_k",
    "auc_from_rank",
    "mean_rank_metrics",
    "SampledRankEstimator",
]
