"""Ranking metrics for single-relevant-item holdouts.

The leave-last-out protocol gives every evaluation example exactly one
relevant item, so each metric reduces to a function of that item's
1-based rank among the scored pool:

* ``AP@K = 1/rank`` if ``rank <= K`` else 0 (MAP is the mean over examples)
* ``Precision@K = 1/K`` if ``rank <= K`` else 0
* ``Recall@K = 1`` if ``rank <= K`` else 0
* ``nDCG@K = 1/log2(rank+1)`` if ``rank <= K`` else 0
* ``AUC = (pool - rank) / (pool - 1)`` — the fraction of irrelevant items
  ranked below the relevant one.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np


def _check_rank(rank: int, pool_size: int) -> None:
    if rank < 1 or rank > pool_size:
        raise ValueError(f"rank {rank} outside pool of size {pool_size}")


def average_precision_at_k(rank: int, k: int = 10) -> float:
    """AP@K with a single relevant item: reciprocal rank, cut at K."""
    if k < 1:
        raise ValueError("k must be >= 1")
    return 1.0 / rank if rank <= k else 0.0


def precision_at_k(rank: int, k: int = 10) -> float:
    """Fraction of the top-K slots filled by the (single) relevant item."""
    if k < 1:
        raise ValueError("k must be >= 1")
    return 1.0 / k if rank <= k else 0.0


def recall_at_k(rank: int, k: int = 10) -> float:
    """Whether the single relevant item makes the top K."""
    if k < 1:
        raise ValueError("k must be >= 1")
    return 1.0 if rank <= k else 0.0


def ndcg_at_k(rank: int, k: int = 10) -> float:
    """nDCG@K with one relevant item (ideal DCG is 1 at rank 1)."""
    if k < 1:
        raise ValueError("k must be >= 1")
    return 1.0 / float(np.log2(rank + 1)) if rank <= k else 0.0


def auc_from_rank(rank: int, pool_size: int) -> float:
    """AUC: fraction of irrelevant items the relevant one beats.

    The paper disregards AUC because "it considers all positions on the
    ranked list with equal importance" — reproduced by experiment E11.
    """
    _check_rank(rank, pool_size)
    if pool_size < 2:
        return 1.0
    return (pool_size - rank) / (pool_size - 1)


def mean_rank_metrics(
    ranks: Sequence[int], pool_size: int, k: int = 10
) -> Dict[str, float]:
    """All metrics averaged over a batch of holdout ranks.

    ``pool_size`` is the number of items each rank was computed against
    (the catalog size for exact evaluation, the sample size for sampled).
    ``ranks`` may be any sequence, including a numpy array (whose truth
    value is ambiguous, hence the explicit length check).
    """
    if len(ranks) == 0:
        return {
            f"map@{k}": 0.0,
            f"precision@{k}": 0.0,
            f"recall@{k}": 0.0,
            f"ndcg@{k}": 0.0,
            "auc": 0.0,
            "mean_rank": 0.0,
            "examples": 0.0,
        }
    ranks_arr = np.asarray(ranks, dtype=np.int64)
    return {
        f"map@{k}": float(np.mean([average_precision_at_k(r, k) for r in ranks_arr])),
        f"precision@{k}": float(np.mean([precision_at_k(r, k) for r in ranks_arr])),
        f"recall@{k}": float(np.mean([recall_at_k(r, k) for r in ranks_arr])),
        f"ndcg@{k}": float(np.mean([ndcg_at_k(r, k) for r in ranks_arr])),
        "auc": float(np.mean([auc_from_rank(r, pool_size) for r in ranks_arr])),
        "mean_rank": float(ranks_arr.mean()),
        "examples": float(ranks_arr.size),
    }
