"""Sampled rank estimation for large catalogs (paper section III-C2).

Computing an exact holdout rank means scoring every item in the catalog
for every holdout example — too expensive for the largest retailers.
Sigmund instead scores the held-out item against a 10% sample of the
catalog and extrapolates; the paper "verified that this approximation
does not hurt our model selection criterion" (experiment E4 reproduces
that verification).

The extrapolation: if the target beats all but ``b`` of ``s`` sampled
items, the estimated full-catalog rank is ``1 + b * (N - 1) / s`` — the
expected number of better items scales with the inverse sampling rate.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.data.sessions import UserContext
from repro.models.base import Recommender
from repro.rng import SeedLike, make_rng

#: Examples scored per matrix in the batched path.  Chunking keeps the
#: scored column set close to the scalar path's (sample + one target) —
#: scoring sample + *every* target at once is wider than the loop it
#: replaces once the holdout has thousands of distinct targets.
_CHUNK_EXAMPLES = 256


class SampledRankEstimator:
    """Estimates full-catalog holdout ranks from an item sample."""

    def __init__(
        self,
        n_items: int,
        sample_fraction: float = 0.1,
        min_sample: int = 50,
        seed: SeedLike = None,
    ):
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError("sample_fraction must be in (0, 1]")
        self.n_items = n_items
        self.sample_fraction = sample_fraction
        self.min_sample = min_sample
        self._rng = make_rng(seed)

    @property
    def sample_size(self) -> int:
        """Number of candidate items scored per example (never > catalog)."""
        target = int(round(self.n_items * self.sample_fraction))
        return int(min(self.n_items, max(self.min_sample, target)))

    def estimate_rank(
        self,
        model: Recommender,
        context: UserContext,
        target_item: int,
        sample: Optional[Sequence[int]] = None,
    ) -> float:
        """Estimated 1-based full-catalog rank of ``target_item``.

        ``sample`` lets callers reuse one sample across examples (cheaper,
        and what a production pipeline does); by default a fresh uniform
        sample is drawn.  The target item itself is always scored.
        """
        size = self.sample_size
        if size >= self.n_items:
            return float(model.rank_of(context, target_item))
        if sample is None:
            pool = self._rng.choice(self.n_items, size=size, replace=False)
        else:
            pool = np.asarray(list(sample), dtype=np.int64)
        pool = pool[pool != target_item]
        if pool.size == 0:
            return 1.0
        # One pooled scoring call for sample + target: scores are only
        # comparable within a call anyway, and a second Python round trip
        # for a single item costs as much as the whole sample.
        scores = np.asarray(
            model.score_items(context, np.append(pool, target_item)),
            dtype=np.float64,
        )
        target_score = float(scores[-1])
        if not np.isfinite(target_score):
            # Diverged models rank worst (see Recommender.rank_of).
            return float(self.n_items)
        better = int(np.sum(scores[:-1] >= target_score))
        # Scale the observed better-count up to the full catalog.
        scale = (self.n_items - 1) / pool.size
        return 1.0 + better * scale

    def estimate_ranks(
        self,
        model: Recommender,
        contexts: Sequence[UserContext],
        target_items: Sequence[int],
        sample: Optional[Sequence[int]] = None,
    ) -> List[float]:
        """Batched :meth:`estimate_rank` over aligned contexts/targets.

        All contexts are scored against one shared sample through a
        single :meth:`Recommender.score_contexts` matrix; per-example
        semantics (target always scored, target dropped from its own
        pool, empty-pool and diverged-model fallbacks, the
        ``1 + b * (N - 1) / s`` extrapolation) match the scalar method
        example-for-example.  ``sample=None`` draws one shared sample.
        """
        contexts = list(contexts)
        targets = np.asarray(list(target_items), dtype=np.int64)
        if len(contexts) != targets.size:
            raise ValueError(
                f"got {len(contexts)} contexts but {targets.size} targets"
            )
        batch = targets.size
        if batch == 0:
            return []
        if self.sample_size >= self.n_items:
            # Small catalog: exact ranks over everything (rank_of semantics).
            ranks: List[float] = []
            for start in range(0, batch, _CHUNK_EXAMPLES):
                stop = min(start + _CHUNK_EXAMPLES, batch)
                matrix = np.asarray(
                    model.score_contexts(contexts[start:stop]), dtype=np.float64
                )
                target_scores = matrix[
                    np.arange(stop - start), targets[start:stop]
                ]
                chunk_ranks = np.sum(matrix >= target_scores[:, None], axis=1)
                ranks.extend(
                    np.where(
                        np.isfinite(target_scores), chunk_ranks, matrix.shape[1]
                    ).astype(np.float64)
                )
            return [float(rank) for rank in ranks]
        pool = (
            self.draw_sample()
            if sample is None
            else np.asarray(list(sample), dtype=np.int64)
        )
        # Score sample + targets through one matrix per chunk of examples;
        # every example's own target is masked out of its pool afterwards.
        # Chunking keeps the scored column set near the loop path's
        # (sample + one target), instead of sample + every target at once.
        ranks = []
        for start in range(0, batch, _CHUNK_EXAMPLES):
            stop = min(start + _CHUNK_EXAMPLES, batch)
            ranks.extend(
                self._estimate_rank_chunk(
                    model, contexts[start:stop], targets[start:stop], pool
                )
            )
        return ranks

    def _estimate_rank_chunk(
        self,
        model: Recommender,
        contexts: Sequence[UserContext],
        targets: np.ndarray,
        pool: np.ndarray,
    ) -> List[float]:
        rows = np.arange(targets.size)
        columns, inverse = np.unique(
            np.concatenate([pool, targets]), return_inverse=True
        )
        matrix = np.asarray(
            model.score_contexts(contexts, columns), dtype=np.float64
        )
        sample_scores = matrix[:, inverse[: pool.size]]
        target_scores = matrix[rows, inverse[pool.size :]]
        in_pool = pool[None, :] != targets[:, None]
        pool_sizes = in_pool.sum(axis=1)
        better = np.sum(
            (sample_scores >= target_scores[:, None]) & in_pool, axis=1
        )
        scale = (self.n_items - 1) / np.maximum(pool_sizes, 1)
        ranks = 1.0 + better * scale
        ranks = np.where(np.isfinite(target_scores), ranks, float(self.n_items))
        ranks = np.where(pool_sizes == 0, 1.0, ranks)
        return [float(rank) for rank in ranks]

    def draw_sample(self) -> np.ndarray:
        """A reusable catalog sample (shared across holdout examples)."""
        size = min(self.sample_size, self.n_items)
        return self._rng.choice(self.n_items, size=size, replace=False)
