"""Sampled rank estimation for large catalogs (paper section III-C2).

Computing an exact holdout rank means scoring every item in the catalog
for every holdout example — too expensive for the largest retailers.
Sigmund instead scores the held-out item against a 10% sample of the
catalog and extrapolates; the paper "verified that this approximation
does not hurt our model selection criterion" (experiment E4 reproduces
that verification).

The extrapolation: if the target beats all but ``b`` of ``s`` sampled
items, the estimated full-catalog rank is ``1 + b * (N - 1) / s`` — the
expected number of better items scales with the inverse sampling rate.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.data.sessions import UserContext
from repro.models.base import Recommender
from repro.rng import SeedLike, make_rng


class SampledRankEstimator:
    """Estimates full-catalog holdout ranks from an item sample."""

    def __init__(
        self,
        n_items: int,
        sample_fraction: float = 0.1,
        min_sample: int = 50,
        seed: SeedLike = None,
    ):
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError("sample_fraction must be in (0, 1]")
        self.n_items = n_items
        self.sample_fraction = sample_fraction
        self.min_sample = min_sample
        self._rng = make_rng(seed)

    @property
    def sample_size(self) -> int:
        """Number of candidate items scored per example (never > catalog)."""
        target = int(round(self.n_items * self.sample_fraction))
        return int(min(self.n_items, max(self.min_sample, target)))

    def estimate_rank(
        self,
        model: Recommender,
        context: UserContext,
        target_item: int,
        sample: Optional[Sequence[int]] = None,
    ) -> float:
        """Estimated 1-based full-catalog rank of ``target_item``.

        ``sample`` lets callers reuse one sample across examples (cheaper,
        and what a production pipeline does); by default a fresh uniform
        sample is drawn.  The target item itself is always scored.
        """
        size = self.sample_size
        if size >= self.n_items:
            return float(model.rank_of(context, target_item))
        if sample is None:
            pool = self._rng.choice(self.n_items, size=size, replace=False)
        else:
            pool = np.asarray(list(sample), dtype=np.int64)
        pool = pool[pool != target_item]
        if pool.size == 0:
            return 1.0
        scores = np.asarray(model.score_items(context, pool), dtype=np.float64)
        target_score = float(
            np.asarray(model.score_items(context, [target_item]))[0]
        )
        if not np.isfinite(target_score):
            # Diverged models rank worst (see Recommender.rank_of).
            return float(self.n_items)
        better = int(np.sum(scores >= target_score))
        # Scale the observed better-count up to the full catalog.
        scale = (self.n_items - 1) / pool.size
        return 1.0 + better * scale

    def draw_sample(self) -> np.ndarray:
        """A reusable catalog sample (shared across holdout examples)."""
        size = min(self.sample_size, self.n_items)
        return self._rng.choice(self.n_items, size=size, replace=False)
