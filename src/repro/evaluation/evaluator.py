"""Holdout evaluation harness: model x dataset -> metrics.

Produces the numbers model selection runs on: MAP@10 (exact for small
retailers, sampled for large ones), plus the companion metrics the paper
discusses (precision/recall@K, nDCG, AUC, mean rank).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.data.datasets import RetailerDataset
from repro.evaluation.metrics import mean_rank_metrics
from repro.evaluation.sampled import SampledRankEstimator
from repro.models.base import Recommender
from repro.rng import SeedLike

#: Catalogs at or above this size switch to sampled evaluation by default,
#: mirroring the paper's "approximate MAP only for large merchants".
DEFAULT_SAMPLED_THRESHOLD = 2000


@dataclass
class EvaluationResult:
    """Metrics of one model on one retailer's holdout."""

    retailer_id: str
    metrics: Dict[str, float]
    ranks: List[float] = field(default_factory=list, repr=False)
    sampled: bool = False

    @property
    def map_at_10(self) -> float:
        return self.metrics.get("map@10", 0.0)

    def metric(self, name: str) -> float:
        try:
            return self.metrics[name]
        except KeyError:
            raise KeyError(
                f"metric {name!r} not computed; available: {sorted(self.metrics)}"
            ) from None


class HoldoutEvaluator:
    """Evaluates recommenders on a retailer's leave-last-out holdout."""

    def __init__(
        self,
        dataset: RetailerDataset,
        k: int = 10,
        sample_fraction: float = 0.1,
        sampled_threshold: int = DEFAULT_SAMPLED_THRESHOLD,
        seed: SeedLike = 1234,
        batched: bool = True,
    ):
        self.dataset = dataset
        self.k = k
        self.sample_fraction = sample_fraction
        self.sampled_threshold = sampled_threshold
        self.seed = seed
        #: Stack every holdout context into one score matrix instead of
        #: looping one scoring call per example.  Same ranks either way;
        #: the loop path survives as the parity/debugging reference.
        self.batched = batched

    def evaluate(
        self, model: Recommender, force_exact: bool = False, force_sampled: bool = False
    ) -> EvaluationResult:
        """Rank every holdout item and aggregate the metrics.

        Exact evaluation for small catalogs; sampled (10% of items, one
        shared sample) once the catalog crosses ``sampled_threshold``.
        """
        use_sampled = force_sampled or (
            not force_exact and self.dataset.n_items >= self.sampled_threshold
        )
        if use_sampled:
            ranks = self._sampled_ranks(model)
        else:
            ranks = self._exact_ranks(model)
        metrics = self._aggregate(ranks)
        return EvaluationResult(
            retailer_id=self.dataset.retailer_id,
            metrics=metrics,
            ranks=ranks,
            sampled=use_sampled,
        )

    def _exact_ranks(self, model: Recommender) -> List[float]:
        """Full-catalog holdout ranks, one score matrix for all examples.

        Semantically identical to ``rank_of(context, held_out_item)`` over
        the whole catalog (worst-case rank among ties, diverged scores
        rank last), computed as a vectorized ``>=`` reduction over a
        single ``(examples, items)`` :meth:`Recommender.score_contexts`
        matrix — the hot loop of every grid-search trial.
        """
        if not self.batched:
            return self._exact_ranks_loop(model)
        holdout = self.dataset.holdout
        if not holdout:
            return []
        contexts = [example.context for example in holdout]
        targets = np.asarray(
            [example.held_out_item for example in holdout], dtype=np.int64
        )
        # Chunk over examples so the score matrix stays bounded at
        # (chunk, n_items) regardless of holdout size.
        chunk = 1024
        ranks: List[float] = []
        for start in range(0, targets.size, chunk):
            stop = min(start + chunk, targets.size)
            matrix = np.asarray(
                model.score_contexts(contexts[start:stop]), dtype=np.float64
            )
            target_scores = matrix[np.arange(stop - start), targets[start:stop]]
            chunk_ranks = np.sum(matrix >= target_scores[:, None], axis=1)
            ranks.extend(
                np.where(
                    np.isfinite(target_scores), chunk_ranks, matrix.shape[1]
                ).astype(np.float64)
            )
        return [float(rank) for rank in ranks]

    def _exact_ranks_loop(self, model: Recommender) -> List[float]:
        """The per-example reference path (one ``score_all`` per example)."""
        ranks: List[float] = []
        for example in self.dataset.holdout:
            scores = np.asarray(model.score_all(example.context), dtype=np.float64)
            target_score = scores[example.held_out_item]
            if not np.isfinite(target_score):
                ranks.append(float(scores.size))
            else:
                ranks.append(float(np.sum(scores >= target_score)))
        return ranks

    def _sampled_ranks(self, model: Recommender) -> List[float]:
        estimator = SampledRankEstimator(
            self.dataset.n_items,
            sample_fraction=self.sample_fraction,
            seed=self.seed,
        )
        sample = estimator.draw_sample()
        if self.batched:
            return estimator.estimate_ranks(
                model,
                [example.context for example in self.dataset.holdout],
                [example.held_out_item for example in self.dataset.holdout],
                sample=sample,
            )
        return [
            estimator.estimate_rank(
                model, example.context, example.held_out_item, sample=sample
            )
            for example in self.dataset.holdout
        ]

    def _aggregate(self, ranks: List[float]) -> Dict[str, float]:
        # Estimated ranks are fractional; metrics take the ceiling, which
        # is pessimistic (never inflates MAP through sampling).
        int_ranks = [max(1, math.ceil(rank)) for rank in ranks]
        pool = max(self.dataset.n_items, max(int_ranks, default=1))
        return mean_rank_metrics(int_ranks, pool_size=pool, k=self.k)
