"""Negative-item sampling heuristics (paper section III-B3).

BPR is sensitive to which "negative" item each triple contrasts against.
Sigmund combines several heuristics:

* pick items **far away in the taxonomy** from the positive (LCA distance),
* **exclude highly co-bought / co-viewed** items — they are probably good
  recommendations, not negatives,
* **adaptive/affinity sampling** (Rendle & Freudenthaler [16]) — prefer
  negatives the current model scores highly, which yields larger, more
  informative gradients.

Each sampler implements :class:`NegativeSampler`;
:class:`CompositeNegativeSampler` chains them the way Sigmund does.
"""

from __future__ import annotations

import abc
from typing import Mapping, Optional, Set

import numpy as np

from repro.data.sessions import UserContext
from repro.data.taxonomy import Taxonomy
from repro.exceptions import DataError
from repro.models.base import Recommender

#: Rejection-sampling attempts before a sampler falls back to uniform.
MAX_REJECTION_ATTEMPTS = 20


class NegativeSampler(abc.ABC):
    """Draws a negative item for a (context, positive) training pair."""

    def __init__(self, n_items: int):
        if n_items < 2:
            raise DataError("need at least 2 items to sample negatives")
        self.n_items = n_items

    @abc.abstractmethod
    def sample(
        self, context: UserContext, positive: int, rng: np.random.Generator
    ) -> int:
        """Return a negative item index (never the positive itself)."""

    def _uniform(
        self, positive: int, rng: np.random.Generator, avoid: Optional[Set[int]] = None
    ) -> int:
        """Uniform fallback that avoids the positive (and ``avoid`` best-effort)."""
        for _ in range(MAX_REJECTION_ATTEMPTS):
            candidate = int(rng.integers(self.n_items))
            if candidate == positive:
                continue
            if avoid is not None and candidate in avoid:
                continue
            return candidate
        # Degenerate catalogs (everything in ``avoid``): just avoid the positive.
        candidate = int(rng.integers(self.n_items - 1))
        return candidate if candidate < positive else candidate + 1


class UniformNegativeSampler(NegativeSampler):
    """Uniform over the catalog, avoiding the positive and the context items."""

    def sample(
        self, context: UserContext, positive: int, rng: np.random.Generator
    ) -> int:
        return self._uniform(positive, rng, avoid=set(context.item_indices))


class TaxonomyAwareSampler(NegativeSampler):
    """Prefer items at a large LCA distance from the positive.

    Items near the positive in the taxonomy are likely substitutes — bad
    negatives.  Rejection-samples until the candidate is at LCA distance
    >= ``min_distance``; falls back to uniform if the taxonomy is too
    shallow to satisfy the constraint.
    """

    def __init__(self, n_items: int, taxonomy: Taxonomy, min_distance: int = 3):
        super().__init__(n_items)
        self.taxonomy = taxonomy
        self.min_distance = min_distance

    def sample(
        self, context: UserContext, positive: int, rng: np.random.Generator
    ) -> int:
        seen = set(context.item_indices)
        for _ in range(MAX_REJECTION_ATTEMPTS):
            candidate = int(rng.integers(self.n_items))
            if candidate == positive or candidate in seen:
                continue
            if self.taxonomy.lca_distance(candidate, positive) >= self.min_distance:
                return candidate
        return self._uniform(positive, rng, avoid=seen)


class CoOccurrenceExcludingSampler(NegativeSampler):
    """Never sample items strongly co-viewed/co-bought with the positive.

    ``co_items`` maps each item to the set of items it frequently co-occurs
    with (built from :mod:`repro.cooccurrence` counts above a threshold).
    """

    def __init__(self, n_items: int, co_items: Mapping[int, Set[int]]):
        super().__init__(n_items)
        self.co_items = co_items

    def sample(
        self, context: UserContext, positive: int, rng: np.random.Generator
    ) -> int:
        avoid = set(self.co_items.get(positive, ())) | set(context.item_indices)
        return self._uniform(positive, rng, avoid=avoid)


class AffinityNegativeSampler(NegativeSampler):
    """Adaptive sampling: pick the highest-scoring of a few uniform draws.

    Negatives the model already (wrongly) ranks highly produce the largest
    gradient — the oversampling idea of Rendle & Freudenthaler [16].
    """

    def __init__(self, n_items: int, model: Recommender, pool_size: int = 8):
        super().__init__(n_items)
        self.model = model
        self.pool_size = max(1, pool_size)

    def sample(
        self, context: UserContext, positive: int, rng: np.random.Generator
    ) -> int:
        seen = set(context.item_indices)
        pool = []
        for _ in range(self.pool_size * 3):
            candidate = int(rng.integers(self.n_items))
            if candidate != positive and candidate not in seen:
                pool.append(candidate)
            if len(pool) >= self.pool_size:
                break
        if not pool:
            return self._uniform(positive, rng, avoid=seen)
        if len(pool) == 1:
            return pool[0]
        scores = self.model.score_items(context, pool)
        return pool[int(np.argmax(scores))]


class CompositeNegativeSampler(NegativeSampler):
    """Sigmund's combination: taxonomy-aware, co-occurrence-excluding, adaptive.

    Draws a small pool where each member satisfies the taxonomy-distance
    and co-occurrence-exclusion constraints, then picks the member the
    model scores highest (adaptive step).  Any stage degrades gracefully
    when its constraint cannot be met.
    """

    def __init__(
        self,
        n_items: int,
        taxonomy: Optional[Taxonomy] = None,
        co_items: Optional[Mapping[int, Set[int]]] = None,
        model: Optional[Recommender] = None,
        min_lca_distance: int = 3,
        pool_size: int = 4,
    ):
        super().__init__(n_items)
        self.taxonomy = taxonomy
        self.co_items = co_items or {}
        self.model = model
        self.min_lca_distance = min_lca_distance
        self.pool_size = max(1, pool_size)

    def _acceptable(self, candidate: int, positive: int, seen: Set[int]) -> bool:
        if candidate == positive or candidate in seen:
            return False
        if candidate in self.co_items.get(positive, ()):
            return False
        if self.taxonomy is not None:
            if self.taxonomy.lca_distance(candidate, positive) < self.min_lca_distance:
                return False
        return True

    def sample(
        self, context: UserContext, positive: int, rng: np.random.Generator
    ) -> int:
        seen = set(context.item_indices)
        pool = []
        for _ in range(MAX_REJECTION_ATTEMPTS * self.pool_size):
            candidate = int(rng.integers(self.n_items))
            if self._acceptable(candidate, positive, seen):
                pool.append(candidate)
            if len(pool) >= self.pool_size:
                break
        if not pool:
            return self._uniform(positive, rng, avoid=seen)
        if self.model is None or len(pool) == 1:
            return pool[0]
        scores = self.model.score_items(context, pool)
        return pool[int(np.argmax(scores))]
