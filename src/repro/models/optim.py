"""Stochastic-gradient optimizers: plain SGD and Adagrad.

The paper trains BPR with SGD but sets per-parameter learning rates with
Adagrad [18], which "damps the learning rates of frequently updated items,
and relatively increases the rate for the rare items" and empirically
"converges faster and is more reliable than the basic SGD" (section
III-C1).  Incremental runs reset the accumulated norms to zero before
continuing (section III-C3); :meth:`Adagrad.reset_norms` implements that.

Optimizers here update *rows* of parameter matrices in place, which is the
access pattern of BPR: one training triple touches a handful of embedding
rows.
"""

from __future__ import annotations

import abc
from typing import Dict

import numpy as np


class Optimizer(abc.ABC):
    """Row-wise parameter updater.

    A parameter matrix is registered once under a name; afterwards
    :meth:`step` applies a gradient to one row (or, with ``row=None``, to
    a whole matrix of equal shape).
    """

    def __init__(self, learning_rate: float):
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        self.learning_rate = learning_rate

    @abc.abstractmethod
    def register(self, name: str, param: np.ndarray) -> None:
        """Declare a parameter array before any step touches it."""

    @abc.abstractmethod
    def step(self, name: str, param: np.ndarray, row: int, grad: np.ndarray) -> None:
        """Apply ``grad`` (ascent direction) to ``param[row]`` in place."""

    @abc.abstractmethod
    def step_rows(
        self, name: str, param: np.ndarray, rows: np.ndarray, grads: np.ndarray
    ) -> None:
        """Apply one gradient per entry of ``rows`` to ``param`` in place.

        ``rows`` may contain duplicates (two triples in a mini-batch can
        touch the same embedding row); duplicate contributions are summed
        with ``np.add.at``, so the result is deterministic regardless of
        ordering.  All gradients are taken as evaluated at the pre-batch
        parameters — standard mini-batch semantics.  With a single row
        this is exactly :meth:`step`.
        """

    def reset_norms(self) -> None:
        """Forget any accumulated state (no-op unless the optimizer has some)."""

    def state_size_bytes(self) -> int:
        """Approximate memory held by optimizer state."""
        return 0

    # ------------------------------------------------------------------
    # State hand-off (fleet workers, shared-memory Hogwild)
    # ------------------------------------------------------------------
    def get_state(self) -> Dict[str, np.ndarray]:
        """Deep copies of accumulated state, keyed like the parameters.

        Stateless optimizers return an empty dict; the pair
        ``(model.get_state(), model.optimizer.get_state())`` is exactly
        what a fleet worker ships back so the coordinator can rebuild the
        trained model without pickling live objects.
        """
        return {}

    def set_state(self, state: Dict[str, np.ndarray]) -> None:
        """Restore accumulated state from :meth:`get_state` output in place."""
        if state:
            raise ValueError(
                f"stateless optimizer given state for {sorted(state)!r}"
            )

    def bind_state(self, arrays: "Dict[str, np.ndarray]") -> None:
        """Rebind accumulator storage to externally allocated arrays.

        Shared-memory Hogwild points every worker process's optimizer at
        the *same* accumulator buffers, so adaptive learning rates stay
        global across processes instead of silently forking per worker.
        Current values are whatever the arrays hold — callers copy state
        in beforehand.  Stateless optimizers ignore the call.
        """
        del arrays


class Sgd(Optimizer):
    """Plain stochastic gradient descent with a constant learning rate."""

    def register(self, name: str, param: np.ndarray) -> None:
        # SGD is stateless; registration is accepted for interface parity.
        del name, param

    def step(self, name: str, param: np.ndarray, row: int, grad: np.ndarray) -> None:
        param[row] += self.learning_rate * grad

    def step_rows(
        self, name: str, param: np.ndarray, rows: np.ndarray, grads: np.ndarray
    ) -> None:
        np.add.at(param, rows, self.learning_rate * grads)


class Adagrad(Optimizer):
    """Adagrad: per-element adaptive learning rates.

    Keeps the running sum of squared gradients for every parameter element
    and scales each step by its inverse square root, so hot (popular) items
    cool down while rare items keep learning.
    """

    def __init__(self, learning_rate: float, epsilon: float = 1e-8):
        super().__init__(learning_rate)
        self.epsilon = epsilon
        self._accumulators: Dict[str, np.ndarray] = {}

    def register(self, name: str, param: np.ndarray) -> None:
        if name not in self._accumulators:
            self._accumulators[name] = np.zeros_like(param, dtype=np.float64)
        elif self._accumulators[name].shape != param.shape:
            raise ValueError(
                f"parameter {name!r} re-registered with shape {param.shape}, "
                f"accumulator has {self._accumulators[name].shape}"
            )

    def step(self, name: str, param: np.ndarray, row: int, grad: np.ndarray) -> None:
        acc = self._accumulators[name]
        acc[row] += np.square(grad)
        param[row] += self.learning_rate * grad / (np.sqrt(acc[row]) + self.epsilon)

    def step_rows(
        self, name: str, param: np.ndarray, rows: np.ndarray, grads: np.ndarray
    ) -> None:
        acc = self._accumulators[name]
        np.add.at(acc, rows, np.square(grads))
        # The adaptive rate reads the accumulator *after* the whole batch's
        # squared mass lands, so a row hit twice in one batch is damped for
        # both contributions — per-row adaptivity survives vectorization.
        scaled = grads / (np.sqrt(acc[rows]) + self.epsilon)
        np.add.at(param, rows, self.learning_rate * scaled)

    def reset_norms(self) -> None:
        """Zero all accumulated squared-gradient norms.

        The paper resets stored norms before each incremental run so that
        warm-started models do not inherit yesterday's damped rates.
        """
        for acc in self._accumulators.values():
            acc.fill(0.0)

    def accumulated_norm(self, name: str) -> float:
        """Total accumulated squared-gradient mass for a parameter (testing)."""
        return float(self._accumulators[name].sum())

    def get_state(self) -> Dict[str, np.ndarray]:
        return {name: acc.copy() for name, acc in self._accumulators.items()}

    def set_state(self, state: Dict[str, np.ndarray]) -> None:
        for name, values in state.items():
            if name not in self._accumulators:
                raise ValueError(f"state for unregistered parameter {name!r}")
            if values.shape != self._accumulators[name].shape:
                raise ValueError(
                    f"state for {name!r} has shape {values.shape}, "
                    f"accumulator has {self._accumulators[name].shape}"
                )
        for name, values in state.items():
            self._accumulators[name][...] = values

    def bind_state(self, arrays: Dict[str, np.ndarray]) -> None:
        for name, array in arrays.items():
            if name not in self._accumulators:
                raise ValueError(f"binding unregistered parameter {name!r}")
            current = self._accumulators[name]
            if array.shape != current.shape or array.dtype != current.dtype:
                raise ValueError(
                    f"bound accumulator {name!r} is "
                    f"{array.shape}/{array.dtype}, expected "
                    f"{current.shape}/{current.dtype}"
                )
        for name, array in arrays.items():
            self._accumulators[name] = array

    def state_size_bytes(self) -> int:
        return sum(acc.nbytes for acc in self._accumulators.values())


def make_optimizer(kind: str, learning_rate: float) -> Optimizer:
    """Factory used by config records (``kind`` is ``"sgd"`` or ``"adagrad"``)."""
    if kind == "sgd":
        return Sgd(learning_rate)
    if kind == "adagrad":
        return Adagrad(learning_rate)
    raise ValueError(f"unknown optimizer kind {kind!r}")
