"""Recommendation models and their training machinery.

The centerpiece is :class:`~repro.models.bpr.BPRModel` — Bayesian
Personalized Ranking with context-based user embeddings and side features
(taxonomy / brand / price), exactly the model Sigmund trains per retailer
(paper section III).  The package also ships the alternatives the paper
discusses: a weighted-least-squares implicit-feedback factorizer (Hu et
al. [15], section VI) and a popularity baseline.
"""

from repro.models.base import Recommender, ScoredItem
from repro.models.bpr import BPRHyperParams, BPRModel
from repro.models.negatives import (
    AffinityNegativeSampler,
    CoOccurrenceExcludingSampler,
    CompositeNegativeSampler,
    NegativeSampler,
    TaxonomyAwareSampler,
    UniformNegativeSampler,
)
from repro.models.optim import Adagrad, Optimizer, Sgd
from repro.models.popularity import PopularityModel
from repro.models.trainer import BPRTrainer, TrainingReport
from repro.models.wals import WALSHyperParams, WALSModel

__all__ = [
    "Recommender",
    "ScoredItem",
    "BPRModel",
    "BPRHyperParams",
    "BPRTrainer",
    "TrainingReport",
    "NegativeSampler",
    "UniformNegativeSampler",
    "TaxonomyAwareSampler",
    "CoOccurrenceExcludingSampler",
    "AffinityNegativeSampler",
    "CompositeNegativeSampler",
    "Optimizer",
    "Sgd",
    "Adagrad",
    "PopularityModel",
    "WALSModel",
    "WALSHyperParams",
]
