"""Popularity baseline: rank items by (strength-weighted) interaction counts.

Not described as a production model in the paper, but the standard sanity
baseline every recommender evaluation needs — and the definition of
"head" vs "tail" items used by the hybrid policy and the Fig. 6
reproduction comes from these counts.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np

from repro.data.events import EventType, Interaction
from repro.data.sessions import UserContext
from repro.models.base import Recommender

#: How much each event type contributes to an item's popularity mass.
EVENT_POPULARITY_WEIGHT: Dict[EventType, float] = {
    EventType.VIEW: 1.0,
    EventType.SEARCH: 2.0,
    EventType.CART: 4.0,
    EventType.CONVERSION: 8.0,
}


class PopularityModel(Recommender):
    """Context-independent scores: ``log1p`` of weighted interaction counts."""

    def __init__(self, n_items: int, interactions: Iterable[Interaction]):
        self.n_items = n_items
        counts = np.zeros(n_items, dtype=np.float64)
        for interaction in interactions:
            counts[interaction.item_index] += EVENT_POPULARITY_WEIGHT[interaction.event]
        self.weighted_counts = counts
        self._scores = np.log1p(counts)

    def score_items(
        self, context: UserContext, item_indices: Sequence[int]
    ) -> np.ndarray:
        del context  # popularity ignores the user entirely
        return self._scores[np.asarray(list(item_indices), dtype=np.int64)]

    def popularity_rank(self) -> np.ndarray:
        """Items sorted most-popular-first (used to split head vs tail)."""
        return np.argsort(-self.weighted_counts, kind="stable")

    def head_items(self, fraction: float = 0.1) -> np.ndarray:
        """The most popular ``fraction`` of items."""
        count = max(1, int(round(self.n_items * fraction)))
        return self.popularity_rank()[:count]
