"""The single-machine BPR training loop (paper sections III-B, IV-B).

The trainer materializes training examples from user histories:

* **Implicit-positive triples** — every context window yields a
  ``(context, positive)`` pair whose negative is drawn per-epoch by the
  negative sampler (so each epoch contrasts against fresh negatives).
* **Strength-constraint triples** (section III-B1) — for every item a user
  searched, a triple is added whose negative is an item the same user
  merely viewed; likewise cart > search and conversion > cart.  These
  teach the model the paper's ``view < search < cart < conversion``
  ordering.

The loop supports epoch-level iteration (``iter_epochs``) so the pipeline
layer can checkpoint on a wall-clock schedule, and convergence-based early
stopping, which is what makes warm-started incremental runs cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.data.datasets import RetailerDataset
from repro.data.events import EVENT_STRENGTH_ORDER, EventType
from repro.data.sessions import UserContext, context_windows
from repro.exceptions import ConfigError, DataError
from repro.models.bpr import BPRModel, concat_ranges
from repro.models.negatives import NegativeSampler, UniformNegativeSampler
from repro.obs.metrics import NULL_METRICS
from repro.rng import SeedLike, make_rng

#: Epoch mean-loss distribution buckets (BPR log-loss starts near ln 2).
EPOCH_LOSS_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0, 2.0)


@dataclass(frozen=True)
class TrainingExample:
    """One BPR triple; ``negative`` is ``None`` when sampled per epoch."""

    context: UserContext
    positive: int
    negative: Optional[int] = None


@dataclass(frozen=True)
class CompiledExamples:
    """The example list flattened into numpy arrays, built once per trainer.

    Contexts are CSR: example ``b`` owns ``ctx_rows[indptr[b]:indptr[b+1]]``
    with the matching precomputed context weights (decay and event
    weighting are functions of the context alone, so weights are
    batch-invariant).  ``negatives`` holds fixed strength-constraint
    negatives, ``-1`` where the sampler draws one per epoch.
    """

    indptr: np.ndarray
    ctx_rows: np.ndarray
    ctx_weights: np.ndarray
    positives: np.ndarray
    negatives: np.ndarray

    def gather(
        self, batch: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sub-CSR ``(indptr, rows, weights)`` for the selected examples."""
        starts = self.indptr[batch]
        counts = self.indptr[batch + 1] - starts
        flat = concat_ranges(starts, counts)
        sub_indptr = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
        )
        return sub_indptr, self.ctx_rows[flat], self.ctx_weights[flat]


@dataclass
class TrainingReport:
    """What one training run did — consumed by sweeps and benchmarks."""

    epochs_run: int = 0
    sgd_steps: int = 0
    epoch_losses: List[float] = field(default_factory=list)
    converged: bool = False

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("inf")


class BPRTrainer:
    """Trains one :class:`BPRModel` on one retailer's data."""

    def __init__(
        self,
        model: BPRModel,
        dataset: RetailerDataset,
        sampler: Optional[NegativeSampler] = None,
        max_epochs: int = 20,
        convergence_tol: float = 1e-3,
        patience: int = 2,
        strength_constraints: bool = True,
        batch_size: int = 1,
        seed: SeedLike = None,
        metrics=NULL_METRICS,
    ):
        if dataset.retailer_id != model.retailer_id:
            raise DataError(
                f"model for {model.retailer_id!r} cannot train on "
                f"{dataset.retailer_id!r} data"
            )
        if batch_size < 1:
            raise ConfigError("batch_size must be >= 1")
        self.model = model
        self.dataset = dataset
        self.sampler = sampler or UniformNegativeSampler(model.n_items)
        self.max_epochs = max_epochs
        self.convergence_tol = convergence_tol
        self.patience = patience
        self.strength_constraints = strength_constraints
        #: ``1`` keeps the scalar reference loop; larger values run the
        #: vectorized mini-batch path (same regularization and weighting
        #: semantics, gradients evaluated at pre-batch parameters).
        self.batch_size = batch_size
        #: Per-epoch observability; instruments are fetched per epoch (not
        #: per SGD step) so a live registry costs nothing measurable and
        #: the default null registry costs one no-op call per epoch.
        self.metrics = metrics
        self._rng = make_rng(seed if seed is not None else model.params.seed)
        self._converged = False
        self.examples: List[TrainingExample] = self._build_examples()
        self.compiled: CompiledExamples = self._compile_examples()

    # ------------------------------------------------------------------
    # Example construction
    # ------------------------------------------------------------------
    def _build_examples(self) -> List[TrainingExample]:
        examples: List[TrainingExample] = []
        histories = self.dataset.train_histories()
        max_context = self.dataset.max_context
        for user_id in sorted(histories):
            history = histories[user_id]
            # Track the strongest event each item has received so far, to
            # build the strength-constraint negatives.
            strongest: Dict[int, EventType] = {}
            for context, interaction in context_windows(history, max_context):
                examples.append(TrainingExample(context, interaction.item_index))
                if self.strength_constraints and interaction.event > EventType.VIEW:
                    weaker = self._weaker_item(
                        strongest, interaction.event, interaction.item_index
                    )
                    if weaker is not None:
                        examples.append(
                            TrainingExample(
                                context, interaction.item_index, negative=weaker
                            )
                        )
                previous = strongest.get(interaction.item_index, EventType.VIEW)
                strongest[interaction.item_index] = max(previous, interaction.event)
            # Seed the tracker with the first interaction too (the window
            # generator skips it as a positive but it still carries strength).
            if history:
                first = history[0]
                previous = strongest.get(first.item_index, EventType.VIEW)
                strongest[first.item_index] = max(previous, first.event)
        return examples

    def _weaker_item(
        self,
        strongest: Dict[int, EventType],
        event: EventType,
        positive: int,
    ) -> Optional[int]:
        """Pick an item this user touched strictly more weakly than ``event``.

        Prefers the adjacent level (search pairs with view, cart with
        search, ...) as the paper describes, falling back to any strictly
        weaker level.
        """
        target_level = EVENT_STRENGTH_ORDER[event.strength - 1]
        adjacent = [
            item
            for item, strength in strongest.items()
            if strength == target_level and item != positive
        ]
        pool = adjacent or [
            item
            for item, strength in strongest.items()
            if strength < event and item != positive
        ]
        if not pool:
            return None
        return pool[int(self._rng.integers(len(pool)))]

    def _compile_examples(self) -> CompiledExamples:
        """Flatten the example list into the arrays the batch path consumes."""
        indptr = np.zeros(len(self.examples) + 1, dtype=np.int64)
        ctx_rows: List[np.ndarray] = []
        ctx_weights: List[np.ndarray] = []
        positives = np.zeros(len(self.examples), dtype=np.int64)
        negatives = np.full(len(self.examples), -1, dtype=np.int64)
        for position, example in enumerate(self.examples):
            context = example.context
            indptr[position + 1] = indptr[position] + len(context)
            if len(context) > 0:
                ctx_rows.append(
                    np.asarray(context.item_indices, dtype=np.int64)
                )
                ctx_weights.append(self.model.context_weights(context))
            positives[position] = example.positive
            if example.negative is not None:
                negatives[position] = example.negative
        return CompiledExamples(
            indptr=indptr,
            ctx_rows=(
                np.concatenate(ctx_rows)
                if ctx_rows
                else np.zeros(0, dtype=np.int64)
            ),
            ctx_weights=(
                np.concatenate(ctx_weights) if ctx_weights else np.zeros(0)
            ),
            positives=positives,
            negatives=negatives,
        )

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def run_epoch(self) -> float:
        """One pass over all examples in random order; returns mean loss."""
        if not self.examples:
            return 0.0
        if self.batch_size <= 1:
            return self._run_epoch_scalar()
        return self._run_epoch_batched()

    def _run_epoch_scalar(self) -> float:
        """The reference loop: one Python-level ``sgd_step`` per triple."""
        order = self._rng.permutation(len(self.examples))
        total = 0.0
        for position in order:
            example = self.examples[position]
            negative = example.negative
            if negative is None:
                negative = self.sampler.sample(
                    example.context, example.positive, self._rng
                )
            total += self.model.sgd_step(example.context, example.positive, negative)
        return total / len(self.examples)

    def _run_epoch_batched(self) -> float:
        """The vectorized loop: one ``sgd_step_batch`` per mini-batch."""
        compiled = self.compiled
        n = len(self.examples)
        order = self._rng.permutation(n)
        total = 0.0
        for start in range(0, n, self.batch_size):
            batch = order[start : start + self.batch_size]
            negatives = compiled.negatives[batch].copy()
            for offset in np.flatnonzero(negatives < 0):
                example = self.examples[batch[offset]]
                negatives[offset] = self.sampler.sample(
                    example.context, example.positive, self._rng
                )
            losses = self.model.sgd_step_batch(
                compiled.gather(batch), compiled.positives[batch], negatives
            )
            total += float(losses.sum())
        return total / n

    def iter_epochs(self) -> Iterator[Tuple[int, float]]:
        """Yield ``(epoch_index, mean_loss)`` after each epoch until done.

        Stops after ``max_epochs`` or once the relative loss improvement
        stays below ``convergence_tol`` for ``patience`` consecutive
        epochs; :attr:`converged` records which happened.  An empty example
        list yields a single zero-loss epoch instead of spinning through
        ``max_epochs``.  The caller may simply stop consuming the iterator
        at any point (e.g. on simulated pre-emption).
        """
        self._converged = False
        if not self.examples:
            self._converged = True
            yield 0, 0.0
            return
        retailer = self.dataset.retailer_id
        stale = 0
        previous = float("inf")
        for epoch in range(self.max_epochs):
            loss = self.run_epoch()
            self.metrics.counter("trainer_epochs_total", retailer=retailer).inc()
            self.metrics.counter(
                "trainer_sgd_steps_total", retailer=retailer
            ).inc(len(self.examples))
            self.metrics.histogram(
                "trainer_epoch_loss", EPOCH_LOSS_BUCKETS, retailer=retailer
            ).observe(loss)
            yield epoch, loss
            if previous != float("inf"):
                # At zero loss there is nothing left to improve: count the
                # epoch as stale rather than spinning to max_epochs.
                improvement = (
                    (previous - loss) / previous if previous > 0 else 0.0
                )
                stale = stale + 1 if improvement < self.convergence_tol else 0
            previous = loss
            if stale >= self.patience:
                self._converged = True
                return

    @property
    def converged(self) -> bool:
        """Whether the last run stopped on the convergence criterion.

        Tracked explicitly by :meth:`iter_epochs` — a run that converges
        exactly on the final epoch is converged, unlike the old
        ``epochs_run < max_epochs`` inference.
        """
        return self._converged

    def train(self) -> TrainingReport:
        """Run to convergence (or ``max_epochs``) and report."""
        report = TrainingReport()
        for epoch, loss in self.iter_epochs():
            report.epochs_run = epoch + 1
            report.sgd_steps += len(self.examples)
            report.epoch_losses.append(loss)
        report.converged = self._converged
        return report

    @property
    def n_examples(self) -> int:
        return len(self.examples)
