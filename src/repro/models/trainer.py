"""The single-machine BPR training loop (paper sections III-B, IV-B).

The trainer materializes training examples from user histories:

* **Implicit-positive triples** — every context window yields a
  ``(context, positive)`` pair whose negative is drawn per-epoch by the
  negative sampler (so each epoch contrasts against fresh negatives).
* **Strength-constraint triples** (section III-B1) — for every item a user
  searched, a triple is added whose negative is an item the same user
  merely viewed; likewise cart > search and conversion > cart.  These
  teach the model the paper's ``view < search < cart < conversion``
  ordering.

The loop supports epoch-level iteration (``iter_epochs``) so the pipeline
layer can checkpoint on a wall-clock schedule, and convergence-based early
stopping, which is what makes warm-started incremental runs cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.datasets import RetailerDataset
from repro.data.events import EVENT_STRENGTH_ORDER, EventType
from repro.data.sessions import UserContext, context_windows
from repro.exceptions import DataError
from repro.models.bpr import BPRModel
from repro.models.negatives import NegativeSampler, UniformNegativeSampler
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class TrainingExample:
    """One BPR triple; ``negative`` is ``None`` when sampled per epoch."""

    context: UserContext
    positive: int
    negative: Optional[int] = None


@dataclass
class TrainingReport:
    """What one training run did — consumed by sweeps and benchmarks."""

    epochs_run: int = 0
    sgd_steps: int = 0
    epoch_losses: List[float] = field(default_factory=list)
    converged: bool = False

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("inf")


class BPRTrainer:
    """Trains one :class:`BPRModel` on one retailer's data."""

    def __init__(
        self,
        model: BPRModel,
        dataset: RetailerDataset,
        sampler: Optional[NegativeSampler] = None,
        max_epochs: int = 20,
        convergence_tol: float = 1e-3,
        patience: int = 2,
        strength_constraints: bool = True,
        seed: SeedLike = None,
    ):
        if dataset.retailer_id != model.retailer_id:
            raise DataError(
                f"model for {model.retailer_id!r} cannot train on "
                f"{dataset.retailer_id!r} data"
            )
        self.model = model
        self.dataset = dataset
        self.sampler = sampler or UniformNegativeSampler(model.n_items)
        self.max_epochs = max_epochs
        self.convergence_tol = convergence_tol
        self.patience = patience
        self.strength_constraints = strength_constraints
        self._rng = make_rng(seed if seed is not None else model.params.seed)
        self.examples: List[TrainingExample] = self._build_examples()

    # ------------------------------------------------------------------
    # Example construction
    # ------------------------------------------------------------------
    def _build_examples(self) -> List[TrainingExample]:
        examples: List[TrainingExample] = []
        histories = self.dataset.train_histories()
        max_context = self.dataset.max_context
        for user_id in sorted(histories):
            history = histories[user_id]
            # Track the strongest event each item has received so far, to
            # build the strength-constraint negatives.
            strongest: Dict[int, EventType] = {}
            for context, interaction in context_windows(history, max_context):
                examples.append(TrainingExample(context, interaction.item_index))
                if self.strength_constraints and interaction.event > EventType.VIEW:
                    weaker = self._weaker_item(
                        strongest, interaction.event, interaction.item_index
                    )
                    if weaker is not None:
                        examples.append(
                            TrainingExample(
                                context, interaction.item_index, negative=weaker
                            )
                        )
                previous = strongest.get(interaction.item_index, EventType.VIEW)
                strongest[interaction.item_index] = max(previous, interaction.event)
            # Seed the tracker with the first interaction too (the window
            # generator skips it as a positive but it still carries strength).
            if history:
                first = history[0]
                previous = strongest.get(first.item_index, EventType.VIEW)
                strongest[first.item_index] = max(previous, first.event)
        return examples

    def _weaker_item(
        self,
        strongest: Dict[int, EventType],
        event: EventType,
        positive: int,
    ) -> Optional[int]:
        """Pick an item this user touched strictly more weakly than ``event``.

        Prefers the adjacent level (search pairs with view, cart with
        search, ...) as the paper describes, falling back to any strictly
        weaker level.
        """
        target_level = EVENT_STRENGTH_ORDER[event.strength - 1]
        adjacent = [
            item
            for item, strength in strongest.items()
            if strength == target_level and item != positive
        ]
        pool = adjacent or [
            item
            for item, strength in strongest.items()
            if strength < event and item != positive
        ]
        if not pool:
            return None
        return pool[int(self._rng.integers(len(pool)))]

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def run_epoch(self) -> float:
        """One pass over all examples in random order; returns mean loss."""
        if not self.examples:
            return 0.0
        order = self._rng.permutation(len(self.examples))
        total = 0.0
        for position in order:
            example = self.examples[position]
            negative = example.negative
            if negative is None:
                negative = self.sampler.sample(
                    example.context, example.positive, self._rng
                )
            total += self.model.sgd_step(example.context, example.positive, negative)
        return total / len(self.examples)

    def iter_epochs(self) -> Iterator[Tuple[int, float]]:
        """Yield ``(epoch_index, mean_loss)`` after each epoch until done.

        Stops after ``max_epochs`` or once the relative loss improvement
        stays below ``convergence_tol`` for ``patience`` consecutive
        epochs.  The caller may simply stop consuming the iterator at any
        point (e.g. on simulated pre-emption).
        """
        stale = 0
        previous = float("inf")
        for epoch in range(self.max_epochs):
            loss = self.run_epoch()
            yield epoch, loss
            if previous != float("inf") and previous > 0:
                improvement = (previous - loss) / previous
                stale = stale + 1 if improvement < self.convergence_tol else 0
            previous = loss
            if stale >= self.patience:
                return

    def train(self) -> TrainingReport:
        """Run to convergence (or ``max_epochs``) and report."""
        report = TrainingReport()
        for epoch, loss in self.iter_epochs():
            report.epochs_run = epoch + 1
            report.sgd_steps += len(self.examples)
            report.epoch_losses.append(loss)
        report.converged = report.epochs_run < self.max_epochs
        return report

    @property
    def n_examples(self) -> int:
        return len(self.examples)
