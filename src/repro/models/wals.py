"""Weighted alternating least squares for implicit feedback (Hu et al. [15]).

The paper (section VI) notes Sigmund's BPR "can easily be substituted with
the least-squares approach".  This module provides that substitute: the
classic implicit-feedback WALS model where every unobserved cell is a
zero-preference with low confidence and observed cells carry confidence
``1 + alpha * strength_weight``.

Because Sigmund represents users by their contexts, scoring uses the
standard *fold-in*: given a context, a virtual user vector is solved in
closed form from the context items, so the model satisfies the common
:class:`~repro.models.base.Recommender` interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.data.events import EventType, Interaction
from repro.data.sessions import UserContext
from repro.exceptions import ConfigError, ModelNotTrainedError
from repro.models.base import Recommender
from repro.rng import make_rng

#: Confidence weight of each event type (stronger intent, higher confidence).
EVENT_CONFIDENCE_WEIGHT: Dict[EventType, float] = {
    EventType.VIEW: 1.0,
    EventType.SEARCH: 2.0,
    EventType.CART: 3.0,
    EventType.CONVERSION: 5.0,
}


@dataclass(frozen=True)
class WALSHyperParams:
    """Hyper-parameters of the weighted-least-squares factorizer."""

    n_factors: int = 16
    regularization: float = 0.1
    alpha: float = 10.0
    n_iterations: int = 10
    init_scale: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_factors < 1:
            raise ConfigError("n_factors must be >= 1")
        if self.n_iterations < 1:
            raise ConfigError("n_iterations must be >= 1")


class WALSModel(Recommender):
    """Implicit-feedback matrix factorization via alternating least squares."""

    def __init__(
        self,
        n_items: int,
        params: WALSHyperParams,
        retailer_id: str = "unknown",
    ):
        self.n_items = n_items
        self.params = params
        self.retailer_id = retailer_id
        rng = make_rng(params.seed)
        self.item_factors = rng.normal(
            0.0, params.init_scale, size=(n_items, params.n_factors)
        )
        self.user_factors: np.ndarray | None = None
        self._user_index: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Pipeline interface parity with BPRModel (checkpoints, warm starts)
    # ------------------------------------------------------------------
    def get_state(self) -> Dict[str, np.ndarray]:
        """Learned parameters (checkpoint/registry payload)."""
        state = {"item_factors": self.item_factors.copy()}
        if self.user_factors is not None:
            state["user_factors"] = self.user_factors.copy()
        return state

    def set_state(self, state: Dict[str, np.ndarray]) -> None:
        if state["item_factors"].shape != self.item_factors.shape:
            raise ModelNotTrainedError(
                "checkpoint item_factors shape mismatch"
            )
        self.item_factors[...] = state["item_factors"]
        if "user_factors" in state:
            self.user_factors = state["user_factors"].copy()

    def warm_start_from(self, other: "WALSModel") -> int:
        """Copy overlapping item-factor rows (same semantics as BPR)."""
        return self.warm_start_from_state(other.get_state())

    def warm_start_from_state(self, state: Dict[str, np.ndarray]) -> int:
        """:meth:`warm_start_from` against a raw :meth:`get_state` dict.

        Fleet workers receive yesterday's model as arrays, not as a live
        object; same row-prefix semantics as the model form.
        """
        source = state.get("item_factors")
        if source is None or source.shape[1] != self.item_factors.shape[1]:
            return 0
        rows = min(self.n_items, source.shape[0])
        self.item_factors[:rows] = source[:rows]
        return rows

    def memory_bytes(self) -> int:
        total = self.item_factors.nbytes
        if self.user_factors is not None:
            total += self.user_factors.nbytes
        return total

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, interactions: Iterable[Interaction]) -> "WALSModel":
        """Run ``n_iterations`` of alternating least squares."""
        observations = self._collect(interactions)
        params = self.params
        n_users = len(self._user_index)
        rng = make_rng(params.seed + 1)
        self.user_factors = rng.normal(
            0.0, params.init_scale, size=(n_users, params.n_factors)
        )
        by_user, by_item = _index_observations(observations, n_users, self.n_items)
        for _ in range(params.n_iterations):
            _solve_side(self.user_factors, self.item_factors, by_user, params)
            _solve_side(self.item_factors, self.user_factors, by_item, params)
        return self

    def _collect(
        self, interactions: Iterable[Interaction]
    ) -> List[Tuple[int, int, float]]:
        """Aggregate the log into ``(user_row, item, confidence_weight)``."""
        weights: Dict[Tuple[int, int], float] = {}
        for interaction in interactions:
            if interaction.user_id not in self._user_index:
                self._user_index[interaction.user_id] = len(self._user_index)
            key = (self._user_index[interaction.user_id], interaction.item_index)
            weights[key] = weights.get(key, 0.0) + EVENT_CONFIDENCE_WEIGHT[
                interaction.event
            ]
        return [(user, item, weight) for (user, item), weight in weights.items()]

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def fold_in(self, context: UserContext) -> np.ndarray:
        """Closed-form user vector for an unseen user given their context."""
        if self.user_factors is None:
            raise ModelNotTrainedError("call fit() before scoring")
        params = self.params
        dim = params.n_factors
        if len(context) == 0:
            return np.zeros(dim)
        gram = params.regularization * np.eye(dim)
        rhs = np.zeros(dim)
        for item, event in zip(context.item_indices, context.events):
            confidence = 1.0 + params.alpha * EVENT_CONFIDENCE_WEIGHT[event]
            y = self.item_factors[item]
            gram += confidence * np.outer(y, y)
            rhs += confidence * y
        return np.linalg.solve(gram, rhs)

    def score_items(
        self, context: UserContext, item_indices: Sequence[int]
    ) -> np.ndarray:
        user = self.fold_in(context)
        items = np.asarray(list(item_indices), dtype=np.int64)
        return self.item_factors[items] @ user


def _index_observations(
    observations: List[Tuple[int, int, float]], n_users: int, n_items: int
) -> Tuple[List[List[Tuple[int, float]]], List[List[Tuple[int, float]]]]:
    """Group observations by user row and by item row."""
    by_user: List[List[Tuple[int, float]]] = [[] for _ in range(n_users)]
    by_item: List[List[Tuple[int, float]]] = [[] for _ in range(n_items)]
    for user, item, weight in observations:
        by_user[user].append((item, weight))
        by_item[item].append((user, weight))
    return by_user, by_item


def _solve_side(
    target: np.ndarray,
    fixed: np.ndarray,
    observations: List[List[Tuple[int, float]]],
    params: WALSHyperParams,
) -> None:
    """Solve one ALS half-step in place.

    Uses the Hu et al. trick: the Gram matrix over *all* rows of the fixed
    side (``YtY``) is shared, and each solve only adds the rank-one
    corrections for that row's observed entries.
    """
    dim = params.n_factors
    shared_gram = fixed.T @ fixed + params.regularization * np.eye(dim)
    for row, obs in enumerate(observations):
        if not obs:
            target[row] = 0.0
            continue
        gram = shared_gram.copy()
        rhs = np.zeros(dim)
        for other, weight in obs:
            confidence = 1.0 + params.alpha * weight
            y = fixed[other]
            gram += (confidence - 1.0) * np.outer(y, y)
            rhs += confidence * y
        target[row] = np.linalg.solve(gram, rhs)
