"""BPR matrix factorization with context users and side features.

This is Sigmund's per-retailer model (paper section III-B):

* **Pairwise ranking** — for a triple ``(u, i, j)`` the model learns
  ``x_ui > x_uj`` by ascending the log-likelihood of
  ``sigma(x_ui - x_uj)`` (Rendle et al. [6]).
* **Context users** (section III-B2, Eq. 1) — a user is not an id but the
  decayed linear combination of *context embeddings* of their last K
  actions, so brand-new users get embeddings without retraining.
* **Side features** (section III-B4) — the effective item vector is the
  item embedding plus hierarchically-additive taxonomy node embeddings
  (Kanagal et al. [4]) plus brand and price-bucket embeddings (Ahmed et
  al. [5]).  Feature switches are hyper-parameters so the grid search can
  do per-retailer feature selection.

The update rule for one triple, with ``z = x_ui - x_uj`` and
``e = sigma(-z)``:

* item side of ``i`` (own embedding + each active feature row):
  ``theta += lr * (e * u - reg * theta)``
* item side of ``j``: ``theta += lr * (-e * u - reg * theta)``
* context rows ``m``: ``vc_m += lr * (w_m * e * (phi_i - phi_j) - reg * vc_m)``
* biases: ``b_i += lr * (e - reg * b_i)``, ``b_j += lr * (-e - reg * b_j)``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.catalog import Catalog
from repro.data.events import EventType
from repro.data.sessions import UserContext
from repro.data.taxonomy import ROOT_CATEGORY, Taxonomy
from repro.exceptions import ConfigError
from repro.models.base import Recommender, _as_item_array
from repro.models.optim import Optimizer, make_optimizer
from repro.rng import make_rng

#: Context weights scale with event strength when event weighting is on —
#: a carted item says more about the user than a viewed one.
EVENT_CONTEXT_WEIGHT: Dict[EventType, float] = {
    EventType.VIEW: 1.0,
    EventType.SEARCH: 1.5,
    EventType.CART: 2.0,
    EventType.CONVERSION: 2.5,
}


@dataclass(frozen=True)
class BPRHyperParams:
    """Everything the grid search sweeps over for one model (section III-C1)."""

    n_factors: int = 16
    learning_rate: float = 0.05
    reg_item: float = 0.01
    reg_context: float = 0.01
    reg_bias: float = 0.005
    reg_features: float = 0.01
    use_taxonomy: bool = True
    use_brand: bool = True
    use_price: bool = True
    n_price_buckets: int = 8
    context_decay: float = 0.85
    event_weighting: bool = True
    optimizer: str = "adagrad"
    init_scale: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_factors < 1:
            raise ConfigError("n_factors must be >= 1")
        if not 0.0 < self.context_decay <= 1.0:
            raise ConfigError("context_decay must be in (0, 1]")
        if self.optimizer not in ("sgd", "adagrad"):
            raise ConfigError(f"unknown optimizer {self.optimizer!r}")

    def with_seed(self, seed: int) -> "BPRHyperParams":
        return replace(self, seed=seed)

    def describe(self) -> Dict[str, object]:
        """Flat dict form used in config records and sweep logs."""
        return {
            "n_factors": self.n_factors,
            "learning_rate": self.learning_rate,
            "reg_item": self.reg_item,
            "reg_context": self.reg_context,
            "use_taxonomy": self.use_taxonomy,
            "use_brand": self.use_brand,
            "use_price": self.use_price,
            "context_decay": self.context_decay,
            "event_weighting": self.event_weighting,
            "optimizer": self.optimizer,
            "seed": self.seed,
        }


class BPRModel(Recommender):
    """Per-retailer BPR factorization model (one instance per retailer)."""

    def __init__(
        self,
        catalog: Catalog,
        taxonomy: Taxonomy,
        params: BPRHyperParams,
    ):
        self.retailer_id = catalog.retailer_id
        self.params = params
        self.n_items = len(catalog)
        self._rng = make_rng(params.seed)

        self._build_feature_maps(catalog, taxonomy)
        self._init_parameters()
        self.optimizer: Optimizer = make_optimizer(params.optimizer, params.learning_rate)
        for name, param in self._parameters().items():
            self.optimizer.register(name, param)
        #: Cached effective-item matrix; ``None`` whenever parameters have
        #: changed since the last assembly.  Every internal update path
        #: invalidates it; external code mutating parameter arrays directly
        #: must call :meth:`invalidate_cache` itself.
        self._phi_cache: Optional[np.ndarray] = None
        #: Pool sizes at or above this rebuild the full cache in
        #: ``score_items`` instead of stacking per item; smaller pools (the
        #: negative samplers' mid-training calls) stay on the cheap path.
        self._cache_pool_threshold = 32

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_feature_maps(self, catalog: Catalog, taxonomy: Taxonomy) -> None:
        """Precompute per-item feature rows (ancestors, brand, price bucket)."""
        params = self.params
        # Taxonomy: flatten per-item ancestor lists into CSR-style arrays.
        # The root is excluded — it is shared by everything and would only
        # add a global constant vector.
        self._categories: List[str] = sorted(taxonomy.categories())
        cat_row = {category: row for row, category in enumerate(self._categories)}
        indptr = [0]
        ancestor_rows: List[int] = []
        for index in range(self.n_items):
            if params.use_taxonomy and taxonomy.has_item(index):
                for category in taxonomy.item_ancestors(index):
                    if category != ROOT_CATEGORY:
                        ancestor_rows.append(cat_row[category])
            indptr.append(len(ancestor_rows))
        self._anc_indptr = np.asarray(indptr, dtype=np.int64)
        self._anc_rows = np.asarray(ancestor_rows, dtype=np.int64)

        # Brand: vocabulary row per item, -1 where missing or disabled.
        brands = catalog.brand_vocabulary() if params.use_brand else []
        self._brand_vocab: List[str] = brands
        brand_row = {brand: row for row, brand in enumerate(brands)}
        self._item_brand = np.array(
            [
                brand_row.get(item.brand, -1) if item.brand is not None else -1
                for item in catalog
            ],
            dtype=np.int64,
        )

        # Price: quantile buckets over log-price, -1 where missing/disabled.
        prices = catalog.prices()
        self._price_edges = _price_bucket_edges(prices, params.n_price_buckets)
        if params.use_price and self._price_edges.size > 0:
            self._item_price_bucket = _bucketize(prices, self._price_edges)
        else:
            self._item_price_bucket = np.full(self.n_items, -1, dtype=np.int64)

    def _init_parameters(self) -> None:
        params = self.params
        scale = params.init_scale
        dim = params.n_factors
        rng = self._rng

        def init(rows: int) -> np.ndarray:
            return rng.normal(0.0, scale, size=(rows, dim))

        self.item_embeddings = init(self.n_items)
        self.context_embeddings = init(self.n_items)
        self.item_bias = np.zeros(self.n_items, dtype=np.float64)
        n_categories = len(self._categories)
        self.taxonomy_embeddings = (
            init(n_categories) if params.use_taxonomy else np.zeros((0, dim))
        )
        self.brand_embeddings = (
            init(len(self._brand_vocab)) if self._brand_vocab else np.zeros((0, dim))
        )
        n_buckets = max(0, self._price_edges.size - 1)
        self.price_embeddings = (
            init(n_buckets) if params.use_price and n_buckets else np.zeros((0, dim))
        )

    def _parameters(self) -> Dict[str, np.ndarray]:
        return {
            "item": self.item_embeddings,
            "context": self.context_embeddings,
            "bias": self.item_bias,
            "taxonomy": self.taxonomy_embeddings,
            "brand": self.brand_embeddings,
            "price": self.price_embeddings,
        }

    # ------------------------------------------------------------------
    # Embedding assembly
    # ------------------------------------------------------------------
    def item_ancestor_rows(self, item_index: int) -> np.ndarray:
        """Taxonomy embedding rows contributing to one item (may be empty)."""
        start, stop = self._anc_indptr[item_index], self._anc_indptr[item_index + 1]
        return self._anc_rows[start:stop]

    def effective_item_vector(self, item_index: int) -> np.ndarray:
        """Item embedding plus all active feature embeddings (copy)."""
        vector = self.item_embeddings[item_index].copy()
        rows = self.item_ancestor_rows(item_index)
        if rows.size:
            vector += self.taxonomy_embeddings[rows].sum(axis=0)
        brand_row = self._item_brand[item_index]
        if brand_row >= 0:
            vector += self.brand_embeddings[brand_row]
        bucket = self._item_price_bucket[item_index]
        if bucket >= 0:
            vector += self.price_embeddings[bucket]
        return vector

    def invalidate_cache(self) -> None:
        """Drop the cached effective-item matrix (call after any update)."""
        self._phi_cache = None

    def effective_item_matrix(self) -> np.ndarray:
        """Effective vectors for all items at once (used by batch inference).

        The result is cached until the next parameter update; treat the
        returned array as read-only.
        """
        if self._phi_cache is not None:
            return self._phi_cache
        matrix = self.item_embeddings.copy()
        if self._anc_rows.size:
            lengths = np.diff(self._anc_indptr)
            owners = np.repeat(np.arange(self.n_items), lengths)
            np.add.at(matrix, owners, self.taxonomy_embeddings[self._anc_rows])
        has_brand = self._item_brand >= 0
        if has_brand.any():
            matrix[has_brand] += self.brand_embeddings[self._item_brand[has_brand]]
        has_price = self._item_price_bucket >= 0
        if has_price.any():
            matrix[has_price] += self.price_embeddings[
                self._item_price_bucket[has_price]
            ]
        self._phi_cache = matrix
        return matrix

    def effective_item_vectors(self, items: np.ndarray) -> np.ndarray:
        """Effective vectors for a batch of item indices (``len(items) x F``).

        Vectorized equivalent of stacking :meth:`effective_item_vector`
        calls: one gather per feature table instead of Python-level loops.
        """
        items = np.asarray(items, dtype=np.int64)
        vectors = self.item_embeddings[items].copy()
        starts = self._anc_indptr[items]
        counts = self._anc_indptr[items + 1] - starts
        if counts.sum() > 0:
            owners = np.repeat(np.arange(items.size), counts)
            ancestors = self._anc_rows[concat_ranges(starts, counts)]
            np.add.at(vectors, owners, self.taxonomy_embeddings[ancestors])
        brands = self._item_brand[items]
        has_brand = brands >= 0
        if has_brand.any():
            vectors[has_brand] += self.brand_embeddings[brands[has_brand]]
        buckets = self._item_price_bucket[items]
        has_price = buckets >= 0
        if has_price.any():
            vectors[has_price] += self.price_embeddings[buckets[has_price]]
        return vectors

    def context_weights(self, context: UserContext) -> np.ndarray:
        """Decayed (and optionally event-weighted) weights, normalized to 1."""
        size = len(context)
        if size == 0:
            return np.zeros(0)
        if size == 1:
            # decay**0 == 1 and w / w == 1 exactly: skip the arithmetic.
            # Single-item contexts are the whole offline-inference workload.
            return np.ones(1)
        ages = np.arange(size - 1, -1, -1, dtype=np.float64)
        weights = self.params.context_decay ** ages
        if self.params.event_weighting:
            weights = weights * np.array(
                [EVENT_CONTEXT_WEIGHT[event] for event in context.events]
            )
        total = weights.sum()
        return weights / total if total > 0 else weights

    def user_embedding(self, context: UserContext) -> np.ndarray:
        """Eq. 1: decayed linear combination of context embeddings."""
        if len(context) == 0:
            return np.zeros(self.params.n_factors)
        rows = np.asarray(context.item_indices, dtype=np.int64)
        return self.context_weights(context) @ self.context_embeddings[rows]

    def user_embedding_batch(self, contexts: Sequence[UserContext]) -> np.ndarray:
        """Eq. 1 for a batch of contexts at once: a ``(B, d)`` matrix.

        Contexts are flattened into one CSR segment list and combined with
        a single scatter-add — the inference-time analogue of the CSR
        layout :meth:`sgd_step_batch` trains on.  Empty contexts produce
        zero rows, exactly like :meth:`user_embedding`.
        """
        batch = len(contexts)
        users = np.zeros((batch, self.params.n_factors))
        if batch == 0:
            return users
        row_chunks: List[np.ndarray] = []
        weight_chunks: List[np.ndarray] = []
        counts = np.zeros(batch, dtype=np.int64)
        for position, context in enumerate(contexts):
            if len(context) == 0:
                continue
            counts[position] = len(context)
            row_chunks.append(np.asarray(context.item_indices, dtype=np.int64))
            weight_chunks.append(self.context_weights(context))
        if not row_chunks:
            return users
        rows = np.concatenate(row_chunks)
        weights = np.concatenate(weight_chunks)
        owners = np.repeat(np.arange(batch), counts)
        np.add.at(users, owners, weights[:, None] * self.context_embeddings[rows])
        return users

    # ------------------------------------------------------------------
    # Recommender interface
    # ------------------------------------------------------------------
    def score_items(
        self, context: UserContext, item_indices: Sequence[int]
    ) -> np.ndarray:
        # Any integer ndarray takes the fast path; float ndarrays raise
        # instead of being silently truncated to wrong item indices.
        items = _as_item_array(item_indices)
        if items.size == 0:
            return np.zeros(0, dtype=np.float64)
        user = self.user_embedding(context)
        if self._phi_cache is not None or items.size >= self._cache_pool_threshold:
            vectors = self.effective_item_matrix()[items]
        else:
            vectors = self.effective_item_vectors(items)
        return vectors @ user + self.item_bias[items]

    def score_all(self, context: UserContext) -> np.ndarray:
        user = self.user_embedding(context)
        return self.effective_item_matrix() @ user + self.item_bias

    def score_contexts(
        self,
        contexts: Sequence[UserContext],
        item_indices: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Batched scoring: one ``U @ V_eff.T`` GEMM for the whole batch.

        This is the inference/evaluation hot path — ``B`` user rows
        against the (cached) effective-item matrix in a single BLAS call
        instead of ``B`` Python-level ``score_all`` round trips.
        """
        contexts = list(contexts)
        users = self.user_embedding_batch(contexts)
        phi = self.effective_item_matrix()
        if item_indices is None:
            return users @ phi.T + self.item_bias
        items = np.asarray(list(item_indices), dtype=np.int64)
        if items.size == 0:
            return np.zeros((len(contexts), 0), dtype=np.float64)
        return users @ phi[items].T + self.item_bias[items]

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def sgd_step(self, context: UserContext, positive: int, negative: int) -> float:
        """One BPR update on the triple; returns the example's log loss."""
        user = self.user_embedding(context)
        phi_pos = self.effective_item_vector(positive)
        phi_neg = self.effective_item_vector(negative)
        z = float(user @ (phi_pos - phi_neg)) + float(
            self.item_bias[positive] - self.item_bias[negative]
        )
        z_clipped = np.clip(z, -35.0, 35.0)
        e = 1.0 / (1.0 + np.exp(z_clipped))  # sigma(-z)

        params = self.params
        opt = self.optimizer
        # Item-side updates for the positive and negative items.
        self._update_item_side(positive, e * user, sign=+1.0)
        self._update_item_side(negative, e * user, sign=-1.0)
        opt.step(
            "bias",
            self.item_bias,
            positive,
            e - params.reg_bias * self.item_bias[positive],
        )
        opt.step(
            "bias",
            self.item_bias,
            negative,
            -e - params.reg_bias * self.item_bias[negative],
        )
        # Context-side updates (gradient of u distributes over context rows).
        if len(context) > 0:
            delta = e * (phi_pos - phi_neg)
            weights = self.context_weights(context)
            for weight, row in zip(weights, context.item_indices):
                grad = weight * delta - params.reg_context * self.context_embeddings[row]
                opt.step("context", self.context_embeddings, row, grad)
        self.invalidate_cache()
        return float(np.log1p(np.exp(-z_clipped)))

    def sgd_step_batch(
        self,
        contexts_csr: Tuple[np.ndarray, np.ndarray, np.ndarray],
        positives: np.ndarray,
        negatives: np.ndarray,
    ) -> np.ndarray:
        """Mini-batch BPR update; returns the per-example log losses.

        ``contexts_csr`` is ``(indptr, rows, weights)``: example ``b``'s
        context occupies ``rows[indptr[b]:indptr[b+1]]`` with the matching
        (decayed, event-weighted, normalized) ``weights`` — exactly what
        :meth:`context_weights` produces per example.

        All gradients are evaluated at the pre-batch parameters and
        scattered with ``np.add.at`` (duplicate rows sum), so a batch of
        one non-colliding triple reproduces :meth:`sgd_step` bit-for-bit
        while larger batches follow standard mini-batch semantics.
        """
        indptr, ctx_rows, ctx_weights = contexts_csr
        positives = np.asarray(positives, dtype=np.int64)
        negatives = np.asarray(negatives, dtype=np.int64)
        batch = positives.size
        if indptr.size != batch + 1 or negatives.size != batch:
            raise ValueError(
                f"batch shape mismatch: {batch} positives, {negatives.size} "
                f"negatives, indptr of size {indptr.size} (want batch + 1)"
            )
        if batch == 0:
            return np.zeros(0, dtype=np.float64)

        # User embeddings (Eq. 1), one segment-sum per batch.
        counts = np.diff(indptr)
        users = np.zeros((batch, self.params.n_factors))
        if ctx_rows.size:
            owners = np.repeat(np.arange(batch), counts)
            np.add.at(
                users,
                owners,
                ctx_weights[:, None] * self.context_embeddings[ctx_rows],
            )

        phi_pos = self.effective_item_vectors(positives)
        phi_neg = self.effective_item_vectors(negatives)
        z = np.einsum("bf,bf->b", users, phi_pos - phi_neg) + (
            self.item_bias[positives] - self.item_bias[negatives]
        )
        z_clipped = np.clip(z, -35.0, 35.0)
        e = 1.0 / (1.0 + np.exp(z_clipped))  # sigma(-z), per example

        params = self.params
        opt = self.optimizer
        scaled_user = e[:, None] * users  # (B, F)

        # Item embeddings: positive rows ascend, negative rows descend.
        item_rows = np.concatenate([positives, negatives])
        item_grads = np.concatenate(
            [
                scaled_user - params.reg_item * self.item_embeddings[positives],
                -scaled_user - params.reg_item * self.item_embeddings[negatives],
            ]
        )
        opt.step_rows("item", self.item_embeddings, item_rows, item_grads)

        # Feature tables: each item side distributes the same gradient over
        # its taxonomy/brand/price rows.
        self._step_feature_rows(positives, scaled_user, +1.0)
        self._step_feature_rows(negatives, scaled_user, -1.0)

        bias_rows = np.concatenate([positives, negatives])
        bias_grads = np.concatenate(
            [
                e - params.reg_bias * self.item_bias[positives],
                -e - params.reg_bias * self.item_bias[negatives],
            ]
        )
        opt.step_rows("bias", self.item_bias, bias_rows, bias_grads)

        # Context side: the gradient of u distributes over context rows.
        if ctx_rows.size:
            delta = e[:, None] * (phi_pos - phi_neg)  # (B, F)
            ctx_grads = (
                ctx_weights[:, None] * delta[owners]
                - params.reg_context * self.context_embeddings[ctx_rows]
            )
            opt.step_rows("context", self.context_embeddings, ctx_rows, ctx_grads)

        self.invalidate_cache()
        return np.log1p(np.exp(-z_clipped))

    def _step_feature_rows(
        self, items: np.ndarray, scaled_user: np.ndarray, sign: float
    ) -> None:
        """Batched feature-table updates for one item side of the triples."""
        params = self.params
        opt = self.optimizer
        starts = self._anc_indptr[items]
        counts = self._anc_indptr[items + 1] - starts
        if counts.sum() > 0:
            owners = np.repeat(np.arange(items.size), counts)
            rows = self._anc_rows[concat_ranges(starts, counts)]
            grads = (
                sign * scaled_user[owners]
                - params.reg_features * self.taxonomy_embeddings[rows]
            )
            opt.step_rows("taxonomy", self.taxonomy_embeddings, rows, grads)
        brands = self._item_brand[items]
        has_brand = brands >= 0
        if has_brand.any():
            rows = brands[has_brand]
            grads = (
                sign * scaled_user[has_brand]
                - params.reg_features * self.brand_embeddings[rows]
            )
            opt.step_rows("brand", self.brand_embeddings, rows, grads)
        buckets = self._item_price_bucket[items]
        has_price = buckets >= 0
        if has_price.any():
            rows = buckets[has_price]
            grads = (
                sign * scaled_user[has_price]
                - params.reg_features * self.price_embeddings[rows]
            )
            opt.step_rows("price", self.price_embeddings, rows, grads)

    def _update_item_side(self, item_index: int, scaled_user: np.ndarray, sign: float) -> None:
        """Distribute the item-side gradient over embedding + feature rows."""
        params = self.params
        opt = self.optimizer
        grad = sign * scaled_user - params.reg_item * self.item_embeddings[item_index]
        opt.step("item", self.item_embeddings, item_index, grad)
        for row in self.item_ancestor_rows(item_index):
            grad = (
                sign * scaled_user
                - params.reg_features * self.taxonomy_embeddings[row]
            )
            opt.step("taxonomy", self.taxonomy_embeddings, row, grad)
        brand_row = self._item_brand[item_index]
        if brand_row >= 0:
            grad = (
                sign * scaled_user - params.reg_features * self.brand_embeddings[brand_row]
            )
            opt.step("brand", self.brand_embeddings, brand_row, grad)
        bucket = self._item_price_bucket[item_index]
        if bucket >= 0:
            grad = (
                sign * scaled_user - params.reg_features * self.price_embeddings[bucket]
            )
            opt.step("price", self.price_embeddings, bucket, grad)

    # ------------------------------------------------------------------
    # State management (checkpointing & incremental training)
    # ------------------------------------------------------------------
    def get_state(self) -> Dict[str, np.ndarray]:
        """Deep copies of all learned parameters (checkpoint payload)."""
        return {name: param.copy() for name, param in self._parameters().items()}

    def set_state(self, state: Dict[str, np.ndarray]) -> None:
        """Restore parameters from :meth:`get_state` output.

        Validates every entry before assigning any, so a bad state dict
        (missing parameter, shape mismatch) leaves the model untouched
        instead of half-loaded — the property the checkpoint-restore
        path relies on to fall back to cold start cleanly.
        """
        parameters = self._parameters()
        for name, param in parameters.items():
            if name not in state:
                raise ConfigError(f"checkpoint missing parameter {name!r}")
            if state[name].shape != param.shape:
                raise ConfigError(
                    f"checkpoint parameter {name!r} has shape {state[name].shape}, "
                    f"model expects {param.shape}"
                )
        for name, param in parameters.items():
            param[...] = state[name]
        self.invalidate_cache()

    def warm_start_from(self, other: "BPRModel") -> int:
        """Copy overlapping parameter rows from a previous day's model.

        Item indices are append-only in Sigmund (new items get new ids),
        so copying row prefixes transfers every surviving item's embedding;
        rows beyond the old model's size keep their fresh random init.
        Returns the number of item rows copied.  Adagrad norms are *not*
        copied — the paper resets them before incremental runs.
        """
        return self.warm_start_from_state(other._parameters())

    def warm_start_from_state(self, state: Dict[str, np.ndarray]) -> int:
        """:meth:`warm_start_from` against raw parameter arrays.

        Fleet workers receive yesterday's model as its :meth:`get_state`
        dict (the registry's live model object never crosses the process
        boundary), so the warm start must work from arrays alone.  Same
        row-prefix semantics and Adagrad norm reset as the model form.
        """
        copied = 0
        for name, param in self._parameters().items():
            source = state.get(name)
            if source is None or source.ndim != param.ndim:
                continue
            if param.ndim == 1:
                rows = min(param.shape[0], source.shape[0])
                param[:rows] = source[:rows]
            else:
                if param.shape[1] != source.shape[1]:
                    continue  # factor count changed; keep fresh init
                rows = min(param.shape[0], source.shape[0])
                param[:rows] = source[:rows]
            if name == "item":
                copied = rows
        self.optimizer.reset_norms()
        self.invalidate_cache()
        return copied

    def bind_parameters(self, arrays: Dict[str, np.ndarray]) -> None:
        """Rebind parameter storage to externally allocated arrays.

        Shared-memory Hogwild allocates every parameter in a
        ``multiprocessing.shared_memory`` segment and points each worker
        process's model at the same buffers; updates race lock-free across
        processes exactly as they do across threads.  Values are whatever
        the arrays already hold — callers copy the current state in before
        binding.  Validates every array before assigning any.
        """
        current = self._parameters()
        for name, param in current.items():
            if name not in arrays:
                raise ConfigError(f"bind_parameters missing {name!r}")
            array = arrays[name]
            if array.shape != param.shape or array.dtype != param.dtype:
                raise ConfigError(
                    f"bound parameter {name!r} is {array.shape}/{array.dtype}, "
                    f"model expects {param.shape}/{param.dtype}"
                )
        self.item_embeddings = arrays["item"]
        self.context_embeddings = arrays["context"]
        self.item_bias = arrays["bias"]
        self.taxonomy_embeddings = arrays["taxonomy"]
        self.brand_embeddings = arrays["brand"]
        self.price_embeddings = arrays["price"]
        self.invalidate_cache()

    def memory_bytes(self) -> int:
        """Approximate resident size of the model (cluster-sim scheduling)."""
        return (
            sum(param.nbytes for param in self._parameters().values())
            + self.optimizer.state_size_bytes()
        )


def concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(s, s + c)`` for each ``(s, c)`` pair, vectorized.

    The standard CSR multi-range gather: for starts ``[2, 7]`` and counts
    ``[3, 2]`` the result is ``[2, 3, 4, 7, 8]``.  Used to pull many items'
    ancestor slices (or many examples' context slices) in one shot.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    offsets = np.cumsum(counts) - counts  # start offset of each range
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(offsets, counts)
        + np.repeat(np.asarray(starts, dtype=np.int64), counts)
    )


def _price_bucket_edges(prices: np.ndarray, n_buckets: int) -> np.ndarray:
    """Quantile bucket edges over log-price; empty when no prices exist."""
    known = prices[~np.isnan(prices)]
    if known.size < 2 or n_buckets < 1:
        return np.zeros(0)
    log_prices = np.log1p(known)
    edges = np.quantile(log_prices, np.linspace(0.0, 1.0, n_buckets + 1))
    return np.unique(edges)


def _bucketize(prices: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Bucket index per item (-1 where the price is missing)."""
    buckets = np.full(prices.shape[0], -1, dtype=np.int64)
    known = ~np.isnan(prices)
    if edges.size < 2:
        return buckets
    positions = np.searchsorted(edges, np.log1p(prices[known]), side="right") - 1
    buckets[known] = np.clip(positions, 0, edges.size - 2)
    return buckets
