"""The common recommender interface.

Every model — BPR, WALS, co-occurrence, popularity, and the hybrid — is a
:class:`Recommender`: given a user context it scores items, and given a
candidate set it returns the top-K.  Inference, evaluation and serving
only ever talk to this interface, so models are interchangeable (the paper
notes BPR could be swapped for least-squares "easily", section VI).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.data.sessions import UserContext


@dataclass(frozen=True)
class ScoredItem:
    """An item index paired with a model score (higher is better)."""

    item_index: int
    score: float


class Recommender(abc.ABC):
    """Scores items for a user context and produces ranked recommendations."""

    #: Number of items this model knows about.
    n_items: int

    @abc.abstractmethod
    def score_items(
        self, context: UserContext, item_indices: Sequence[int]
    ) -> np.ndarray:
        """Affinity scores for ``item_indices`` given ``context``.

        Returns an array aligned with ``item_indices``.  Scores are only
        comparable within one call (ranking semantics, paper section VII).
        """

    def score_all(self, context: UserContext) -> np.ndarray:
        """Scores for every item in the catalog (naive full inference)."""
        return self.score_items(context, range(self.n_items))

    def recommend(
        self,
        context: UserContext,
        k: int = 10,
        candidates: Optional[Sequence[int]] = None,
        exclude_context_items: bool = True,
    ) -> List[ScoredItem]:
        """Top-``k`` items for ``context``, optionally restricted to candidates.

        ``exclude_context_items`` drops items the user already interacted
        with — the common production default for substitute/complement
        surfaces.
        """
        if candidates is None:
            pool = np.arange(self.n_items)
        else:
            pool = np.asarray(list(candidates), dtype=np.int64)
        if exclude_context_items and len(context) > 0:
            seen = set(context.item_indices)
            pool = np.array([i for i in pool if int(i) not in seen], dtype=np.int64)
        if pool.size == 0:
            return []
        scores = np.asarray(self.score_items(context, pool), dtype=np.float64)
        k = min(k, pool.size)
        top = np.argpartition(-scores, k - 1)[:k]
        top = top[np.argsort(-scores[top], kind="stable")]
        return [ScoredItem(int(pool[t]), float(scores[t])) for t in top]

    def rank_of(
        self,
        context: UserContext,
        target_item: int,
        candidates: Optional[Sequence[int]] = None,
    ) -> int:
        """1-based rank of ``target_item`` among ``candidates`` (or all items).

        Ties are counted against the target (worst-case rank among equals),
        which keeps evaluation pessimistic and deterministic.
        """
        if candidates is None:
            pool = np.arange(self.n_items)
        else:
            pool = np.asarray(list(candidates), dtype=np.int64)
        scores = np.asarray(self.score_items(context, pool), dtype=np.float64)
        target_positions = np.flatnonzero(pool == target_item)
        if target_positions.size == 0:
            raise ValueError(f"target item {target_item} not in candidate pool")
        target_score = scores[target_positions[0]]
        if not np.isfinite(target_score):
            # A diverged model (NaN/inf scores) must rank worst, not best —
            # otherwise model selection would pick garbage.
            return int(pool.size)
        better_or_equal = int(np.sum(scores >= target_score))
        return better_or_equal
