"""The common recommender interface.

Every model — BPR, WALS, co-occurrence, popularity, and the hybrid — is a
:class:`Recommender`: given a user context it scores items, and given a
candidate set it returns the top-K.  Inference, evaluation and serving
only ever talk to this interface, so models are interchangeable (the paper
notes BPR could be swapped for least-squares "easily", section VI).
"""

from __future__ import annotations

import abc
from typing import List, NamedTuple, Optional, Sequence

import numpy as np

from repro.data.sessions import UserContext


class ScoredItem(NamedTuple):
    """An item index paired with a model score (higher is better).

    A ``NamedTuple`` rather than a dataclass: inference materializes
    ``n_items x surfaces x k`` of these per retailer per day, and tuple
    construction is several times cheaper than a frozen dataclass.
    """

    item_index: int
    score: float


def _as_item_array(items: Sequence[int]) -> np.ndarray:
    """Candidate sequence -> int64 index array (no copy when already one)."""
    if isinstance(items, np.ndarray) and items.dtype == np.int64:
        return items
    return np.asarray(list(items), dtype=np.int64)


def _exclude_items(pool: np.ndarray, context: UserContext) -> np.ndarray:
    """Drop the context's items from ``pool``, preserving candidate order."""
    if len(context) == 0 or pool.size == 0:
        return pool
    seen = np.asarray(context.item_indices, dtype=np.int64)
    if seen.size == 1:
        # The inference pipeline's contexts are single items.
        return pool[pool != seen[0]]
    if seen.size <= 16:
        # Typical contexts are a handful of items: a broadcast compare is
        # several times cheaper than np.isin's sort-based set machinery.
        return pool[~(pool[:, None] == seen).any(axis=1)]
    return pool[~np.isin(pool, seen)]


def _top_k(pool: np.ndarray, scores: np.ndarray, k: int) -> List[ScoredItem]:
    """Top-``k`` of a scored pool, shared by the per-item and batched paths.

    Both paths feed this the same (pool, scores) arrays, so selection —
    including argpartition's behavior under ties and NaN scores — is
    identical by construction.
    """
    if pool.size == 0 or k <= 0:
        return []
    k = min(k, pool.size)
    top = np.argpartition(-scores, k - 1)[:k]
    top = top[np.argsort(-scores[top], kind="stable")]
    # .tolist() converts to native int/float in one C pass — much cheaper
    # than casting numpy scalars one by one.
    return list(map(ScoredItem, pool[top].tolist(), scores[top].tolist()))


class Recommender(abc.ABC):
    """Scores items for a user context and produces ranked recommendations."""

    #: Number of items this model knows about.
    n_items: int

    @abc.abstractmethod
    def score_items(
        self, context: UserContext, item_indices: Sequence[int]
    ) -> np.ndarray:
        """Affinity scores for ``item_indices`` given ``context``.

        Returns an array aligned with ``item_indices``.  Scores are only
        comparable within one call (ranking semantics, paper section VII).
        """

    def score_all(self, context: UserContext) -> np.ndarray:
        """Scores for every item in the catalog (naive full inference)."""
        return self.score_items(context, range(self.n_items))

    def recommend(
        self,
        context: UserContext,
        k: int = 10,
        candidates: Optional[Sequence[int]] = None,
        exclude_context_items: bool = True,
    ) -> List[ScoredItem]:
        """Top-``k`` items for ``context``, optionally restricted to candidates.

        ``exclude_context_items`` drops items the user already interacted
        with — the common production default for substitute/complement
        surfaces.
        """
        if candidates is None:
            pool = np.arange(self.n_items)
        else:
            pool = _as_item_array(candidates)
        if exclude_context_items:
            pool = _exclude_items(pool, context)
        if pool.size == 0:
            return []
        scores = np.asarray(self.score_items(context, pool), dtype=np.float64)
        return _top_k(pool, scores, k)

    def score_contexts(
        self,
        contexts: Sequence[UserContext],
        item_indices: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Score matrix for a batch of contexts: ``(B, n_items)`` (or
        ``(B, len(item_indices))`` when a column subset is given).

        The default stacks one :meth:`score_all` / :meth:`score_items`
        call per context — correct for any model; embedding models
        override this with a single matrix multiply.
        """
        if item_indices is None:
            width = self.n_items
            rows = [self.score_all(context) for context in contexts]
        else:
            items = _as_item_array(item_indices)
            width = items.size
            rows = [self.score_items(context, items) for context in contexts]
        if not rows:
            return np.zeros((0, width), dtype=np.float64)
        return np.stack([np.asarray(row, dtype=np.float64) for row in rows])

    def recommend_batch(
        self,
        contexts: Sequence[UserContext],
        candidate_lists: Optional[Sequence[Optional[Sequence[int]]]] = None,
        k: int = 10,
        exclude_context_items: bool = True,
    ) -> List[List[ScoredItem]]:
        """Batched :meth:`recommend`: one list of recommendations per context.

        ``candidate_lists`` aligns with ``contexts`` (``None`` entries — or
        ``None`` for the whole argument — mean the full catalog).  Scoring
        happens through one :meth:`score_contexts` matrix for the whole
        batch (a single ``U @ V_eff.T`` BLAS call for embedding models),
        then per-row top-k runs the exact same selection as the per-item
        path, so results match :meth:`recommend` call-for-call — including
        exclude-context-items and NaN/diverged-model semantics.
        """
        contexts = list(contexts)
        if candidate_lists is None:
            candidate_lists = [None] * len(contexts)
        else:
            candidate_lists = list(candidate_lists)
        if len(candidate_lists) != len(contexts):
            raise ValueError(
                f"got {len(contexts)} contexts but "
                f"{len(candidate_lists)} candidate lists"
            )
        if not contexts:
            return []
        matrix = self.score_contexts(contexts)
        full_pool = np.arange(self.n_items)
        results: List[List[ScoredItem]] = []
        for row, (context, candidates) in enumerate(zip(contexts, candidate_lists)):
            pool = full_pool if candidates is None else _as_item_array(candidates)
            if exclude_context_items:
                pool = _exclude_items(pool, context)
            if pool.size == 0:
                results.append([])
                continue
            results.append(_top_k(pool, matrix[row, pool], k))
        return results

    def rank_of(
        self,
        context: UserContext,
        target_item: int,
        candidates: Optional[Sequence[int]] = None,
    ) -> int:
        """1-based rank of ``target_item`` among ``candidates`` (or all items).

        Ties are counted against the target (worst-case rank among equals),
        which keeps evaluation pessimistic and deterministic.
        """
        if candidates is None:
            pool = np.arange(self.n_items)
        else:
            pool = np.asarray(list(candidates), dtype=np.int64)
        scores = np.asarray(self.score_items(context, pool), dtype=np.float64)
        target_positions = np.flatnonzero(pool == target_item)
        if target_positions.size == 0:
            raise ValueError(f"target item {target_item} not in candidate pool")
        target_score = scores[target_positions[0]]
        if not np.isfinite(target_score):
            # A diverged model (NaN/inf scores) must rank worst, not best —
            # otherwise model selection would pick garbage.
            return int(pool.size)
        better_or_equal = int(np.sum(scores >= target_score))
        return better_or_equal
