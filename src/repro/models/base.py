"""The common recommender interface.

Every model — BPR, WALS, co-occurrence, popularity, and the hybrid — is a
:class:`Recommender`: given a user context it scores items, and given a
candidate set it returns the top-K.  Inference, evaluation and serving
only ever talk to this interface, so models are interchangeable (the paper
notes BPR could be swapped for least-squares "easily", section VI).
"""

from __future__ import annotations

import abc
from typing import List, NamedTuple, Optional, Sequence

import numpy as np

from repro.data.sessions import UserContext


class ScoredItem(NamedTuple):
    """An item index paired with a model score (higher is better).

    A ``NamedTuple`` rather than a dataclass: inference materializes
    ``n_items x surfaces x k`` of these per retailer per day, and tuple
    construction is several times cheaper than a frozen dataclass.
    """

    item_index: int
    score: float


def _as_item_array(items: Sequence[int]) -> np.ndarray:
    """Candidate sequence -> int64 index array (no copy when already one).

    Any integer ndarray is accepted directly (``int32`` from an index
    structure must not fall through to the element-wise ``list()`` path),
    while float ndarrays raise instead of being silently truncated —
    ``np.asarray([2.7], dtype=np.int64)`` would quietly score item 2.
    """
    if isinstance(items, np.ndarray):
        if not np.issubdtype(items.dtype, np.integer):
            raise TypeError(
                f"item indices must be an integer array, got dtype "
                f"{items.dtype}"
            )
        return items.astype(np.int64, copy=False)
    return np.asarray(list(items), dtype=np.int64)


def _exclude_items(pool: np.ndarray, context: UserContext) -> np.ndarray:
    """Drop the context's items from ``pool``, preserving candidate order."""
    if len(context) == 0 or pool.size == 0:
        return pool
    seen = np.asarray(context.item_indices, dtype=np.int64)
    if seen.size == 1:
        # The inference pipeline's contexts are single items.
        return pool[pool != seen[0]]
    if seen.size <= 16:
        # Typical contexts are a handful of items: a broadcast compare is
        # several times cheaper than np.isin's sort-based set machinery.
        return pool[~(pool[:, None] == seen).any(axis=1)]
    return pool[~np.isin(pool, seen)]


def top_k_select(
    scores: np.ndarray, k: int, tiebreak: Optional[np.ndarray] = None
) -> np.ndarray:
    """Positions of the ``k`` best scores, ordered ``(score desc, tiebreak asc)``.

    The total order is fully deterministic: equal scores break by the
    ``tiebreak`` key (the position itself when omitted) and NaN scores
    rank strictly worst, themselves ordered by tiebreak.  Every ranking
    path — per-item, batched, exact retrieval, ANN retrieval — selects
    through this one function, so two paths fed the same scores can never
    reorder tied items against each other (argpartition's behavior under
    ties is unspecified and has changed across numpy versions).
    """
    n = scores.size
    k = min(k, n)
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    tb = np.arange(n, dtype=np.int64) if tiebreak is None else tiebreak
    if k == n:
        sel = np.arange(n, dtype=np.int64)
    else:
        # k-th largest score: partition sorts NaN last, so the pivot is
        # NaN only when fewer than k scores are finite numbers at all.
        kth = -np.partition(-scores, k - 1)[k - 1]
        if np.isnan(kth):
            better = np.flatnonzero(~np.isnan(scores))
            ties = np.flatnonzero(np.isnan(scores))
        else:
            better = np.flatnonzero(scores > kth)
            ties = np.flatnonzero(scores == kth)
        ties = ties[np.argsort(tb[ties], kind="stable")]
        sel = np.concatenate([better, ties[: k - better.size]])
    # Stable lexsort: primary score descending, secondary tiebreak
    # ascending; NaN keys sink to the end preserving tiebreak order.
    return sel[np.lexsort((tb[sel], -scores[sel]))]


def _top_k(pool: np.ndarray, scores: np.ndarray, k: int) -> List[ScoredItem]:
    """Top-``k`` of a scored pool, shared by the per-item and batched paths.

    Both paths feed this the same (pool, scores) arrays and ties break by
    item index (not pool position), so selection is identical by
    construction — including against the retrieval backends, which rank
    through the same :func:`top_k_select` order.
    """
    if pool.size == 0 or k <= 0:
        return []
    top = top_k_select(scores, k, tiebreak=pool)
    # .tolist() converts to native int/float in one C pass — much cheaper
    # than casting numpy scalars one by one.
    return list(map(ScoredItem, pool[top].tolist(), scores[top].tolist()))


class Recommender(abc.ABC):
    """Scores items for a user context and produces ranked recommendations."""

    #: Number of items this model knows about.
    n_items: int

    @abc.abstractmethod
    def score_items(
        self, context: UserContext, item_indices: Sequence[int]
    ) -> np.ndarray:
        """Affinity scores for ``item_indices`` given ``context``.

        Returns an array aligned with ``item_indices``.  Scores are only
        comparable within one call (ranking semantics, paper section VII).
        """

    def score_all(self, context: UserContext) -> np.ndarray:
        """Scores for every item in the catalog (naive full inference)."""
        return self.score_items(context, range(self.n_items))

    def recommend(
        self,
        context: UserContext,
        k: int = 10,
        candidates: Optional[Sequence[int]] = None,
        exclude_context_items: bool = True,
    ) -> List[ScoredItem]:
        """Top-``k`` items for ``context``, optionally restricted to candidates.

        ``exclude_context_items`` drops items the user already interacted
        with — the common production default for substitute/complement
        surfaces.
        """
        if candidates is None:
            pool = np.arange(self.n_items)
        else:
            pool = _as_item_array(candidates)
        if exclude_context_items:
            pool = _exclude_items(pool, context)
        if pool.size == 0:
            return []
        scores = np.asarray(self.score_items(context, pool), dtype=np.float64)
        return _top_k(pool, scores, k)

    def score_contexts(
        self,
        contexts: Sequence[UserContext],
        item_indices: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Score matrix for a batch of contexts: ``(B, n_items)`` (or
        ``(B, len(item_indices))`` when a column subset is given).

        The default stacks one :meth:`score_all` / :meth:`score_items`
        call per context — correct for any model; embedding models
        override this with a single matrix multiply.
        """
        if item_indices is None:
            width = self.n_items
            rows = [self.score_all(context) for context in contexts]
        else:
            items = _as_item_array(item_indices)
            width = items.size
            rows = [self.score_items(context, items) for context in contexts]
        if not rows:
            return np.zeros((0, width), dtype=np.float64)
        return np.stack([np.asarray(row, dtype=np.float64) for row in rows])

    def recommend_batch(
        self,
        contexts: Sequence[UserContext],
        candidate_lists: Optional[Sequence[Optional[Sequence[int]]]] = None,
        k: int = 10,
        exclude_context_items: bool = True,
    ) -> List[List[ScoredItem]]:
        """Batched :meth:`recommend`: one list of recommendations per context.

        ``candidate_lists`` aligns with ``contexts`` (``None`` entries — or
        ``None`` for the whole argument — mean the full catalog).  Scoring
        happens through one :meth:`score_contexts` matrix for the whole
        batch (a single ``U @ V_eff.T`` BLAS call for embedding models),
        then per-row top-k runs the exact same selection as the per-item
        path, so results match :meth:`recommend` call-for-call — including
        exclude-context-items and NaN/diverged-model semantics.
        """
        contexts = list(contexts)
        if candidate_lists is None:
            candidate_lists = [None] * len(contexts)
        else:
            candidate_lists = list(candidate_lists)
        if len(candidate_lists) != len(contexts):
            raise ValueError(
                f"got {len(contexts)} contexts but "
                f"{len(candidate_lists)} candidate lists"
            )
        if not contexts:
            return []
        pools = [
            None if candidates is None else _as_item_array(candidates)
            for candidates in candidate_lists
        ]
        # When every context has a candidate list, score only the union of
        # candidate columns: the GEMM shrinks from (B, n_items) to
        # (B, |union|) — the difference between a full-catalog multiply
        # and a capped-candidate one on million-item catalogs.  Scores are
        # identical columns of the full matrix, so results don't change.
        cols: Optional[np.ndarray] = None
        if all(pool is not None for pool in pools):
            chunks = [pool for pool in pools if pool.size]
            union = (
                np.unique(np.concatenate(chunks))
                if chunks
                else np.empty(0, dtype=np.int64)
            )
            if union.size < self.n_items:
                cols = union
        matrix = (
            self.score_contexts(contexts)
            if cols is None
            else self.score_contexts(contexts, cols)
        )
        full_pool = np.arange(self.n_items)
        results: List[List[ScoredItem]] = []
        for row, (context, pool) in enumerate(zip(contexts, pools)):
            if pool is None:
                pool = full_pool
            if exclude_context_items:
                pool = _exclude_items(pool, context)
            if pool.size == 0:
                results.append([])
                continue
            columns = pool if cols is None else np.searchsorted(cols, pool)
            results.append(_top_k(pool, matrix[row, columns], k))
        return results

    def rank_of(
        self,
        context: UserContext,
        target_item: int,
        candidates: Optional[Sequence[int]] = None,
    ) -> int:
        """1-based rank of ``target_item`` among ``candidates`` (or all items).

        Ties are counted against the target (worst-case rank among equals),
        which keeps evaluation pessimistic and deterministic.
        """
        if candidates is None:
            pool = np.arange(self.n_items)
        else:
            pool = np.asarray(list(candidates), dtype=np.int64)
        scores = np.asarray(self.score_items(context, pool), dtype=np.float64)
        target_positions = np.flatnonzero(pool == target_item)
        if target_positions.size == 0:
            raise ValueError(f"target item {target_item} not in candidate pool")
        target_score = scores[target_positions[0]]
        if not np.isfinite(target_score):
            # A diverged model (NaN/inf scores) must rank worst, not best —
            # otherwise model selection would pick garbage.
            return int(pool.size)
        better_or_equal = int(np.sum(scores >= target_score))
        return better_or_equal
