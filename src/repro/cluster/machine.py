"""Machines, VM requests, and running VMs.

Machines mirror the paper's observation that "high-memory instances tend
to be correlated with high CPU" — the stock machine shapes couple the two,
and it is "often more cost-effective to get four CPUs and 32GB rather than
one CPU with 32GB" (section IV-B2).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import List, Optional

from repro.exceptions import ClusterError


class Priority(enum.Enum):
    """Borg scheduling priority of a VM."""

    REGULAR = "regular"
    PREEMPTIBLE = "preemptible"


@dataclass(frozen=True)
class MachineSpec:
    """Physical machine shape."""

    cpus: int = 16
    memory_gb: float = 128.0

    def __post_init__(self) -> None:
        if self.cpus < 1 or self.memory_gb <= 0:
            raise ClusterError("machine must have positive cpus and memory")


@dataclass(frozen=True)
class VMRequest:
    """A resource ask, as a Borg job specification would state it."""

    cpus: int
    memory_gb: float
    priority: Priority = Priority.PREEMPTIBLE

    def __post_init__(self) -> None:
        if self.cpus < 1 or self.memory_gb <= 0:
            raise ClusterError("VM request must ask for positive resources")


_vm_ids = itertools.count()


@dataclass
class VirtualMachine:
    """A VM placed on a machine; freed via the owning cell."""

    vm_id: int
    request: VMRequest
    machine_id: int
    cell_name: str
    started_at: float
    released_at: Optional[float] = None

    @property
    def alive(self) -> bool:
        return self.released_at is None

    @property
    def priority(self) -> Priority:
        return self.request.priority


class Machine:
    """One physical machine tracking its resident VMs."""

    def __init__(self, machine_id: int, spec: MachineSpec):
        self.machine_id = machine_id
        self.spec = spec
        self.vms: List[VirtualMachine] = []

    @property
    def used_cpus(self) -> int:
        return sum(vm.request.cpus for vm in self.vms)

    @property
    def used_memory_gb(self) -> float:
        return sum(vm.request.memory_gb for vm in self.vms)

    @property
    def free_cpus(self) -> int:
        return self.spec.cpus - self.used_cpus

    @property
    def free_memory_gb(self) -> float:
        return self.spec.memory_gb - self.used_memory_gb

    def fits(self, request: VMRequest) -> bool:
        return request.cpus <= self.free_cpus and request.memory_gb <= self.free_memory_gb

    def place(self, request: VMRequest, cell_name: str, now: float) -> VirtualMachine:
        if not self.fits(request):
            raise ClusterError(
                f"machine {self.machine_id} cannot fit request {request}"
            )
        vm = VirtualMachine(
            vm_id=next(_vm_ids),
            request=request,
            machine_id=self.machine_id,
            cell_name=cell_name,
            started_at=now,
        )
        self.vms.append(vm)
        return vm

    def evictable_preemptibles(self) -> List[VirtualMachine]:
        """Pre-emptible VMs on this machine, oldest first."""
        return sorted(
            (vm for vm in self.vms if vm.priority is Priority.PREEMPTIBLE),
            key=lambda vm: vm.started_at,
        )

    def remove(self, vm: VirtualMachine, now: float) -> None:
        try:
            self.vms.remove(vm)
        except ValueError:
            raise ClusterError(
                f"vm {vm.vm_id} is not on machine {self.machine_id}"
            ) from None
        vm.released_at = now
