"""Resource pricing and the cost ledger.

"The cost advantage of this approach over using regular VMs can be nearly
70%" (section II-B) — so pre-emptible CPU-hours are billed at a 70%
discount by default.  Every simulated pipeline charges its usage to a
:class:`CostLedger`, which the cost/makespan benchmarks read out.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict

from repro.cluster.machine import Priority, VMRequest
from repro.exceptions import ClusterError
from repro.obs.metrics import NULL_METRICS

#: Reference price of one regular CPU-hour (arbitrary currency units).
DEFAULT_CPU_HOUR_RATE = 0.05
#: Reference price of one regular GB-hour of memory.
DEFAULT_MEMORY_GB_HOUR_RATE = 0.005
#: Paper: pre-emptible resources cost "nearly 70%" less.
DEFAULT_PREEMPTIBLE_DISCOUNT = 0.70


@dataclass(frozen=True)
class ResourcePricing:
    """Per-unit prices and the pre-emptible discount."""

    cpu_hour_rate: float = DEFAULT_CPU_HOUR_RATE
    memory_gb_hour_rate: float = DEFAULT_MEMORY_GB_HOUR_RATE
    preemptible_discount: float = DEFAULT_PREEMPTIBLE_DISCOUNT

    def __post_init__(self) -> None:
        if not 0.0 <= self.preemptible_discount < 1.0:
            raise ClusterError("discount must be in [0, 1)")
        if self.cpu_hour_rate < 0 or self.memory_gb_hour_rate < 0:
            raise ClusterError("rates must be non-negative")

    def rate_multiplier(self, priority: Priority) -> float:
        if priority is Priority.PREEMPTIBLE:
            return 1.0 - self.preemptible_discount
        return 1.0

    def cost(self, request: VMRequest, duration_seconds: float) -> float:
        """Price of holding ``request`` for ``duration_seconds``."""
        if duration_seconds < 0:
            raise ClusterError("duration must be non-negative")
        hours = duration_seconds / 3600.0
        base = (
            request.cpus * self.cpu_hour_rate
            + request.memory_gb * self.memory_gb_hour_rate
        ) * hours
        return base * self.rate_multiplier(request.priority)


class CostLedger:
    """Accumulates charges per named account (job, pipeline stage, ...)."""

    def __init__(
        self,
        pricing: ResourcePricing = ResourcePricing(),
        metrics=NULL_METRICS,
    ):
        self.pricing = pricing
        #: Process-level registry: ledger totals accumulate across days,
        #: so these counters are not part of the crash-parity contract.
        self.metrics = metrics
        self._accounts: Dict[str, float] = defaultdict(float)
        self._cpu_seconds: Dict[str, float] = defaultdict(float)

    @staticmethod
    def _account_group(account: str) -> str:
        """The label for ledger counters: everything before the first '/'."""
        return account.split("/", 1)[0]

    def charge(
        self, account: str, request: VMRequest, duration_seconds: float
    ) -> float:
        """Charge one VM-holding to ``account``; returns the amount."""
        amount = self.pricing.cost(request, duration_seconds)
        self._accounts[account] += amount
        self._cpu_seconds[account] += request.cpus * duration_seconds
        self.metrics.counter(
            "ledger_cost_total", account=self._account_group(account)
        ).inc(amount)
        return amount

    def attribute(self, account: str, amount: float, cpu_seconds: float = 0.0) -> None:
        """Record an already-priced amount against an account.

        Used for charge-back attribution (paper section V): a job's bill,
        charged once at VM granularity, is re-attributed to per-retailer
        accounts in proportion to the work each retailer consumed.
        Attribution accounts are additional views — they do not affect
        the job accounts they mirror.
        """
        if amount < 0:
            raise ClusterError("attributed amount must be non-negative")
        self._accounts[account] += amount
        self._cpu_seconds[account] += cpu_seconds
        self.metrics.counter(
            "ledger_attributed_total", account=self._account_group(account)
        ).inc(amount)

    def accounts_with_prefix(self, prefix: str) -> Dict[str, float]:
        """All accounts whose name starts with ``prefix``."""
        return {
            name: amount
            for name, amount in self._accounts.items()
            if name.startswith(prefix)
        }

    def total(self, account: str = None) -> float:
        """Total cost of one account, or of everything when ``account=None``."""
        if account is None:
            return sum(self._accounts.values())
        return self._accounts.get(account, 0.0)

    def cpu_seconds(self, account: str = None) -> float:
        if account is None:
            return sum(self._cpu_seconds.values())
        return self._cpu_seconds.get(account, 0.0)

    def accounts(self) -> Dict[str, float]:
        return dict(self._accounts)
