"""Stochastic pre-emption model for low-priority VMs.

Pre-emptible VMs "can be torn down with a much higher probability"
(section II-B).  We model pre-emption arrivals per VM as a Poisson
process: the time to the next pre-emption is exponential with a mean of
``mean_uptime_hours``.  Regular VMs fail too, but orders of magnitude
more rarely (hardware, kernel upgrades), matching production reality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


from repro.cluster.machine import Priority
from repro.exceptions import ClusterError
from repro.rng import SeedLike, make_rng

#: Hours of expected uptime for each priority class.
DEFAULT_MEAN_UPTIME_HOURS = {
    Priority.PREEMPTIBLE: 6.0,
    Priority.REGULAR: 24.0 * 30.0,
}


@dataclass(frozen=True)
class PreemptionModel:
    """Samples time-to-pre-emption for a VM of a given priority."""

    preemptible_mean_uptime_hours: float = DEFAULT_MEAN_UPTIME_HOURS[
        Priority.PREEMPTIBLE
    ]
    regular_mean_uptime_hours: float = DEFAULT_MEAN_UPTIME_HOURS[Priority.REGULAR]

    def __post_init__(self) -> None:
        if self.preemptible_mean_uptime_hours <= 0:
            raise ClusterError("pre-emptible mean uptime must be positive")
        if self.regular_mean_uptime_hours <= 0:
            raise ClusterError("regular mean uptime must be positive")

    def mean_uptime_seconds(self, priority: Priority) -> float:
        hours = (
            self.preemptible_mean_uptime_hours
            if priority is Priority.PREEMPTIBLE
            else self.regular_mean_uptime_hours
        )
        return hours * 3600.0

    def sample_time_to_preemption(
        self, priority: Priority, rng: SeedLike = None
    ) -> float:
        """Seconds until this VM is torn down (exponential)."""
        generator = make_rng(rng)
        return float(generator.exponential(self.mean_uptime_seconds(priority)))

    def survival_probability(self, priority: Priority, duration_seconds: float) -> float:
        """P(no pre-emption within ``duration_seconds``) — for analysis."""
        if duration_seconds < 0:
            raise ClusterError("duration must be non-negative")
        return math.exp(-duration_seconds / self.mean_uptime_seconds(priority))

    def expected_attempts(self, priority: Priority, duration_seconds: float) -> float:
        """Expected number of attempts to finish an *uncheckpointed* run.

        A run of length ``d`` on a VM with exponential uptime (mean ``m``)
        succeeds per attempt with probability ``exp(-d/m)``; attempts are
        geometric, so the expectation is ``exp(d/m)``.
        """
        return 1.0 / self.survival_probability(priority, duration_seconds)
