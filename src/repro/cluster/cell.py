"""Cells (data centers) and multi-cell clusters.

A cell is a pool of machines managed by one scheduler (Borg's unit of
management).  Sigmund "identifies data centers that have unused resources
and breaks down the job into several independent MapReduces so that there
is one for each data center" (section IV-B1) — :class:`Cluster` models
that heterogeneous free capacity.

Scheduling semantics reproduced here:

* first-fit placement over machines,
* a REGULAR allocation may evict pre-emptible VMs to make room (the very
  mechanism that makes pre-emptible capacity cheap and unreliable).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.clock import SimClock
from repro.cluster.machine import Machine, MachineSpec, Priority, VirtualMachine, VMRequest
from repro.exceptions import CapacityError, ClusterError


class Cell:
    """One data center: machines plus a simple first-fit scheduler."""

    def __init__(
        self,
        name: str,
        n_machines: int,
        machine_spec: MachineSpec = MachineSpec(),
        clock: Optional[SimClock] = None,
    ):
        if n_machines < 1:
            raise ClusterError("a cell needs at least one machine")
        self.name = name
        self.clock = clock or SimClock()
        self.machines = [Machine(m, machine_spec) for m in range(n_machines)]
        #: Called with each VM evicted to make room for a regular VM.
        self.eviction_listeners: List[Callable[[VirtualMachine], None]] = []
        self.evictions = 0

    # ------------------------------------------------------------------
    # Capacity accounting
    # ------------------------------------------------------------------
    @property
    def total_cpus(self) -> int:
        return sum(machine.spec.cpus for machine in self.machines)

    @property
    def free_cpus(self) -> int:
        return sum(machine.free_cpus for machine in self.machines)

    @property
    def utilization(self) -> float:
        total = self.total_cpus
        return (total - self.free_cpus) / total if total else 0.0

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, request: VMRequest) -> VirtualMachine:
        """Place a VM, evicting pre-emptibles if a REGULAR ask needs room."""
        for machine in self.machines:
            if machine.fits(request):
                return machine.place(request, self.name, self.clock.now)
        if request.priority is Priority.REGULAR:
            machine = self._make_room(request)
            if machine is not None:
                return machine.place(request, self.name, self.clock.now)
        raise CapacityError(
            f"cell {self.name!r} cannot satisfy {request} "
            f"({self.free_cpus}/{self.total_cpus} cpus free)"
        )

    def _make_room(self, request: VMRequest) -> Optional[Machine]:
        """Evict pre-emptible VMs from the machine where fewest evictions help."""
        best: Optional[Tuple[int, Machine, List[VirtualMachine]]] = None
        for machine in self.machines:
            evicted: List[VirtualMachine] = []
            cpus, memory = machine.free_cpus, machine.free_memory_gb
            for vm in machine.evictable_preemptibles():
                if cpus >= request.cpus and memory >= request.memory_gb:
                    break
                evicted.append(vm)
                cpus += vm.request.cpus
                memory += vm.request.memory_gb
            if cpus >= request.cpus and memory >= request.memory_gb:
                if best is None or len(evicted) < best[0]:
                    best = (len(evicted), machine, evicted)
        if best is None:
            return None
        _, machine, victims = best
        for vm in victims:
            self._evict(machine, vm)
        return machine

    def _evict(self, machine: Machine, vm: VirtualMachine) -> None:
        machine.remove(vm, self.clock.now)
        self.evictions += 1
        for listener in self.eviction_listeners:
            listener(vm)

    def release(self, vm: VirtualMachine) -> None:
        """Return a VM's resources to the pool."""
        for machine in self.machines:
            if machine.machine_id == vm.machine_id and vm in machine.vms:
                machine.remove(vm, self.clock.now)
                return
        raise ClusterError(f"vm {vm.vm_id} not found in cell {self.name!r}")

    def machine_of(self, vm: VirtualMachine) -> Machine:
        for machine in self.machines:
            if machine.machine_id == vm.machine_id:
                return machine
        raise ClusterError(f"vm {vm.vm_id} references unknown machine")


class Cluster:
    """Several cells with (typically) different amounts of free capacity."""

    def __init__(self, cells: List[Cell]):
        if not cells:
            raise ClusterError("a cluster needs at least one cell")
        names = [cell.name for cell in cells]
        if len(set(names)) != len(names):
            raise ClusterError("cell names must be unique")
        self.cells: Dict[str, Cell] = {cell.name: cell for cell in cells}

    def cell(self, name: str) -> Cell:
        try:
            return self.cells[name]
        except KeyError:
            raise ClusterError(f"unknown cell {name!r}") from None

    def cells_by_free_capacity(self) -> List[Cell]:
        """Cells ordered most-free-first — where Sigmund sends work."""
        return sorted(self.cells.values(), key=lambda cell: -cell.free_cpus)

    def total_free_cpus(self) -> int:
        return sum(cell.free_cpus for cell in self.cells.values())

    def split_by_capacity(self, total_shards: int) -> Dict[str, int]:
        """Divide ``total_shards`` units of work across cells ∝ free CPUs.

        This is the paper's per-data-center job splitting: each cell gets
        its own independent MapReduce sized to its spare capacity.  Shares
        always sum to exactly ``total_shards`` and are never negative;
        with fewer shards than cells, the most-free cells are served
        first, and when there are enough shards to go around, every cell
        with free capacity receives at least one.
        """
        if total_shards < 1:
            raise ClusterError("total_shards must be >= 1")
        free = {name: cell.free_cpus for name, cell in self.cells.items()}
        total_free = sum(free.values())
        if total_free == 0:
            raise CapacityError("no free capacity anywhere in the cluster")
        names = sorted(free, key=lambda n: (-free[n], n))
        quotas = {
            name: total_shards * free[name] / total_free for name in names
        }
        shares = {name: int(quotas[name]) for name in names}
        # Hand the rounding remainder out one shard at a time, largest
        # fractional quota first (most-free cell on ties) — the remainder
        # is always smaller than the number of cells with a fractional
        # quota, so no cell receives more than one extra shard.
        remainder = total_shards - sum(shares.values())
        by_fraction = sorted(
            (name for name in names if free[name] > 0),
            key=lambda n: (shares[n] - quotas[n], -free[n], n),
        )
        for name in by_fraction[:remainder]:
            shares[name] += 1
        # When feasible, guarantee every free cell a shard by taking one
        # from the currently largest share (which then still keeps >= 1).
        starved = [n for n in names if free[n] > 0 and shares[n] == 0]
        if total_shards >= len([n for n in names if free[n] > 0]):
            for name in starved:
                donor = max(names, key=lambda n: shares[n])
                if shares[donor] <= 1:
                    break
                shares[donor] -= 1
                shares[name] += 1
        return shares
