"""Executing work on failure-prone VMs, with optional checkpointing.

This is the analytical heart of the paper's fault-tolerance story
(sections II-B, IV-B3): is pre-emptible capacity worth the restarts?
``run_with_preemptions`` simulates a job that needs ``work_seconds`` of
compute on a VM whose uptime is drawn from :class:`PreemptionModel`.
With checkpointing, only the work since the latest checkpoint is lost per
pre-emption; without it, every pre-emption restarts the job from zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.machine import Priority, VMRequest
from repro.cluster.preemption import PreemptionModel
from repro.exceptions import ClusterError
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracing import NULL_TRACER
from repro.rng import SeedLike, make_rng

#: Safety valve: simulation aborts after this many attempts.
MAX_ATTEMPTS = 100_000


@dataclass
class ExecutionTrace:
    """What happened while running one job to completion."""

    work_seconds: float
    wall_seconds: float = 0.0
    billed_seconds: float = 0.0
    attempts: int = 0
    preemptions: int = 0
    lost_work_seconds: float = 0.0
    checkpoints_written: int = 0
    checkpoint_overhead_seconds: float = 0.0

    @property
    def overhead_ratio(self) -> float:
        """Billed time beyond the ideal run, as a fraction of the ideal."""
        if self.work_seconds == 0:
            return 0.0
        return (self.billed_seconds - self.work_seconds) / self.work_seconds


def run_with_preemptions(
    work_seconds: float,
    priority: Priority = Priority.PREEMPTIBLE,
    preemption_model: PreemptionModel = PreemptionModel(),
    checkpoint_interval: Optional[float] = 300.0,
    checkpoint_write_seconds: float = 2.0,
    restart_overhead_seconds: float = 30.0,
    seed: SeedLike = None,
    metrics=NULL_METRICS,
    tracer=NULL_TRACER,
) -> ExecutionTrace:
    """Simulate one job run to completion under pre-emptions.

    ``checkpoint_interval=None`` disables checkpointing (pre-emption loses
    everything).  The paper checkpoints on a *fixed time interval* rather
    than per-iteration precisely so this loss is bounded regardless of
    retailer size; experiment E6 contrasts the two policies.

    Billed time covers everything the VM was held for: useful work,
    checkpoint writes, restart overhead, and work later thrown away.
    """
    if work_seconds < 0:
        raise ClusterError("work_seconds must be non-negative")
    if checkpoint_interval is not None and checkpoint_interval <= 0:
        raise ClusterError("checkpoint_interval must be positive or None")
    rng = make_rng(seed)
    trace = ExecutionTrace(work_seconds=work_seconds)
    completed = 0.0  # durable progress (restored from the latest checkpoint)

    while completed < work_seconds:
        trace.attempts += 1
        if trace.attempts > MAX_ATTEMPTS:
            raise ClusterError(
                "job never finished; pre-emption rate too high for its length"
            )
        uptime = preemption_model.sample_time_to_preemption(priority, rng)
        # Each attempt pays a restart overhead before doing useful work
        # (loading data, restoring the checkpoint).
        attempt_elapsed = restart_overhead_seconds if trace.attempts > 1 else 0.0
        attempt_progress = 0.0  # work done this attempt, may be partly lost
        attempt_durable = completed

        while True:
            remaining_work = work_seconds - (attempt_durable + attempt_progress)
            if remaining_work <= 0:
                break
            if checkpoint_interval is None:
                next_stop = remaining_work
                is_checkpoint = False
            else:
                next_stop = min(remaining_work, checkpoint_interval)
                is_checkpoint = next_stop == checkpoint_interval
            if attempt_elapsed + next_stop > uptime:
                # Pre-empted mid-segment: progress since the last durable
                # point is lost.
                worked_before_preemption = max(0.0, uptime - attempt_elapsed)
                attempt_elapsed = uptime
                trace.preemptions += 1
                trace.lost_work_seconds += attempt_progress + worked_before_preemption
                trace.billed_seconds += attempt_elapsed
                trace.wall_seconds += attempt_elapsed
                break
            attempt_elapsed += next_stop
            attempt_progress += next_stop
            if is_checkpoint and attempt_durable + attempt_progress < work_seconds:
                if attempt_elapsed + checkpoint_write_seconds > uptime:
                    # Pre-empted during the checkpoint write itself.
                    trace.preemptions += 1
                    trace.lost_work_seconds += attempt_progress
                    trace.billed_seconds += uptime
                    trace.wall_seconds += uptime
                    attempt_elapsed = uptime
                    break
                attempt_elapsed += checkpoint_write_seconds
                trace.checkpoints_written += 1
                trace.checkpoint_overhead_seconds += checkpoint_write_seconds
                attempt_durable += attempt_progress
                attempt_progress = 0.0
        else:  # pragma: no cover - while/else never used
            pass

        if attempt_durable + attempt_progress >= work_seconds:
            # Finished within this attempt's uptime.
            trace.billed_seconds += attempt_elapsed
            trace.wall_seconds += attempt_elapsed
            completed = work_seconds
        else:
            completed = attempt_durable

    label = priority.value
    metrics.counter("execution_attempts_total", priority=label).inc(
        trace.attempts
    )
    metrics.counter("execution_preemptions_total", priority=label).inc(
        trace.preemptions
    )
    metrics.counter(
        "execution_checkpoints_written_total", priority=label
    ).inc(trace.checkpoints_written)
    metrics.counter(
        "execution_lost_work_seconds_total", priority=label
    ).inc(trace.lost_work_seconds)
    tracer.record_span(
        "execution",
        0.0,
        trace.wall_seconds,
        priority=label,
        attempts=trace.attempts,
        preemptions=trace.preemptions,
        billed=trace.billed_seconds,
    )
    return trace


def expected_cost_comparison(
    work_seconds: float,
    request_cpus: int,
    request_memory_gb: float,
    pricing,
    preemption_model: PreemptionModel = PreemptionModel(),
    checkpoint_interval: Optional[float] = 300.0,
    trials: int = 50,
    seed: SeedLike = 0,
) -> dict:
    """Monte-Carlo cost of a job on pre-emptible vs regular capacity.

    Convenience used by examples and the E5 benchmark: same job, two
    priorities, averaged over ``trials`` simulated runs each.
    """
    rng = make_rng(seed)
    results = {}
    for priority in (Priority.PREEMPTIBLE, Priority.REGULAR):
        request = VMRequest(request_cpus, request_memory_gb, priority)
        costs, walls = [], []
        for _ in range(trials):
            trace = run_with_preemptions(
                work_seconds,
                priority=priority,
                preemption_model=preemption_model,
                checkpoint_interval=checkpoint_interval,
                seed=rng,
            )
            costs.append(pricing.cost(request, trace.billed_seconds))
            walls.append(trace.wall_seconds)
        results[priority.value] = {
            "mean_cost": sum(costs) / trials,
            "mean_wall_seconds": sum(walls) / trials,
        }
    regular = results[Priority.REGULAR.value]["mean_cost"]
    preemptible = results[Priority.PREEMPTIBLE.value]["mean_cost"]
    results["savings_fraction"] = 1.0 - preemptible / regular if regular else 0.0
    return results
