"""Discrete-event cluster simulator (the Borg / pre-emptible-VM substrate).

The paper's systems choices — pre-emptible VMs at ~70% discount, time-based
checkpointing, one-retailer-per-machine scheduling, per-data-center job
splitting — all trade cost against fault-tolerance overhead.  This package
simulates exactly enough of Borg [11] to reproduce those trade-offs:
machines with CPU/memory, regular and pre-emptible VM priorities, Poisson
pre-emptions, multi-cell clusters with heterogeneous free capacity, and a
cost ledger that prices CPU-hours at regular and discounted rates.
"""

from repro.cluster.cell import Cell, Cluster
from repro.cluster.clock import SimClock
from repro.cluster.cost import CostLedger, ResourcePricing
from repro.cluster.execution import ExecutionTrace, run_with_preemptions
from repro.cluster.machine import (
    MachineSpec,
    Priority,
    VirtualMachine,
    VMRequest,
)
from repro.cluster.preemption import PreemptionModel

__all__ = [
    "SimClock",
    "MachineSpec",
    "Priority",
    "VMRequest",
    "VirtualMachine",
    "Cell",
    "Cluster",
    "PreemptionModel",
    "ResourcePricing",
    "CostLedger",
    "ExecutionTrace",
    "run_with_preemptions",
]
