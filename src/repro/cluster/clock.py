"""Simulated wall clock.

All pipeline timing (checkpoint intervals, task durations, makespans) is
measured against this clock, never the host's, so experiments are exact
and instantaneous regardless of real elapsed time.
"""

from __future__ import annotations

from repro.exceptions import ClusterError


class SimClock:
    """A monotonically advancing simulated clock (seconds)."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ClusterError(f"cannot advance clock by {seconds} seconds")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump to an absolute time (must not be in the past)."""
        if timestamp < self._now:
            raise ClusterError(
                f"cannot rewind clock from {self._now} to {timestamp}"
            )
        self._now = timestamp
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimClock(now={self._now:.3f})"
