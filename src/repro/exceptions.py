"""Exception hierarchy for the Sigmund reproduction.

All library errors derive from :class:`SigmundError` so callers can catch
one base class at service boundaries while still being able to react to
specific failure modes (isolation violations, capacity problems, etc.).
"""

from __future__ import annotations


class SigmundError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(SigmundError):
    """A configuration record or grid specification is invalid."""


class DataError(SigmundError):
    """Training or catalog data is malformed or inconsistent."""


class TaxonomyError(DataError):
    """A taxonomy operation referenced an unknown node or broke tree shape."""


class IsolationError(SigmundError):
    """A cross-retailer access was attempted.

    Sigmund guarantees that one retailer's data and models are never used
    for another retailer (paper section I).  The registry raises this error
    whenever an artifact is requested under the wrong retailer id.
    """


class ModelNotTrainedError(SigmundError):
    """An operation required a trained model but none was available."""


class CheckpointError(SigmundError):
    """A checkpoint could not be written, read, or garbage-collected."""


class CheckpointCorruptionError(CheckpointError):
    """A stored checkpoint failed its integrity check on restore.

    Torn writes, bit rot, or a truncated blob on the shared filesystem:
    the checksum (or deserialization) did not match the payload.  Callers
    on the recovery path treat this as "no checkpoint" and cold-start —
    a corrupt checkpoint must never be half-loaded into a model.
    """


class RetrievalError(SigmundError):
    """An ANN retrieval index could not be built or queried.

    Raised when a model has no embedding surface to index, when an index
    is asked about items it was not built over, or when a retrieval store
    operation violates version monotonicity.
    """


class ClusterError(SigmundError):
    """The cluster simulator was asked to do something impossible."""


class CapacityError(ClusterError):
    """No machine in the cell can satisfy a resource request."""


class PreemptedError(ClusterError):
    """Raised inside a simulated task when its VM is pre-empted."""

    def __init__(self, message: str = "VM pre-empted", *, at_time: float = 0.0):
        super().__init__(message)
        #: Simulated time at which the pre-emption occurred.
        self.at_time = at_time


class MapReduceError(SigmundError):
    """A MapReduce job failed permanently (retries exhausted)."""


class WorkerCrashError(SigmundError):
    """A fleet worker process died mid-task (SIGKILL, OOM, segfault).

    Unlike :class:`SimulatedCrash`, this is a *real* process death in the
    multiprocessing training fleet, not a simulated coordinator kill.  The
    executor respawns the worker and retries the task a bounded number of
    times; a task that keeps killing its workers surfaces as this error
    and is handled by the job's failure policy (dead-lettered under
    ``skip_record``, job abort under ``fail_job``) — the pool itself never
    hangs or shrinks.
    """

    def __init__(self, message: str, attempts: int = 1):
        super().__init__(message)
        self.attempts = attempts


class FaultInjectedError(SigmundError):
    """A deliberate failure raised by a fault-injection plan.

    Robustness tests and the fault-isolation benchmark use this to make
    failures deterministic; seeing it outside a test means a
    :class:`~repro.mapreduce.runtime.FaultPlan` leaked into production
    wiring."""


class ServingError(SigmundError):
    """The serving store could not satisfy a request."""


class PublishRejectedError(ServingError):
    """A recommendation table failed publish-gate validation.

    The store keeps serving the last-good version; the rejection is
    surfaced through the quality monitor instead of silently serving a
    broken table."""


class SimulatedCrash(BaseException):
    """A coordinator kill injected by a :class:`~repro.core.recovery.CrashPlan`.

    Deliberately derives from :class:`BaseException`, not
    :class:`SigmundError`: a machine kill is not a task fault, so none of
    the fault-isolation layers (``skip_record`` dead-lettering, per-cell
    degradation, the service's per-retailer try/except) may catch and
    absorb it.  It must unwind the whole daily run — exactly like
    ``KeyboardInterrupt`` — leaving the run journal open so
    ``SigmundService.recover()`` can resume the day.
    """

    def __init__(self, stage: str, label: str = ""):
        super().__init__(f"simulated crash at {stage}:{label}")
        self.stage = stage
        self.label = label
