"""Exception hierarchy for the Sigmund reproduction.

All library errors derive from :class:`SigmundError` so callers can catch
one base class at service boundaries while still being able to react to
specific failure modes (isolation violations, capacity problems, etc.).
"""

from __future__ import annotations


class SigmundError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(SigmundError):
    """A configuration record or grid specification is invalid."""


class DataError(SigmundError):
    """Training or catalog data is malformed or inconsistent."""


class TaxonomyError(DataError):
    """A taxonomy operation referenced an unknown node or broke tree shape."""


class IsolationError(SigmundError):
    """A cross-retailer access was attempted.

    Sigmund guarantees that one retailer's data and models are never used
    for another retailer (paper section I).  The registry raises this error
    whenever an artifact is requested under the wrong retailer id.
    """


class ModelNotTrainedError(SigmundError):
    """An operation required a trained model but none was available."""


class CheckpointError(SigmundError):
    """A checkpoint could not be written, read, or garbage-collected."""


class ClusterError(SigmundError):
    """The cluster simulator was asked to do something impossible."""


class CapacityError(ClusterError):
    """No machine in the cell can satisfy a resource request."""


class PreemptedError(ClusterError):
    """Raised inside a simulated task when its VM is pre-empted."""

    def __init__(self, message: str = "VM pre-empted", *, at_time: float = 0.0):
        super().__init__(message)
        #: Simulated time at which the pre-emption occurred.
        self.at_time = at_time


class MapReduceError(SigmundError):
    """A MapReduce job failed permanently (retries exhausted)."""


class FaultInjectedError(SigmundError):
    """A deliberate failure raised by a fault-injection plan.

    Robustness tests and the fault-isolation benchmark use this to make
    failures deterministic; seeing it outside a test means a
    :class:`~repro.mapreduce.runtime.FaultPlan` leaked into production
    wiring."""


class ServingError(SigmundError):
    """The serving store could not satisfy a request."""
