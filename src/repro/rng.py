"""Seeded random-number-generation helpers.

Every stochastic component in the library takes an explicit seed or an
explicit :class:`numpy.random.Generator`.  These helpers centralize the
conversion so that the rest of the code never calls the global numpy RNG,
which keeps experiments reproducible run to run.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an integer, an existing generator (returned as-is so
    that callers can thread one generator through a pipeline), or ``None``
    for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators.

    Used when work fans out (e.g. one generator per retailer, or one per
    Hogwild thread) so that each unit of work has its own stream and the
    result does not depend on execution order.
    """
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]


def derive_seed(base_seed: int, *components: Union[int, str]) -> int:
    """Derive a deterministic 63-bit seed from a base seed and components.

    Retailer ids and model numbers are mixed into the base seed so that,
    for example, retailer ``r17`` always sees the same synthetic data for a
    given base seed regardless of how many other retailers exist.
    """
    mask = 0xFFFFFFFFFFFFFFFF
    h = (base_seed * 0x9E3779B97F4A7C15) & mask
    for component in components:
        if isinstance(component, str):
            part = hash_string(component)
        else:
            part = component & 0x7FFFFFFFFFFFFFFF
        h = ((h ^ part) * 0xBF58476D1CE4E5B9) & mask
    return h & 0x7FFFFFFFFFFFFFFF


def derive_worker_seed(
    base_seed: int,
    process_index: int,
    thread_index: int,
    *components: Union[int, str],
) -> int:
    """Seed for one (process, thread) worker lane of a parallel unit of work.

    Streams are namespaced by *logical* lane indices, never by ambient
    process identity (pid, spawn order, time): the same logical shard draws
    the same stream whether it runs inline, on a thread, or in a spawned
    worker process.  This is what makes a sweep executed by the process
    fleet byte-identical to the serial reference run — worker placement
    can change freely without moving any random draw.
    """
    return derive_seed(
        base_seed, "proc", process_index, "thread", thread_index, *components
    )


def hash_string(text: str) -> int:
    """Stable (process-independent) 63-bit hash of ``text``.

    Python's builtin ``hash`` is salted per process; this FNV-1a variant is
    stable so derived seeds survive restarts, matching how Sigmund re-runs
    a retailer's sweep deterministically.
    """
    h = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h & 0x7FFFFFFFFFFFFFFF
