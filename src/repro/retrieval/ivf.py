"""IVF (inverted-file) approximate nearest-neighbour index.

The structure behind every production embedding-retrieval system the
related papers describe: a coarse quantizer (k-means centroids over the
item vectors) partitions the catalog into inverted lists; a query scores
the centroids, probes the ``nprobe`` best lists, and ranks only the
items inside them with exact inner products.  Work per query drops from
``O(n_items)`` to ``O(n_clusters + probed items)``.

Maximum-inner-product search reduces to this exactly via bias
augmentation: item vectors carry their bias as an extra coordinate and
queries carry a constant ``1.0``, so the inner product in augmented
space equals ``u . phi_eff + bias`` — the same score
:meth:`~repro.models.bpr.BPRModel.score_items` produces.

Everything is deterministic from the config seed: k-means init is a
seeded distinct sample, Lloyd iterations and the final assignment break
ties by lowest index, and candidate ranking goes through the shared
:func:`~repro.models.base.top_k_select` order — so rebuilding an index
from the same inputs is byte-identical (the crash-recovery property),
and probed-cluster sets are prefixes across ``nprobe`` values (which
makes recall@k provably monotone in ``nprobe``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import RetrievalError
from repro.models.base import top_k_select
from repro.obs.metrics import NULL_METRICS
from repro.retrieval.lsh import LSHPrefilter
from repro.rng import make_rng

#: Upper bound on coarse-quantizer size; beyond this, centroid scoring
#: itself starts to cost like a small exact search.
MAX_CLUSTERS = 1024

#: Assignment chunk: bounds the (chunk, n_clusters) score matrix while a
#: million-item catalog streams through the quantizer.
ASSIGN_CHUNK = 8192


@dataclass(frozen=True)
class IVFConfig:
    """Knobs for :class:`IVFIndex` (all deterministic given ``seed``)."""

    #: Number of k-means cells; ``None`` -> ``~4 * sqrt(n)`` capped at
    #: :data:`MAX_CLUSTERS`.
    n_clusters: Optional[int] = None
    #: Inverted lists probed per query (the recall/latency knob).  The
    #: default is the smallest value the E26 bench measured at
    #: recall@100 >= 0.95 across every catalog size.
    nprobe: int = 16
    #: Lloyd iterations over the training sample.
    kmeans_iters: int = 8
    #: Centroids train on a seeded subsample this large; the full catalog
    #: is assigned in one chunked pass afterwards.
    train_sample: int = 20_000
    seed: int = 0
    #: LSH signature width for the optional prefilter; 0 disables it.
    lsh_bits: int = 0
    #: Candidates farther than this hamming distance from the query
    #: signature are dropped before scoring; ``None`` -> ``lsh_bits // 2``.
    lsh_max_hamming: Optional[int] = None


def default_n_clusters(n_items: int) -> int:
    """``~4 * sqrt(n)`` clusters, clamped to ``[1, MAX_CLUSTERS]``."""
    return max(1, min(MAX_CLUSTERS, int(round(4.0 * np.sqrt(n_items)))))


def _concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(start, start + count)`` for each pair."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    owners_start = np.repeat(starts, counts)
    bases = np.repeat(np.cumsum(counts) - counts, counts)
    return owners_start + (np.arange(total, dtype=np.int64) - bases)


def _assign_chunked(vectors: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest centroid (L2) per row, tie -> lowest centroid index."""
    norms = (centroids**2).sum(axis=1)
    out = np.empty(vectors.shape[0], dtype=np.int64)
    for start in range(0, vectors.shape[0], ASSIGN_CHUNK):
        block = vectors[start : start + ASSIGN_CHUNK]
        # argmax(2 x.c - |c|^2) == argmin |x - c|^2; |x|^2 is constant
        # per row.  np.argmax returns the first maximum: deterministic.
        affinity = block @ centroids.T
        affinity *= 2.0
        affinity -= norms
        out[start : start + block.shape[0]] = np.argmax(affinity, axis=1)
    return out


def _kmeans(
    points: np.ndarray, n_clusters: int, iters: int, rng: np.random.Generator
) -> np.ndarray:
    """Seeded Lloyd k-means; empty clusters reseed from farthest points."""
    n = points.shape[0]
    k = min(n_clusters, n)
    init = np.sort(rng.choice(n, size=k, replace=False))
    centroids = points[init].copy()
    for _ in range(max(1, iters)):
        assign = _assign_chunked(points, centroids)
        counts = np.bincount(assign, minlength=k)
        sums = np.zeros_like(centroids)
        np.add.at(sums, assign, points)
        occupied = counts > 0
        centroids[occupied] = sums[occupied] / counts[occupied, None]
        empty = np.flatnonzero(~occupied)
        if empty.size:
            # Reseed each empty cell from the points farthest from their
            # centroid, in deterministic distance-then-index order.
            residual = points - centroids[assign]
            distance = (residual**2).sum(axis=1)
            farthest = np.lexsort(
                (np.arange(n, dtype=np.int64), -distance)
            )[: empty.size]
            centroids[empty] = points[farthest]
    return centroids


def augment_items(
    item_vectors: np.ndarray, item_bias: Optional[np.ndarray]
) -> np.ndarray:
    """``[phi_eff | bias]`` — item vectors with the bias coordinate."""
    vectors = np.asarray(item_vectors, dtype=np.float64)
    if vectors.ndim != 2:
        raise RetrievalError("item_vectors must be a 2-D array")
    n = vectors.shape[0]
    bias_col = (
        np.zeros((n, 1))
        if item_bias is None
        else np.asarray(item_bias, dtype=np.float64).reshape(n, 1)
    )
    return np.ascontiguousarray(np.concatenate([vectors, bias_col], axis=1))


def augment_queries(query_vectors: np.ndarray) -> np.ndarray:
    """Queries with the constant ``1.0`` coordinate matching the bias."""
    queries = np.asarray(query_vectors, dtype=np.float64)
    if queries.ndim == 1:
        queries = queries[None, :]
    ones = np.ones((queries.shape[0], 1))
    return np.concatenate([queries, ones], axis=1)


class IVFIndex:
    """Coarse-quantized inverted-file index over bias-augmented items."""

    backend_name = "ivf"

    def __init__(
        self,
        item_aug: np.ndarray,
        centroids: np.ndarray,
        list_offsets: np.ndarray,
        list_items: np.ndarray,
        config: IVFConfig,
        prefilter: Optional[LSHPrefilter] = None,
        item_signatures: Optional[np.ndarray] = None,
        metrics=NULL_METRICS,
    ):
        self._item_aug = item_aug
        self.centroids = centroids
        self._list_offsets = list_offsets
        self._list_items = list_items
        self._list_sizes = np.diff(list_offsets)
        self.config = config
        self.prefilter = prefilter
        self._item_signatures = item_signatures
        #: Re-bound by the inference pipeline to the current run's
        #: registry (indexes, like selectors, outlive a single run).
        self.metrics = metrics

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        item_vectors: np.ndarray,
        item_bias: Optional[np.ndarray] = None,
        config: IVFConfig = IVFConfig(),
        metrics=NULL_METRICS,
    ) -> "IVFIndex":
        """Train the quantizer and build inverted lists (deterministic)."""
        item_aug = augment_items(item_vectors, item_bias)
        n = item_aug.shape[0]
        if n == 0:
            raise RetrievalError("cannot build an IVF index over zero items")
        k = (
            default_n_clusters(n)
            if config.n_clusters is None
            else max(1, min(config.n_clusters, n))
        )
        rng = make_rng(config.seed)
        sample_size = min(config.train_sample, n)
        sample = np.sort(rng.choice(n, size=sample_size, replace=False))
        centroids = _kmeans(
            item_aug[sample], k, config.kmeans_iters, rng
        )
        assign = _assign_chunked(item_aug, centroids)
        order = np.argsort(assign, kind="stable")
        list_items = order.astype(np.int64)
        list_offsets = np.searchsorted(
            assign[order], np.arange(centroids.shape[0] + 1)
        ).astype(np.int64)
        prefilter = None
        item_signatures = None
        if config.lsh_bits > 0:
            prefilter = LSHPrefilter.build(
                item_aug, config.lsh_bits, seed=config.seed
            )
            item_signatures = prefilter.signatures
        metrics.counter("retrieval_index_builds_total").inc()
        metrics.gauge("retrieval_index_clusters").set(centroids.shape[0])
        return cls(
            item_aug,
            centroids,
            list_offsets,
            list_items,
            config,
            prefilter=prefilter,
            item_signatures=item_signatures,
            metrics=metrics,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_items(self) -> int:
        return self._item_aug.shape[0]

    @property
    def n_clusters(self) -> int:
        return self.centroids.shape[0]

    def cluster_sizes(self) -> np.ndarray:
        """Inverted-list lengths (zeros are legal: empty cells probe free)."""
        return self._list_sizes.copy()

    def state(self) -> Dict[str, np.ndarray]:
        """Every array that defines the index, for parity comparisons."""
        state = {
            "item_aug": self._item_aug,
            "centroids": self.centroids,
            "list_offsets": self._list_offsets,
            "list_items": self._list_items,
        }
        if self._item_signatures is not None:
            state["signatures"] = self._item_signatures
        return state

    def state_digest(self) -> str:
        """SHA-256 over the index arrays — byte-identical rebuild check."""
        digest = hashlib.sha256()
        for name in sorted(self.state()):
            digest.update(name.encode())
            digest.update(np.ascontiguousarray(self.state()[name]).tobytes())
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(
        self,
        queries: np.ndarray,
        k: int,
        nprobe: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Top-``k`` per query row: ``(ids, scores)``, both ``(B, k)``.

        Rows are ranked by exact augmented inner product within the
        probed lists, ordered by the shared deterministic tie order.
        Short rows (fewer candidates than ``k``) pad ids with ``-1`` and
        scores with NaN.
        """
        q_aug = augment_queries(queries)
        batch = q_aug.shape[0]
        k = max(0, int(k))
        ids = np.full((batch, k), -1, dtype=np.int64)
        scores = np.full((batch, k), np.nan)
        if batch == 0 or k == 0:
            return ids, scores
        probe_width = min(
            self.n_clusters,
            self.config.nprobe if nprobe is None else max(1, int(nprobe)),
        )
        centroid_affinity = q_aug @ self.centroids.T
        probed = np.empty((batch, probe_width), dtype=np.int64)
        for row in range(batch):
            # Deterministic (affinity desc, cluster asc) order makes the
            # probed set at nprobe a prefix of the set at nprobe + 1.
            probed[row] = top_k_select(centroid_affinity[row], probe_width)
        flat_clusters = probed.ravel()
        counts = self._list_sizes[flat_clusters]
        positions = _concat_ranges(self._list_offsets[flat_clusters], counts)
        candidates = self._list_items[positions]
        per_query = counts.reshape(batch, probe_width).sum(axis=1)
        owners = np.repeat(np.arange(batch), per_query)
        self.metrics.counter("retrieval_probes_total").inc(
            int(batch * probe_width)
        )
        if self.prefilter is not None and candidates.size:
            query_signatures = self.prefilter.signature_of(q_aug)
            limit = (
                self.config.lsh_bits // 2
                if self.config.lsh_max_hamming is None
                else self.config.lsh_max_hamming
            )
            keep = (
                self.prefilter.hamming(
                    query_signatures[owners],
                    self._item_signatures[candidates],
                )
                <= limit
            )
            candidates = candidates[keep]
            owners = owners[keep]
            per_query = np.bincount(owners, minlength=batch)
        self.metrics.counter("retrieval_candidates_total").inc(
            int(candidates.size)
        )
        if candidates.size == 0:
            return ids, scores
        flat_scores = np.einsum(
            "nf,nf->n", self._item_aug[candidates], q_aug[owners]
        )
        bounds = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(per_query)]
        )
        for row in range(batch):
            row_candidates = candidates[bounds[row] : bounds[row + 1]]
            if row_candidates.size == 0:
                continue
            row_scores = flat_scores[bounds[row] : bounds[row + 1]]
            top = top_k_select(
                row_scores,
                min(k, row_candidates.size),
                tiebreak=row_candidates,
            )
            ids[row, : top.size] = row_candidates[top]
            scores[row, : top.size] = row_scores[top]
        return ids, scores
