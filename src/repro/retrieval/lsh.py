"""Signed-random-projection LSH signatures (optional IVF prefilter).

A classic bit-signature scheme: project vectors onto ``n_bits`` seeded
random hyperplanes, keep the sign pattern packed into bytes.  Hamming
distance between signatures approximates angular distance, so a cheap
popcount can discard candidates that cannot plausibly be near the query
before the exact inner-product scoring pass.

Pure numpy; popcount runs through a 256-entry lookup table because
``np.bitwise_count`` only exists on recent numpy versions.
"""

from __future__ import annotations

import numpy as np

from repro.rng import make_rng

#: popcount(i) for every byte value, for vectorized hamming distance.
_POPCOUNT = np.array(
    [bin(value).count("1") for value in range(256)], dtype=np.uint8
)


class LSHPrefilter:
    """Packed sign signatures for a fixed set of vectors."""

    def __init__(self, hyperplanes: np.ndarray, signatures: np.ndarray):
        #: ``(n_bits, dim)`` projection directions.
        self.hyperplanes = hyperplanes
        #: ``(n_vectors, ceil(n_bits / 8))`` packed sign patterns.
        self.signatures = signatures
        self.n_bits = hyperplanes.shape[0]

    @classmethod
    def build(
        cls, vectors: np.ndarray, n_bits: int, seed: int = 0
    ) -> "LSHPrefilter":
        """Signatures for ``vectors`` under seeded random hyperplanes."""
        if n_bits < 1:
            raise ValueError("n_bits must be >= 1")
        rng = make_rng(seed)
        hyperplanes = rng.normal(size=(n_bits, vectors.shape[1]))
        prefilter = cls(hyperplanes, np.empty((0, 0), dtype=np.uint8))
        prefilter.signatures = prefilter.signature_of(vectors)
        return prefilter

    def signature_of(self, vectors: np.ndarray) -> np.ndarray:
        """Packed sign signature per row of ``vectors``."""
        bits = (vectors @ self.hyperplanes.T) >= 0.0
        return np.packbits(bits, axis=1)

    def hamming(
        self, query_signatures: np.ndarray, item_signatures: np.ndarray
    ) -> np.ndarray:
        """Row-wise hamming distance between two aligned signature arrays."""
        xored = np.bitwise_xor(query_signatures, item_signatures)
        return _POPCOUNT[xored].sum(axis=1).astype(np.int64)
