"""Approximate nearest-neighbour retrieval over item embeddings.

The exact ``U @ V_eff.T`` top-k is the scaling wall for million-item
catalogs (ROADMAP; eBay's embedding-serving architecture in PAPERS.md).
This package provides the retrieval layer that replaces it above a
measured catalog-size threshold:

* :class:`~repro.retrieval.ivf.IVFIndex` — IVF-style coarse quantization
  (seeded k-means centroids, per-cluster inverted lists, an ``nprobe``
  knob) with an optional LSH signature prefilter,
* :class:`~repro.retrieval.backend.ExactRetrieval` — the exact GEMM
  baseline behind the same :class:`~repro.retrieval.backend.RetrievalBackend`
  protocol, used below the threshold and as the recall reference,
* :class:`~repro.retrieval.backend.ModelRetrieval` — couples a trained
  model's query embeddings to a backend for item-to-item search,
* :mod:`~repro.retrieval.harness` — measured ``recall@k`` against the
  exact baseline, plus the bench-derived ANN threshold,
* :class:`~repro.retrieval.store.RetrievalIndexStore` — versioned,
  rollback-able index publication alongside the serving tables.

Scoring is exact within the probed candidate set (inner product against
the bias-augmented item vectors), and every backend ranks through the
shared deterministic tie order, so ANN results are always a subset of —
never a reordering of — the exact ranking.
"""

from repro.retrieval.backend import (
    ExactRetrieval,
    ModelRetrieval,
    RetrievalBackend,
    ann_for_model,
    exact_for_model,
    retrieval_for_model,
)
from repro.retrieval.harness import (
    DEFAULT_ANN_THRESHOLD,
    measure_model_recall,
    recall_at_k,
    resolve_ann_threshold,
    synthetic_embeddings,
    synthetic_queries,
)
from repro.retrieval.ivf import IVFConfig, IVFIndex
from repro.retrieval.lsh import LSHPrefilter
from repro.retrieval.store import RetrievalIndexStore

__all__ = [
    "DEFAULT_ANN_THRESHOLD",
    "ExactRetrieval",
    "IVFConfig",
    "IVFIndex",
    "LSHPrefilter",
    "ModelRetrieval",
    "RetrievalBackend",
    "RetrievalIndexStore",
    "ann_for_model",
    "exact_for_model",
    "measure_model_recall",
    "recall_at_k",
    "resolve_ann_threshold",
    "retrieval_for_model",
    "synthetic_embeddings",
    "synthetic_queries",
]
