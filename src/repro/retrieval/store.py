"""Versioned publication of retrieval indexes, alongside the tables.

An ANN index is a serving artifact with the same lifecycle as the
recommendation tables it rides with: rebuilt after each training day,
published under the day's version, rolled back together with the table
when production regresses, purged on offboarding.  This store mirrors
:class:`~repro.serving.store.RecommendationStore`'s contract — version
monotonicity, a single last-good predecessor, idempotent drops — for
:class:`~repro.retrieval.backend.ModelRetrieval` adapters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.exceptions import ServingError
from repro.obs.metrics import NULL_METRICS
from repro.retrieval.backend import ModelRetrieval


@dataclass
class _IndexEntry:
    """One retailer's published index plus its version."""

    version: int
    adapter: ModelRetrieval


class RetrievalIndexStore:
    """In-memory retailer -> published retrieval index, versioned."""

    def __init__(self, metrics=NULL_METRICS, name: str = "retrieval") -> None:
        self._entries: Dict[str, _IndexEntry] = {}
        #: Last-good predecessor, kept for rollback with the tables.
        self._previous: Dict[str, _IndexEntry] = {}
        self.metrics = metrics
        self.name = name

    def load(
        self, retailer_id: str, adapter: ModelRetrieval, version: int
    ) -> None:
        """Publish an index under ``version`` (monotonic per retailer)."""
        current = self._entries.get(retailer_id)
        if current is not None and version <= current.version:
            self.metrics.counter(
                "store_stale_rejected_total", store=self.name
            ).inc()
            raise ServingError(
                f"stale index for {retailer_id!r}: version {version} <= "
                f"current {current.version}"
            )
        if current is not None:
            self._previous[retailer_id] = current
        self._entries[retailer_id] = _IndexEntry(version, adapter)
        self.metrics.counter(
            "store_batches_loaded_total", store=self.name
        ).inc()

    def rollback(self, retailer_id: str) -> int:
        """Re-serve the index published with the rolled-back table."""
        previous = self._previous.pop(retailer_id, None)
        if previous is None:
            raise ServingError(
                f"no last-good index to roll back to for {retailer_id!r}"
            )
        self._entries[retailer_id] = previous
        self.metrics.counter("store_rollbacks_total", store=self.name).inc()
        return previous.version

    def drop_retailer(self, retailer_id: str) -> None:
        """Purge a retailer's indexes outright (offboarding, idempotent)."""
        self._entries.pop(retailer_id, None)
        self._previous.pop(retailer_id, None)

    def get(self, retailer_id: str) -> Optional[ModelRetrieval]:
        entry = self._entries.get(retailer_id)
        return entry.adapter if entry is not None else None

    def has_retailer(self, retailer_id: str) -> bool:
        return retailer_id in self._entries

    def version_of(self, retailer_id: str) -> Optional[int]:
        entry = self._entries.get(retailer_id)
        return entry.version if entry is not None else None

    def retailers(self) -> List[str]:
        return sorted(self._entries)

    def versions(self) -> Dict[str, int]:
        return {rid: entry.version for rid, entry in self._entries.items()}
