"""Recall measurement for ANN backends, and the bench-derived threshold.

An approximate index is only admissible if we can *measure* how
approximate it is.  :func:`recall_at_k` compares any backend's top-k
against the exact baseline on the same queries; the daily-run publish
gate and the E26 benchmark both go through it, so "recall" means the
same thing in CI, in the bench report, and in the recall gate that can
reject an index before it reaches serving.

The exact-vs-ANN switchover size comes from measurement too:
:func:`resolve_ann_threshold` reads the crossover point out of the
committed ``BENCH_retrieval.json`` (E26's output) and falls back to a
conservative default when no bench artifact exists.
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional, Union

import numpy as np

from repro.retrieval.backend import exact_for_model
from repro.rng import make_rng

#: Catalog size above which ANN replaces the exact GEMM when no measured
#: crossover is available.  Conservative: the E26 bench on clustered
#: synthetic embeddings measures the real crossover far lower.
DEFAULT_ANN_THRESHOLD = 50_000

#: Never let a measured crossover push the switch below this: tiny
#: catalogs are always cheaper to score exactly than to quantize.
MIN_ANN_THRESHOLD = 1024

#: Where E26 writes its report, relative to the repo root.
BENCH_FILENAME = "BENCH_retrieval.json"


def recall_at_k(
    backend,
    exact,
    queries: np.ndarray,
    k: int,
    nprobe: Optional[int] = None,
) -> float:
    """Fraction of exact top-``k`` ids the backend also returns.

    Averaged over query rows; padding ids (``-1``) never count as hits.
    """
    approx_ids, _ = backend.search(queries, k, nprobe)
    exact_ids, _ = exact.search(queries, k)
    total = 0.0
    rows = 0
    for row in range(exact_ids.shape[0]):
        truth = exact_ids[row]
        truth = truth[truth >= 0]
        if truth.size == 0:
            continue
        found = approx_ids[row]
        hits = np.isin(truth, found[found >= 0]).sum()
        total += hits / truth.size
        rows += 1
    # Plain float: recall values land in journal payloads and JSON
    # reports, where a numpy scalar would poison serialization.
    return float(total / rows) if rows else 1.0


def measure_model_recall(
    model,
    adapter,
    k: int,
    n_queries: int = 32,
    seed: int = 0,
    nprobe: Optional[int] = None,
) -> float:
    """Recall@k of ``adapter`` against exact retrieval on ``model``.

    Queries are a seeded sample of the model's own item-to-item query
    vectors — the workload candidate selection actually runs.
    """
    exact = exact_for_model(model)
    n = exact.n_items
    rng = make_rng(seed)
    sample = np.sort(
        rng.choice(n, size=min(n_queries, n), replace=False)
    )
    queries = exact.query_vectors[sample]
    k = min(k, n)
    return recall_at_k(
        adapter.backend, exact.backend, queries, k, nprobe
    )


def resolve_ann_threshold(
    path: Optional[Union[str, pathlib.Path]] = None,
) -> int:
    """Catalog size at which ANN beats exact, per the committed bench.

    Reads ``crossover_items`` from ``BENCH_retrieval.json`` at the repo
    root (or ``path``); any missing/unreadable/malformed artifact falls
    back to :data:`DEFAULT_ANN_THRESHOLD`.
    """
    if path is None:
        path = (
            pathlib.Path(__file__).resolve().parents[3] / BENCH_FILENAME
        )
    try:
        payload = json.loads(pathlib.Path(path).read_text())
        crossover = int(payload["crossover_items"])
    except (OSError, ValueError, KeyError, TypeError):
        return DEFAULT_ANN_THRESHOLD
    return max(MIN_ANN_THRESHOLD, crossover)


def synthetic_embeddings(
    n_items: int,
    n_factors: int = 16,
    seed: int = 0,
    n_groups: Optional[int] = None,
    group_spread: float = 0.25,
):
    """Clustered item vectors + biases mimicking a trained catalog.

    A mixture of Gaussians, not white noise: real embedding tables
    cluster by taxonomy, which is what gives IVF good recall at modest
    ``nprobe``.  Returns ``(vectors, bias)``.
    """
    rng = make_rng(seed)
    if n_groups is None:
        n_groups = max(8, int(round(np.sqrt(n_items) / 2)))
    n_groups = min(n_groups, n_items)
    centers = rng.normal(size=(n_groups, n_factors))
    owners = rng.integers(0, n_groups, size=n_items)
    vectors = centers[owners] + group_spread * rng.normal(
        size=(n_items, n_factors)
    )
    bias = 0.05 * rng.normal(size=n_items)
    return vectors, bias


def synthetic_queries(
    vectors: np.ndarray, n_queries: int, seed: int = 0
) -> np.ndarray:
    """Item-like query vectors: perturbed rows of the catalog itself."""
    rng = make_rng(seed)
    rows = rng.integers(0, vectors.shape[0], size=n_queries)
    return vectors[rows] + 0.1 * rng.normal(
        size=(n_queries, vectors.shape[1])
    )


__all__ = [
    "DEFAULT_ANN_THRESHOLD",
    "MIN_ANN_THRESHOLD",
    "measure_model_recall",
    "recall_at_k",
    "resolve_ann_threshold",
    "synthetic_embeddings",
    "synthetic_queries",
]
