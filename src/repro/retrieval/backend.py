"""Retrieval backends: the protocol, the exact baseline, model adapters.

:class:`ExactRetrieval` and :class:`~repro.retrieval.ivf.IVFIndex` share
one contract (:class:`RetrievalBackend`), one scoring rule (augmented
inner product == ``u . phi_eff + bias``), and one deterministic tie
order — so the exact backend doubles as the ground truth the recall
harness measures ANN against, and consumers can swap backends on a size
threshold without behavioral drift below ``k``.
"""

from __future__ import annotations

from typing import Optional, Protocol, Tuple

import numpy as np

from repro.exceptions import RetrievalError
from repro.models.base import top_k_select
from repro.obs.metrics import NULL_METRICS
from repro.retrieval.ivf import (
    IVFConfig,
    IVFIndex,
    augment_items,
    augment_queries,
)

#: Score chunk for the exact backend: bounds the (chunk, n_items) GEMM.
EXACT_CHUNK = 256


class RetrievalBackend(Protocol):
    """What a candidate source must provide to plug into consumers."""

    backend_name: str

    @property
    def n_items(self) -> int: ...

    def search(
        self, queries: np.ndarray, k: int, nprobe: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]: ...


class ExactRetrieval:
    """Brute-force top-k over all items — baseline and recall reference."""

    backend_name = "exact"

    def __init__(
        self,
        item_vectors: np.ndarray,
        item_bias: Optional[np.ndarray] = None,
        metrics=NULL_METRICS,
    ):
        self._item_aug = augment_items(item_vectors, item_bias)
        self.metrics = metrics

    @property
    def n_items(self) -> int:
        return self._item_aug.shape[0]

    def search(
        self,
        queries: np.ndarray,
        k: int,
        nprobe: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact top-``k`` per query row; ``nprobe`` is accepted, unused."""
        q_aug = augment_queries(queries)
        batch = q_aug.shape[0]
        k = max(0, min(int(k), self.n_items))
        ids = np.full((batch, k), -1, dtype=np.int64)
        scores = np.full((batch, k), np.nan)
        if batch == 0 or k == 0:
            return ids, scores
        self.metrics.counter("retrieval_candidates_total").inc(
            int(batch * self.n_items)
        )
        for start in range(0, batch, EXACT_CHUNK):
            block = q_aug[start : start + EXACT_CHUNK]
            all_scores = block @ self._item_aug.T
            for offset in range(block.shape[0]):
                # Positions ARE item ids here, so the default tiebreak
                # matches the IVF candidate-id tiebreak exactly.
                top = top_k_select(all_scores[offset], k)
                ids[start + offset] = top
                scores[start + offset] = all_scores[offset, top]
        return ids, scores


class ModelRetrieval:
    """A backend plus the query-embedding table of the model it indexes.

    Item-to-item search uses the model's *context* embeddings as queries
    (a single-item context's user embedding is exactly its context row,
    see :meth:`~repro.models.bpr.BPRModel.context_weights`), so
    ``search_items`` reproduces what exact single-item-context scoring
    would rank — restricted to the probed lists.
    """

    def __init__(
        self,
        backend: RetrievalBackend,
        query_vectors: np.ndarray,
        model_number: int = -1,
    ):
        self.backend = backend
        self._query_vectors = query_vectors
        #: Registry model number the index was built from (for cache
        #: invalidation when a newer model wins the day's sweep).
        self.model_number = model_number

    @property
    def n_items(self) -> int:
        return self.backend.n_items

    @property
    def backend_name(self) -> str:
        return self.backend.backend_name

    @property
    def query_vectors(self) -> np.ndarray:
        return self._query_vectors

    @property
    def metrics(self):
        return self.backend.metrics

    @metrics.setter
    def metrics(self, registry) -> None:
        self.backend.metrics = registry

    def search_items(
        self,
        item_ids: np.ndarray,
        k: int,
        nprobe: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Neighbours of each seed item, ``(len(item_ids), k)`` padded."""
        items = np.asarray(item_ids, dtype=np.int64)
        if items.size and (
            items.min() < 0 or items.max() >= self._query_vectors.shape[0]
        ):
            raise RetrievalError(
                "item id out of range for the indexed catalog"
            )
        return self.backend.search(self._query_vectors[items], k, nprobe)

    def search_users(
        self,
        user_vectors: np.ndarray,
        k: int,
        nprobe: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Top items for pre-computed user embeddings (serving path)."""
        return self.backend.search(user_vectors, k, nprobe)


def _embedding_surface(model) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(phi_eff, bias, query table) for a model, or RetrievalError."""
    matrix_fn = getattr(model, "effective_item_matrix", None)
    queries = getattr(model, "context_embeddings", None)
    if matrix_fn is None or queries is None:
        raise RetrievalError(
            f"model {type(model).__name__} has no embedding surface to index"
        )
    bias = getattr(model, "item_bias", None)
    return matrix_fn(), bias, queries


def exact_for_model(model, metrics=NULL_METRICS) -> ModelRetrieval:
    """Exact backend over a trained model's effective item vectors."""
    vectors, bias, queries = _embedding_surface(model)
    backend = ExactRetrieval(vectors, bias, metrics=metrics)
    return ModelRetrieval(backend, queries, _model_number(model))


def ann_for_model(
    model,
    config: IVFConfig = IVFConfig(),
    metrics=NULL_METRICS,
) -> ModelRetrieval:
    """IVF index over a trained model's effective item vectors."""
    vectors, bias, queries = _embedding_surface(model)
    backend = IVFIndex.build(vectors, bias, config=config, metrics=metrics)
    return ModelRetrieval(backend, queries, _model_number(model))


def retrieval_for_model(
    model,
    threshold: int,
    config: IVFConfig = IVFConfig(),
    metrics=NULL_METRICS,
) -> ModelRetrieval:
    """ANN above ``threshold`` items, exact GEMM below (the size switch)."""
    if getattr(model, "n_items", 0) >= threshold:
        return ann_for_model(model, config=config, metrics=metrics)
    return exact_for_model(model, metrics=metrics)


def _model_number(model) -> int:
    return int(getattr(model, "model_number", -1))
