"""Co-view and co-buy counting over user histories.

``cv(i)`` — items co-viewed with ``i`` — counts pairs of items the same
user viewed (any event implies a view; stronger events are views too).
``cb(i)`` — items co-bought with ``i`` — counts pairs the same user
bought (conversion events), with carts included at reduced weight since
conversions alone are extremely sparse.

Counting is windowed per user history so that a pathological user with
thousands of events does not dominate the statistics.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Set, Tuple

from repro.data.events import EventType, Interaction
from repro.data.sessions import build_user_histories

#: Only pair items within this many steps of each other in one history.
DEFAULT_PAIR_WINDOW = 20

#: Cart events count toward co-buy at this weight (conversions count 1.0).
CART_BUY_WEIGHT = 0.5


class CoOccurrenceCounts:
    """Symmetric co-view / co-buy counts plus per-item marginals."""

    def __init__(self, n_items: int):
        self.n_items = n_items
        self._co_view: Dict[int, Counter] = defaultdict(Counter)
        self._co_buy: Dict[int, Counter] = defaultdict(Counter)
        self.view_counts: Counter = Counter()
        self.buy_counts: Counter = Counter()
        self.total_view_pairs = 0.0
        self.total_buy_pairs = 0.0
        # Lazily built full neighbour rankings (strongest first), so the
        # inference hot path does one sort per item ever instead of one
        # ``Counter.most_common`` re-sort per query.  Dropped whenever new
        # histories are counted.
        self._ranked_view: Dict[int, List[int]] = {}
        self._ranked_buy: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    @classmethod
    def from_interactions(
        cls,
        n_items: int,
        interactions: Iterable[Interaction],
        pair_window: int = DEFAULT_PAIR_WINDOW,
    ) -> "CoOccurrenceCounts":
        """Count co-occurrences across every user's (windowed) history."""
        counts = cls(n_items)
        histories = build_user_histories(interactions)
        for history in histories.values():
            counts._add_history(history, pair_window)
        return counts

    def _add_history(self, history: List[Interaction], pair_window: int) -> None:
        self._ranked_view.clear()
        self._ranked_buy.clear()
        viewed = [interaction.item_index for interaction in history]
        bought: List[Tuple[int, float]] = []
        for interaction in history:
            if interaction.event == EventType.CONVERSION:
                bought.append((interaction.item_index, 1.0))
            elif interaction.event == EventType.CART:
                bought.append((interaction.item_index, CART_BUY_WEIGHT))
        for item in viewed:
            self.view_counts[item] += 1
        for item, weight in bought:
            self.buy_counts[item] += weight
        self._add_pairs(self._co_view, [(v, 1.0) for v in viewed], pair_window, "view")
        self._add_pairs(self._co_buy, bought, pair_window, "buy")

    def _add_pairs(
        self,
        table: Dict[int, Counter],
        weighted_items: List[Tuple[int, float]],
        pair_window: int,
        kind: str,
    ) -> None:
        for position, (item_a, weight_a) in enumerate(weighted_items):
            stop = min(len(weighted_items), position + 1 + pair_window)
            for item_b, weight_b in weighted_items[position + 1 : stop]:
                if item_a == item_b:
                    continue
                weight = weight_a * weight_b
                table[item_a][item_b] += weight
                table[item_b][item_a] += weight
                if kind == "view":
                    self.total_view_pairs += weight
                else:
                    self.total_buy_pairs += weight

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def co_viewed(self, item_index: int) -> Counter:
        """All items co-viewed with ``item_index`` and their pair counts."""
        return self._co_view.get(item_index, Counter())

    def co_bought(self, item_index: int) -> Counter:
        """All items co-bought with ``item_index`` and their pair counts."""
        return self._co_buy.get(item_index, Counter())

    def top_co_viewed(self, item_index: int, k: int = 20) -> List[int]:
        """The ``cv(i)`` set, strongest pairs first."""
        return self._ranked(self._co_view, self._ranked_view, item_index)[:k]

    def top_co_bought(self, item_index: int, k: int = 20) -> List[int]:
        """The ``cb(i)`` set, strongest pairs first."""
        return self._ranked(self._co_buy, self._ranked_buy, item_index)[:k]

    def _ranked(
        self,
        table: Dict[int, Counter],
        cache: Dict[int, List[int]],
        item_index: int,
    ) -> List[int]:
        """Full neighbour ranking for one item, computed once and cached.

        ``sorted(..., key=count, reverse=True)`` is stable on ties exactly
        like ``Counter.most_common`` (both resolve equal counts in
        insertion order), so every prefix of the cached ranking matches
        what ``most_common(k)`` used to return.
        """
        ranked = cache.get(item_index)
        if ranked is None:
            neighbours = table.get(item_index)
            if not neighbours:
                ranked = []
            else:
                ranked = [
                    item
                    for item, _ in sorted(
                        neighbours.items(), key=lambda pair: pair[1], reverse=True
                    )
                ]
            cache[item_index] = ranked
        return ranked

    def strong_co_occurrence_sets(self, min_count: float = 2.0) -> Dict[int, Set[int]]:
        """Items too strongly related to ever use as negatives (section III-B3)."""
        strong: Dict[int, Set[int]] = {}
        for item, neighbours in self._co_view.items():
            chosen = {other for other, count in neighbours.items() if count >= min_count}
            if chosen:
                strong[item] = chosen
        for item, neighbours in self._co_buy.items():
            chosen = {other for other, count in neighbours.items() if count >= min_count}
            if chosen:
                strong.setdefault(item, set()).update(chosen)
        return strong
