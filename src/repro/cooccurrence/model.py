"""The co-occurrence recommender — Sigmund's head-item engine and baseline.

Given a user context, each context item votes for its co-occurring
neighbours; votes are weighted by PMI (popularity-normalized), by recency
in the context, and by the context event's strength.  Items with no
co-occurrence signal get a tiny popularity-based epsilon so ranking is
total.

This is both the Fig. 6 baseline ("a simple co-occurrence model") and the
component the hybrid policy uses for popular items.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.cooccurrence.counts import CoOccurrenceCounts
from repro.cooccurrence.pmi import pmi_table
from repro.data.events import EventType
from repro.data.sessions import UserContext
from repro.models.base import Recommender
from repro.models.bpr import EVENT_CONTEXT_WEIGHT


class CoOccurrenceModel(Recommender):
    """Context-weighted co-occurrence voting over co-view/co-buy neighbours.

    Two scoring modes:

    * ``"conditional"`` (default) — ``count(i, j) / count(i)``, the
      empirical next-item probability; this is the classic
      item-to-item CF estimator (Linden et al. [2]) and what production
      co-occurrence recommenders converge to with enough data.
    * ``"ppmi"`` — positive PMI weighted by pair-count reliability;
      popularity-normalized, useful when popularity is a confound.
    """

    def __init__(
        self,
        counts: CoOccurrenceCounts,
        use_buys: bool = False,
        recency_decay: float = 0.85,
        popularity_epsilon: float = 1e-6,
        scoring: str = "conditional",
    ):
        if scoring not in ("conditional", "ppmi"):
            raise ValueError(f"unknown scoring mode {scoring!r}")
        self.counts = counts
        self.n_items = counts.n_items
        self.use_buys = use_buys
        self.recency_decay = recency_decay
        self.popularity_epsilon = popularity_epsilon
        self.scoring = scoring
        self._vote_cache: Dict[int, Dict[int, float]] = {}
        total_views = sum(counts.view_counts.values()) or 1
        self._popularity = np.zeros(self.n_items)
        for item, count in counts.view_counts.items():
            self._popularity[item] = count / total_views

    def _neighbours(self, item_index: int) -> Dict[int, float]:
        cached = self._vote_cache.get(item_index)
        if cached is None:
            pair_counts = (
                self.counts.co_bought(item_index)
                if self.use_buys
                else self.counts.co_viewed(item_index)
            )
            if self.scoring == "conditional":
                marginal = max(
                    (self.counts.buy_counts if self.use_buys else self.counts.view_counts
                     ).get(item_index, 0.0),
                    1.0,
                )
                cached = {
                    other: count / marginal for other, count in pair_counts.items()
                }
            else:
                raw = pmi_table(self.counts, item_index, use_buys=self.use_buys)
                # Clip negative PMI (PPMI) and trust pairs with more data.
                cached = {
                    other: max(0.0, pmi)
                    * float(np.log1p(pair_counts.get(other, 0.0)))
                    for other, pmi in raw.items()
                }
            self._vote_cache[item_index] = cached
        return cached

    def context_scores(self, context: UserContext) -> Dict[int, float]:
        """Sparse vote tally: only items co-occurring with the context."""
        votes: Dict[int, float] = {}
        size = len(context)
        for position, (item, event) in enumerate(
            zip(context.item_indices, context.events)
        ):
            weight = (self.recency_decay ** (size - 1 - position)) * float(
                EVENT_CONTEXT_WEIGHT[EventType(event)]
            )
            for neighbour, pmi in self._neighbours(item).items():
                votes[neighbour] = votes.get(neighbour, 0.0) + weight * pmi
        return votes

    def score_items(
        self, context: UserContext, item_indices: Sequence[int]
    ) -> np.ndarray:
        votes = self.context_scores(context)
        items = np.asarray(list(item_indices), dtype=np.int64)
        scores = np.array([votes.get(int(i), 0.0) for i in items])
        # Popularity epsilon breaks ties among never-co-occurring items.
        return scores + self.popularity_epsilon * self._popularity[items]

    def coverage(self, min_neighbours: int = 1) -> float:
        """Fraction of items with at least ``min_neighbours`` co-occurrences.

        The paper's motivation for the hybrid: co-occurrence covers the
        head well but leaves much of the tail without recommendations.
        """
        table = self.counts._co_buy if self.use_buys else self.counts._co_view
        covered = sum(1 for item in range(self.n_items) if len(table.get(item, ())) >= min_neighbours)
        return covered / self.n_items if self.n_items else 0.0
