"""Item-item co-occurrence models (paper section III-E).

Co-occurrence/PMI recommenders are the simple, scalable industry
workhorse (Amazon item-to-item CF [2], YouTube [25]).  Sigmund uses them
two ways: as the production recommender for *popular* items (where data
is plentiful), and as the baseline that Fig. 6 compares against.  The
co-occurrence counts also feed candidate selection (``cv(i)``/``cb(i)``)
and the co-occurrence-excluding negative sampler.
"""

from repro.cooccurrence.counts import CoOccurrenceCounts
from repro.cooccurrence.model import CoOccurrenceModel
from repro.cooccurrence.pmi import pmi_score, pmi_table

__all__ = [
    "CoOccurrenceCounts",
    "CoOccurrenceModel",
    "pmi_score",
    "pmi_table",
]
