"""Pointwise mutual information scoring over co-occurrence counts.

PMI normalizes raw pair counts by item popularity so that "everything
co-occurs with the bestseller" does not dominate:

    pmi(i, j) = log( P(i, j) / (P(i) * P(j)) )

A small additive smoothing keeps rare pairs from exploding, which is the
standard industrial variant the paper's references use.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.cooccurrence.counts import CoOccurrenceCounts

#: Additive smoothing mass for marginals and pairs.
DEFAULT_SMOOTHING = 0.5


def pmi_score(
    counts: CoOccurrenceCounts,
    item_a: int,
    item_b: int,
    use_buys: bool = False,
    smoothing: float = DEFAULT_SMOOTHING,
) -> float:
    """Smoothed PMI between two items over the co-view (or co-buy) table."""
    if use_buys:
        pair = counts.co_bought(item_a).get(item_b, 0.0)
        total = max(counts.total_buy_pairs, 1.0)
        marginal_a = counts.buy_counts.get(item_a, 0.0)
        marginal_b = counts.buy_counts.get(item_b, 0.0)
    else:
        pair = counts.co_viewed(item_a).get(item_b, 0.0)
        total = max(counts.total_view_pairs, 1.0)
        marginal_a = counts.view_counts.get(item_a, 0.0)
        marginal_b = counts.view_counts.get(item_b, 0.0)
    numerator = (pair + smoothing) / (total + smoothing)
    denominator = ((marginal_a + smoothing) * (marginal_b + smoothing)) / (
        (total + smoothing) ** 2
    )
    return math.log(numerator / denominator)


def pmi_table(
    counts: CoOccurrenceCounts,
    item_index: int,
    use_buys: bool = False,
    smoothing: float = DEFAULT_SMOOTHING,
) -> Dict[int, float]:
    """PMI of ``item_index`` against every item it co-occurs with."""
    neighbours = (
        counts.co_bought(item_index) if use_buys else counts.co_viewed(item_index)
    )
    return {
        other: pmi_score(counts, item_index, other, use_buys=use_buys, smoothing=smoothing)
        for other in neighbours
    }
