"""Tests for SGD and Adagrad optimizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.optim import Adagrad, Sgd, make_optimizer


class TestSgd:
    def test_step_applies_learning_rate(self):
        param = np.zeros((3, 2))
        opt = Sgd(0.5)
        opt.register("p", param)
        opt.step("p", param, 1, np.array([2.0, -2.0]))
        assert np.allclose(param[1], [1.0, -1.0])
        assert np.allclose(param[0], 0.0)

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            Sgd(0.0)

    def test_stateless(self):
        assert Sgd(0.1).state_size_bytes() == 0


class TestAdagrad:
    def test_first_step_is_unit_scaled(self):
        """With an empty accumulator, step size is ~lr * sign(grad)."""
        param = np.zeros((1, 2))
        opt = Adagrad(0.1)
        opt.register("p", param)
        opt.step("p", param, 0, np.array([4.0, -9.0]))
        assert np.allclose(param[0], [0.1, -0.1], atol=1e-6)

    def test_repeated_updates_damp(self):
        """Hot rows cool down: the same gradient moves the row less later."""
        param = np.zeros((1, 1))
        opt = Adagrad(0.1)
        opt.register("p", param)
        opt.step("p", param, 0, np.array([1.0]))
        first_move = float(param[0, 0])
        before = float(param[0, 0])
        opt.step("p", param, 0, np.array([1.0]))
        second_move = float(param[0, 0]) - before
        assert second_move < first_move

    def test_rare_rows_keep_full_rate(self):
        """A row updated once still gets a near-full-rate step later —
        'relatively increases the rate for the rare items'."""
        param = np.zeros((2, 1))
        opt = Adagrad(0.1)
        opt.register("p", param)
        for _ in range(50):
            opt.step("p", param, 0, np.array([1.0]))
        before = param.copy()
        opt.step("p", param, 0, np.array([1.0]))
        opt.step("p", param, 1, np.array([1.0]))
        hot_move = param[0, 0] - before[0, 0]
        cold_move = param[1, 0] - before[1, 0]
        assert cold_move > 5 * hot_move

    def test_reset_norms(self):
        """Incremental runs reset the accumulated norms (section III-C3)."""
        param = np.zeros((1, 1))
        opt = Adagrad(0.1)
        opt.register("p", param)
        for _ in range(20):
            opt.step("p", param, 0, np.array([1.0]))
        assert opt.accumulated_norm("p") > 0
        opt.reset_norms()
        assert opt.accumulated_norm("p") == 0.0
        before = float(param[0, 0])
        opt.step("p", param, 0, np.array([1.0]))
        assert param[0, 0] - before == pytest.approx(0.1, abs=1e-6)

    def test_reregister_same_shape_keeps_state(self):
        param = np.zeros((2, 2))
        opt = Adagrad(0.1)
        opt.register("p", param)
        opt.step("p", param, 0, np.ones(2))
        opt.register("p", param)
        assert opt.accumulated_norm("p") > 0

    def test_reregister_shape_mismatch_rejected(self):
        opt = Adagrad(0.1)
        opt.register("p", np.zeros((2, 2)))
        with pytest.raises(ValueError):
            opt.register("p", np.zeros((3, 2)))

    def test_state_size(self):
        opt = Adagrad(0.1)
        opt.register("p", np.zeros((10, 4)))
        assert opt.state_size_bytes() == 10 * 4 * 8


class TestStepRows:
    """The batched row updater backing the vectorized training path."""

    def test_sgd_single_row_matches_step(self):
        a, b = np.zeros((4, 3)), np.zeros((4, 3))
        opt_a, opt_b = Sgd(0.3), Sgd(0.3)
        opt_a.register("p", a)
        opt_b.register("p", b)
        grad = np.array([1.0, -2.0, 0.5])
        opt_a.step("p", a, 2, grad)
        opt_b.step_rows("p", b, np.array([2]), grad[None, :])
        assert np.array_equal(a, b)

    def test_adagrad_single_row_matches_step(self):
        a, b = np.zeros((4, 3)), np.zeros((4, 3))
        opt_a, opt_b = Adagrad(0.3), Adagrad(0.3)
        opt_a.register("p", a)
        opt_b.register("p", b)
        for grad in (np.array([1.0, -2.0, 0.5]), np.array([0.2, 0.1, -3.0])):
            opt_a.step("p", a, 2, grad)
            opt_b.step_rows("p", b, np.array([2]), grad[None, :])
        assert np.allclose(a, b, atol=1e-15)
        assert opt_a.accumulated_norm("p") == pytest.approx(
            opt_b.accumulated_norm("p")
        )

    def test_sgd_duplicate_rows_sum(self):
        param = np.zeros((2, 1))
        opt = Sgd(1.0)
        opt.register("p", param)
        opt.step_rows(
            "p", param, np.array([0, 0]), np.array([[1.0], [2.0]])
        )
        assert param[0, 0] == pytest.approx(3.0)  # add.at, not last-write-wins

    def test_adagrad_duplicate_rows_accumulate_before_scaling(self):
        """Both occurrences of a duplicated row are damped by the full
        batch's squared mass — per-row adaptivity survives batching."""
        param = np.zeros((1, 1))
        opt = Adagrad(1.0, epsilon=0.0)
        opt.register("p", param)
        opt.step_rows("p", param, np.array([0, 0]), np.array([[3.0], [4.0]]))
        assert opt.accumulated_norm("p") == pytest.approx(25.0)
        assert param[0, 0] == pytest.approx((3.0 + 4.0) / 5.0)

    def test_step_rows_on_1d_bias(self):
        bias = np.zeros(5)
        opt = Adagrad(0.5)
        opt.register("b", bias)
        opt.step_rows("b", bias, np.array([1, 3]), np.array([2.0, -2.0]))
        assert bias[1] > 0 and bias[3] < 0
        assert bias[0] == bias[2] == bias[4] == 0.0


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_optimizer("sgd", 0.1), Sgd)
        assert isinstance(make_optimizer("adagrad", 0.1), Adagrad)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_optimizer("adam", 0.1)
