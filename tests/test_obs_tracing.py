"""The simulated-clock tracer: deterministic spans, replayable traces.

The headline contract: two identically-seeded fleets run with tracing
enabled produce *byte-identical* span trees — traces are artifacts of
the program's control flow and the simulated clock alone, never of wall
time.  (Traces of crashed-then-recovered runs legitimately differ —
recovery skips journaled work — so determinism is asserted across fresh
reruns only; metric parity under crashes lives in
``tests/test_crash_recovery.py``.)
"""

from __future__ import annotations

import json

import pytest

from repro import build_cluster
from repro.cluster.clock import SimClock
from repro.core.grid import GridSpec
from repro.core.service import SigmundService
from repro.core.training import TrainerSettings
from repro.data.datasets import dataset_from_synthetic
from repro.data.generator import RetailerSpec, generate_retailer
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_TRACER, NullTracer, Tracer

FAST_SETTINGS = TrainerSettings(
    max_epochs_full=2, max_epochs_incremental=1, sampler="uniform"
)

TINY_GRID = GridSpec(
    n_factors=(4,),
    learning_rates=(0.05,),
    reg_items=(0.01,),
    reg_contexts=(0.01,),
    use_taxonomy=(False,),
    use_brand=(False,),
    use_price=(False,),
    max_configs=2,
)


def make_traced_service() -> SigmundService:
    service = SigmundService(
        build_cluster(n_cells=2, machines_per_cell=4),
        grid=TINY_GRID,
        settings=FAST_SETTINGS,
        metrics=MetricsRegistry(),
        tracer=Tracer(),
    )
    for i in range(2):
        service.onboard(
            dataset_from_synthetic(
                generate_retailer(
                    RetailerSpec(
                        retailer_id=f"r{i}",
                        n_items=40,
                        n_users=25,
                        n_events=260,
                        taxonomy_depth=2,
                        taxonomy_fanout=3,
                        seed=100 + i,
                    )
                )
            )
        )
    return service


# ----------------------------------------------------------------------
# Span mechanics
# ----------------------------------------------------------------------
class TestSpanMechanics:
    def test_nesting_gives_parentage(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("outer") as outer:
            clock.advance(1.0)
            with tracer.span("inner", kind="x") as inner:
                clock.advance(2.0)
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert (inner.start, inner.end) == (1.0, 3.0)
        assert (outer.start, outer.end) == (0.0, 3.0)
        assert outer.duration == 3.0
        assert inner.attrs == {"kind": "x"}

    def test_span_ids_sequential_in_open_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        ids = {s["name"]: s["span_id"] for s in tracer.to_dict()}
        assert ids == {"a": 0, "b": 1, "c": 2}

    def test_record_span_parents_under_open_span(self):
        tracer = Tracer()
        with tracer.span("phase") as phase:
            recorded = tracer.record_span("task", 5.0, 9.0, cell="cell-0")
        assert recorded.parent_id == phase.span_id
        assert (recorded.start, recorded.end) == (5.0, 9.0)
        assert recorded.attrs == {"cell": "cell-0"}
        root = tracer.record_span("orphan", 0.0, 1.0)
        assert root.parent_id is None

    def test_span_set_attaches_attrs(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            span.set("count", 3)
        assert tracer.find("s")[0].attrs == {"count": 3}

    def test_find_children_and_tree(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                tracer.record_span("leaf", 0.0, 1.0)
        (root,) = tracer.find("root")
        (child,) = tracer.find("child")
        assert [s.name for s in tracer.children_of(root.span_id)] == ["child"]
        assert [s.name for s in tracer.children_of(None)] == ["root"]
        tree = tracer.span_tree()
        assert [(depth, s.name) for depth, s in tree] == [
            (0, "root"), (1, "child"), (2, "leaf"),
        ]

    def test_to_dict_sorted_by_id_with_sorted_attrs(self):
        tracer = Tracer()
        tracer.record_span("z", 0.0, 1.0, b=2, a=1)
        data = tracer.to_dict()
        assert list(data[0]["attrs"].keys()) == ["a", "b"]
        assert json.dumps(data)  # plain data, JSON-serializable


# ----------------------------------------------------------------------
# Null tracer
# ----------------------------------------------------------------------
class TestNullTracer:
    def test_inert_and_reusable(self):
        tracer = NullTracer()
        first = tracer.span("a", x=1)
        second = tracer.span("b")
        assert first is second  # one shared context, no allocation per span
        with first as span:
            span.set("k", "v")
        assert tracer.spans == []
        assert tracer.record_span("c", 0.0, 1.0) is None
        assert tracer.enabled is False
        assert tracer.clock is None

    def test_shared_singleton(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything"):
            pass
        assert NULL_TRACER.spans == []


# ----------------------------------------------------------------------
# Trace determinism over a full service day
# ----------------------------------------------------------------------
class TestServiceTraceDeterminism:
    def test_identical_reruns_produce_byte_identical_traces(self):
        traces = []
        for _ in range(2):
            service = make_traced_service()
            service.run_day()
            traces.append(json.dumps(service.tracer.to_dict(), sort_keys=True))
        assert traces[0] == traces[1]

    def test_day_trace_has_expected_phase_structure(self):
        service = make_traced_service()
        service.run_day()
        tracer = service.tracer
        (run_day,) = tracer.find("run_day")
        assert run_day.attrs["day"] == 0
        assert run_day.attrs["sweep_kind"] == "full"
        phase_names = [
            s.name for s in tracer.children_of(run_day.span_id)
        ]
        assert phase_names == [
            "train_phase", "retrieval_phase", "inference_phase",
            "publish_phase", "wrapup",
        ]
        # Per-retailer training spans sit under the train phase...
        (train_phase,) = tracer.find("train_phase")
        retailers = {
            s.attrs["retailer"]
            for s in tracer.children_of(train_phase.span_id)
            if s.name == "train_retailer"
        }
        assert retailers == {"r0", "r1"}
        # ...and the runtime emitted per-task spans beneath the day.
        assert tracer.find("map_task")
        assert tracer.find("infer_cell")
        # The simulated clock moved past the phases' makespans.
        assert tracer.clock.now > 0.0
        assert run_day.duration == pytest.approx(tracer.clock.now)

    def test_train_retailer_spans_cover_their_makespans(self):
        service = make_traced_service()
        service.run_day()
        tracer = service.tracer
        seal = service.journal.day_seal(0)
        for span in tracer.find("train_retailer"):
            rid = span.attrs["retailer"]
            makespan = seal["retailers"][rid]["train_makespan_seconds"]
            assert makespan > 0.0
            assert span.duration == pytest.approx(makespan)

    def test_disabled_tracer_leaves_clock_untouched(self):
        service = SigmundService(
            build_cluster(n_cells=2, machines_per_cell=4),
            grid=TINY_GRID,
            settings=FAST_SETTINGS,
        )
        service.onboard(
            dataset_from_synthetic(
                generate_retailer(
                    RetailerSpec(
                        retailer_id="r0", n_items=40, n_users=25,
                        n_events=260, seed=100,
                    )
                )
            )
        )
        service.run_day()
        assert service.tracer.spans == []
