"""Tests for day-over-day retailer evolution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import dataset_from_synthetic
from repro.data.evolution import EvolutionSpec, evolve_for_days, evolve_retailer
from repro.data.generator import RetailerSpec, generate_retailer
from repro.exceptions import DataError
from repro.models.bpr import BPRHyperParams, BPRModel


@pytest.fixture(scope="module")
def day0():
    return generate_retailer(
        RetailerSpec(retailer_id="evo", n_items=100, n_users=60,
                     n_events=800, seed=4)
    )


class TestEvolutionSpec:
    def test_negative_rates_rejected(self):
        with pytest.raises(DataError):
            EvolutionSpec(new_item_rate=-0.1)
        with pytest.raises(DataError):
            EvolutionSpec(daily_event_fraction=-1.0)


class TestEvolveRetailer:
    def test_items_are_appended_never_renumbered(self, day0):
        day1 = evolve_retailer(day0, day=1)
        assert day1.n_items > day0.n_items
        for index in range(day0.n_items):
            assert day1.catalog[index].item_id == day0.catalog[index].item_id
            assert (
                day1.catalog[index].category_id
                == day0.catalog[index].category_id
            )

    def test_old_snapshot_frozen(self, day0):
        before_items = day0.taxonomy.num_items
        before_events = len(day0.interactions)
        evolve_retailer(day0, day=1)
        assert day0.taxonomy.num_items == before_items
        assert len(day0.interactions) == before_events

    def test_interactions_cumulative_and_ordered(self, day0):
        day1 = evolve_retailer(day0, day=1)
        assert day1.interactions[: len(day0.interactions)] == day0.interactions
        old_max = max(it.timestamp for it in day0.interactions)
        new_events = day1.interactions[len(day0.interactions):]
        assert new_events, "a day must add interactions"
        assert min(it.timestamp for it in new_events) > old_max

    def test_new_items_get_ground_truth(self, day0):
        day1 = evolve_retailer(day0, day=1)
        assert day1.true_item_vectors.shape[0] == day1.n_items
        assert day1.item_popularity.shape[0] == day1.n_items
        assert day1.item_popularity.sum() == pytest.approx(1.0)
        # Old items keep their vectors.
        assert np.array_equal(
            day1.true_item_vectors[: day0.n_items], day0.true_item_vectors
        )

    def test_new_users_join(self, day0):
        day1 = evolve_retailer(
            day0, day=1, evolution=EvolutionSpec(new_user_rate=0.2)
        )
        assert day1.n_users > day0.n_users
        new_user = day1.n_users - 1
        assert new_user in day1.user_brand_affinity or (
            day1.user_brand_affinity.get(new_user) is None
        )
        assert day1.user_price_sensitivity.shape[0] == day1.n_users

    def test_price_drift(self, day0):
        evolution = EvolutionSpec(price_change_rate=1.0, new_item_rate=0.0)
        day1 = evolve_retailer(day0, day=1, evolution=evolution)
        changed = sum(
            1
            for old, new in zip(day0.catalog, day1.catalog)
            if old.price is not None and new.price != old.price
        )
        assert changed > day0.n_items * 0.5

    def test_deterministic(self, day0):
        a = evolve_retailer(day0, day=1)
        b = evolve_retailer(day0, day=1)
        assert len(a.interactions) == len(b.interactions)
        assert a.n_items == b.n_items
        assert all(
            x.item_index == y.item_index
            for x, y in zip(a.interactions, b.interactions)
        )

    def test_different_days_differ(self, day0):
        day1 = evolve_retailer(day0, day=1)
        day1_alt = evolve_retailer(day0, day=2)
        tail_a = day1.interactions[len(day0.interactions):]
        tail_b = day1_alt.interactions[len(day0.interactions):]
        assert [it.item_index for it in tail_a] != [it.item_index for it in tail_b]

    def test_zero_churn(self, day0):
        evolution = EvolutionSpec(
            new_item_rate=0.0, new_user_rate=0.0, price_change_rate=0.0
        )
        day1 = evolve_retailer(day0, day=1, evolution=evolution)
        assert day1.n_items == day0.n_items
        assert day1.n_users == day0.n_users
        assert len(day1.interactions) > len(day0.interactions)


class TestMultiDay:
    def test_evolve_for_days_monotone_growth(self, day0):
        states = evolve_for_days(day0, 3)
        sizes = [day0.n_items] + [s.n_items for s in states]
        assert sizes == sorted(sizes)
        events = [len(day0.interactions)] + [len(s.interactions) for s in states]
        assert all(a < b for a, b in zip(events, events[1:]))

    def test_warm_start_across_evolution(self, day0):
        """Yesterday's model warm-starts today's grown catalog: old rows
        transfer, new items keep fresh init — the incremental invariant."""
        day1 = evolve_retailer(day0, day=1)
        old_ds = dataset_from_synthetic(day0)
        new_ds = dataset_from_synthetic(day1)
        params = BPRHyperParams(n_factors=6, seed=3)
        old_model = BPRModel(old_ds.catalog, old_ds.taxonomy, params)
        old_model.item_embeddings[:] = 7.0  # sentinel
        new_model = BPRModel(new_ds.catalog, new_ds.taxonomy, params)
        copied = new_model.warm_start_from(old_model)
        assert copied == day0.n_items
        assert np.all(new_model.item_embeddings[: day0.n_items] == 7.0)
        assert not np.all(new_model.item_embeddings[day0.n_items :] == 7.0)

    def test_dataset_round_trip(self, day0):
        day2 = evolve_for_days(day0, 2)[-1]
        dataset = dataset_from_synthetic(day2)
        assert dataset.n_items == day2.n_items
        assert dataset.holdout, "evolved retailer still yields a holdout"
