"""Tests for the inference pipeline and the head/tail hybrid."""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_cluster
from repro.cooccurrence.counts import CoOccurrenceCounts
from repro.cooccurrence.model import CoOccurrenceModel
from repro.core.config import ConfigRecord, OutputConfigRecord
from repro.core.hybrid import HybridRecommender
from repro.core.inference import InferencePipeline
from repro.core.registry import ModelRegistry, TrainedModel
from repro.data.events import EventType
from repro.data.sessions import UserContext


def ctx(*items) -> UserContext:
    return UserContext(tuple(items), tuple(EventType.VIEW for _ in items))


@pytest.fixture(scope="module")
def registry_with_model(small_dataset, trained_model):
    registry = ModelRegistry()
    registry.publish(
        TrainedModel(
            model=trained_model,
            output=OutputConfigRecord(
                config=ConfigRecord(
                    small_dataset.retailer_id, 0, trained_model.params
                ),
                metrics={"map@10": 0.5},
            ),
        )
    )
    return registry


class TestInferencePipeline:
    def test_materializes_recommendations(self, small_dataset, registry_with_model):
        pipeline = InferencePipeline(
            build_cluster(n_cells=1, machines_per_cell=4),
            registry_with_model,
            top_n=5,
        )
        results, stats = pipeline.run({small_dataset.retailer_id: small_dataset})
        result = results[small_dataset.retailer_id]
        assert len(result.view_recs) == small_dataset.n_items
        assert stats.items_processed == small_dataset.n_items
        assert stats.total_cost > 0
        # Every item's recs are at most top_n, never include itself.
        for item, recs in result.view_recs.items():
            assert len(recs) <= 5
            assert all(r.item_index != item for r in recs)

    def test_coverage_reported(self, small_dataset, registry_with_model):
        pipeline = InferencePipeline(
            build_cluster(n_cells=1, machines_per_cell=2),
            registry_with_model,
            top_n=5,
        )
        results, _ = pipeline.run({small_dataset.retailer_id: small_dataset})
        result = results[small_dataset.retailer_id]
        assert 0.5 < result.coverage(small_dataset.n_items) <= 1.0

    def test_skips_retailers_without_models(self, small_dataset, tiny_dataset,
                                            registry_with_model):
        pipeline = InferencePipeline(
            build_cluster(n_cells=1, machines_per_cell=2),
            registry_with_model,
        )
        results, _ = pipeline.run(
            {
                small_dataset.retailer_id: small_dataset,
                tiny_dataset.retailer_id: tiny_dataset,  # no model trained
            }
        )
        assert tiny_dataset.retailer_id not in results
        assert small_dataset.retailer_id in results

    def test_model_loads_bounded_by_contiguity(self, small_dataset,
                                               registry_with_model):
        """Contiguous-by-retailer splits mean loads ~ number of splits a
        retailer straddles, not number of items (section IV-C2)."""
        pipeline = InferencePipeline(
            build_cluster(n_cells=1, machines_per_cell=4),
            registry_with_model,
            workers_per_cell=4,
        )
        _, stats = pipeline.run({small_dataset.retailer_id: small_dataset})
        assert stats.model_loads <= 4  # never per-item

    def test_purchase_recs_distinct_surface(self, small_dataset,
                                            registry_with_model):
        pipeline = InferencePipeline(
            build_cluster(n_cells=1, machines_per_cell=2),
            registry_with_model,
            top_n=5,
        )
        results, _ = pipeline.run({small_dataset.retailer_id: small_dataset})
        result = results[small_dataset.retailer_id]
        assert len(result.purchase_recs) == small_dataset.n_items
        differing = sum(
            1
            for item in result.view_recs
            if [r.item_index for r in result.view_recs[item]]
            != [r.item_index for r in result.purchase_recs[item]]
        )
        assert differing > small_dataset.n_items * 0.3


class TestHybrid:
    @pytest.fixture(scope="class")
    def components(self, small_dataset, trained_model):
        counts = CoOccurrenceCounts.from_interactions(
            small_dataset.n_items, small_dataset.train
        )
        cooc = CoOccurrenceModel(counts)
        hybrid = HybridRecommender(trained_model, cooc, min_support=2.0)
        return cooc, hybrid

    def test_mismatched_catalogs_rejected(self, trained_model, tiny_dataset):
        counts = CoOccurrenceCounts.from_interactions(
            tiny_dataset.n_items, tiny_dataset.train
        )
        with pytest.raises(ValueError):
            HybridRecommender(trained_model, CoOccurrenceModel(counts))

    def test_supported_items_ranked_by_cooccurrence(self, components,
                                                    small_dataset):
        cooc, hybrid = components
        # Find a context item with strong co-occurrence support.
        counts = cooc.counts
        source = max(
            range(small_dataset.n_items),
            key=lambda i: max(counts.co_viewed(i).values(), default=0),
        )
        context = ctx(source)
        recs = hybrid.recommend(context, k=5)
        assert recs, "head context must produce recommendations"
        top = recs[0].item_index
        assert hybrid.source_of(context, top) == "cooccurrence"

    def test_tail_context_falls_back_to_mf(self, components, small_dataset):
        cooc, hybrid = components
        lonely = [
            i
            for i in range(small_dataset.n_items)
            if not cooc.counts.co_viewed(i)
        ]
        if not lonely:
            pytest.skip("every item has co-view data in this fixture")
        context = ctx(lonely[0])
        recs = hybrid.recommend(context, k=5)
        assert recs
        assert all(
            hybrid.source_of(context, r.item_index) == "factorization"
            for r in recs
        )

    def test_score_items_shape_and_finiteness(self, components):
        _, hybrid = components
        scores = hybrid.score_items(ctx(0, 1), range(hybrid.n_items))
        assert scores.shape == (hybrid.n_items,)
        assert np.all(np.isfinite(scores))

    def test_recommend_excludes_context(self, components):
        _, hybrid = components
        recs = hybrid.recommend(ctx(3, 4), k=10)
        assert all(r.item_index not in (3, 4) for r in recs)

    def test_hybrid_covers_more_than_cooccurrence(self, components,
                                                  small_dataset):
        """The conclusion's claim: hybrid covers more inventory with
        non-trivial recommendations than co-occurrence alone."""
        cooc, hybrid = components
        cooc_covered = hybrid_covered = 0
        for item in range(small_dataset.n_items):
            context = ctx(item)
            votes = cooc.context_scores(context)
            if votes:
                cooc_covered += 1
            if hybrid.recommend(context, k=3):
                hybrid_covered += 1
        assert hybrid_covered >= cooc_covered
        assert hybrid_covered == small_dataset.n_items
