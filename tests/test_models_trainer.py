"""Tests for the BPR training loop and example construction."""

from __future__ import annotations

import pytest

from repro.data.datasets import RetailerDataset
from repro.data.events import EventType, Interaction
from repro.data.split import leave_last_out_split
from repro.exceptions import DataError
from repro.models.bpr import BPRHyperParams, BPRModel
from repro.models.trainer import BPRTrainer


def make_dataset(interactions, retailer) -> RetailerDataset:
    split = leave_last_out_split(interactions)
    return RetailerDataset(
        retailer_id=retailer.retailer_id,
        catalog=retailer.catalog,
        taxonomy=retailer.taxonomy,
        train=split.train,
        holdout=split.holdout,
    )


class TestExampleConstruction:
    def test_examples_cover_context_windows(self, small_dataset, fresh_model):
        trainer = BPRTrainer(fresh_model, small_dataset, strength_constraints=False)
        histories = small_dataset.train_histories()
        expected = sum(max(0, len(h) - 1) for h in histories.values())
        assert trainer.n_examples == expected

    def test_strength_constraints_add_examples(self, small_dataset, fresh_model):
        plain = BPRTrainer(fresh_model, small_dataset, strength_constraints=False)
        with_constraints = BPRTrainer(
            fresh_model, small_dataset, strength_constraints=True
        )
        assert with_constraints.n_examples > plain.n_examples

    def test_strength_constraint_negative_is_weaker_item(self, tiny_retailer):
        """The explicit negative of a searched item must be an item the
        same user touched with a strictly weaker event."""
        interactions = [
            Interaction(0.0, 1, 0, EventType.VIEW),
            Interaction(1.0, 1, 1, EventType.VIEW),
            Interaction(2.0, 1, 2, EventType.SEARCH),
            # A trailing view so the leave-last-out split holds THIS one
            # out and the search event stays in the training data.
            Interaction(3.0, 1, 3, EventType.VIEW),
        ]
        dataset = make_dataset(interactions, tiny_retailer)
        model = BPRModel(
            dataset.catalog, dataset.taxonomy, BPRHyperParams(n_factors=4)
        )
        trainer = BPRTrainer(model, dataset, strength_constraints=True)
        explicit = [e for e in trainer.examples if e.negative is not None]
        assert explicit, "a search>view constraint example should exist"
        for example in explicit:
            assert example.positive == 2
            assert example.negative in {0, 1}

    def test_retailer_mismatch_rejected(self, small_dataset, tiny_dataset):
        model = BPRModel(
            tiny_dataset.catalog, tiny_dataset.taxonomy, BPRHyperParams(n_factors=4)
        )
        with pytest.raises(DataError):
            BPRTrainer(model, small_dataset)


class TestTrainingLoop:
    def test_loss_decreases(self, small_dataset):
        model = BPRModel(
            small_dataset.catalog, small_dataset.taxonomy,
            BPRHyperParams(n_factors=8, learning_rate=0.08, seed=1),
        )
        trainer = BPRTrainer(model, small_dataset, max_epochs=5, seed=2)
        report = trainer.train()
        assert report.epochs_run >= 2
        assert report.epoch_losses[-1] < report.epoch_losses[0]

    def test_early_stopping(self, small_dataset):
        """A huge tolerance makes every epoch 'stale' -> stop at patience."""
        model = BPRModel(
            small_dataset.catalog, small_dataset.taxonomy,
            BPRHyperParams(n_factors=4, seed=5),
        )
        trainer = BPRTrainer(
            model, small_dataset, max_epochs=50, convergence_tol=10.0, patience=2
        )
        report = trainer.train()
        assert report.epochs_run <= 4
        assert report.converged

    def test_reports_steps(self, small_dataset, fresh_model):
        trainer = BPRTrainer(fresh_model, small_dataset, max_epochs=2,
                             convergence_tol=0.0)
        report = trainer.train()
        assert report.sgd_steps == report.epochs_run * trainer.n_examples

    def test_deterministic_given_seed(self, small_dataset, default_params):
        import numpy as np

        def run():
            model = BPRModel(
                small_dataset.catalog, small_dataset.taxonomy, default_params
            )
            BPRTrainer(model, small_dataset, max_epochs=2, seed=77).train()
            return model.item_embeddings.copy()

        assert np.array_equal(run(), run())

    def test_empty_dataset_trains_trivially(self, tiny_retailer):
        dataset = make_dataset([], tiny_retailer)
        model = BPRModel(
            dataset.catalog, dataset.taxonomy, BPRHyperParams(n_factors=4)
        )
        trainer = BPRTrainer(model, dataset, max_epochs=3)
        report = trainer.train()
        assert trainer.n_examples == 0
        assert report.final_loss == 0.0

    def test_empty_examples_short_circuit(self, tiny_retailer):
        """Regression: an empty example list must not spin through all
        max_epochs — one trivial epoch, reported as converged."""
        dataset = make_dataset([], tiny_retailer)
        model = BPRModel(
            dataset.catalog, dataset.taxonomy, BPRHyperParams(n_factors=4)
        )
        trainer = BPRTrainer(model, dataset, max_epochs=50)
        epochs = list(trainer.iter_epochs())
        assert epochs == [(0, 0.0)]
        assert trainer.converged
        report = trainer.train()
        assert report.epochs_run == 1
        assert report.converged

    def test_converged_on_final_epoch_is_reported(self, small_dataset):
        """Regression: hitting the convergence criterion exactly on the
        last allowed epoch used to be misreported as not-converged by the
        old ``epochs_run < max_epochs`` inference."""
        model = BPRModel(
            small_dataset.catalog, small_dataset.taxonomy,
            BPRHyperParams(n_factors=4, seed=5),
        )
        # tol=inf makes every epoch stale: stale reaches patience=2 right
        # after the third epoch — exactly max_epochs.
        trainer = BPRTrainer(
            model, small_dataset, max_epochs=3, convergence_tol=float("inf"),
            patience=2,
        )
        report = trainer.train()
        assert report.epochs_run == 3
        assert report.converged

    def test_zero_loss_epochs_converge(self, small_dataset, fresh_model,
                                       monkeypatch):
        """Regression: at loss 0.0 the old ``previous > 0`` guard froze
        ``stale`` forever and the loop ran all max_epochs."""
        trainer = BPRTrainer(fresh_model, small_dataset, max_epochs=50, patience=2)
        monkeypatch.setattr(trainer, "run_epoch", lambda: 0.0)
        epochs = list(trainer.iter_epochs())
        assert len(epochs) == 3  # first epoch + patience stale epochs
        assert trainer.converged

    def test_not_converged_when_budget_exhausted(self, small_dataset):
        """A run that stops only because max_epochs ran out is not converged."""
        model = BPRModel(
            small_dataset.catalog, small_dataset.taxonomy,
            BPRHyperParams(n_factors=4, seed=5),
        )
        trainer = BPRTrainer(
            model, small_dataset, max_epochs=2, convergence_tol=0.0, patience=2
        )
        report = trainer.train()
        assert report.epochs_run == 2
        assert not report.converged
