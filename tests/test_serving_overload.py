"""Tests for the overload-protection layer (admission, breakers, deadlines)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.events import EventType
from repro.data.sessions import UserContext
from repro.exceptions import ServingError
from repro.models.base import ScoredItem
from repro.obs import MetricsRegistry
from repro.serving.cluster import FAILOVER_PENALTY_MS, ServingCluster
from repro.serving.frontend import PopularityFallback, ServingFrontend
from repro.serving.overload import (
    SHED_LATENCY_MS,
    AdmissionController,
    BreakerBoard,
    CircuitBreaker,
    DeadlinePolicy,
    OverloadProtection,
    ServerQueue,
    TokenBucket,
)

N_ITEMS = 60


def table(n_items: int = N_ITEMS, n_recs: int = 5):
    return {
        item: [
            ScoredItem((item + j + 1) % n_items, float(n_items - item - j))
            for j in range(n_recs)
        ]
        for item in range(n_items)
    }


def make_cluster(**kwargs) -> ServingCluster:
    defaults = dict(n_nodes=4, n_shards=16, replication=2, hot_fraction=0.2)
    defaults.update(kwargs)
    return ServingCluster(**defaults)


def make_fallback(retailers=("shop",)) -> PopularityFallback:
    fallback = PopularityFallback()
    for rid in retailers:
        fallback.load_view_counts(
            rid, {i: float(N_ITEMS - i) for i in range(N_ITEMS)}
        )
    return fallback


def ctx(*items, event=EventType.VIEW) -> UserContext:
    return UserContext(tuple(items), tuple(event for _ in items))


class TestTokenBucket:
    def test_burst_then_dry(self):
        bucket = TokenBucket(rate_per_s=1_000.0, burst=3.0)
        assert all(bucket.try_acquire(0.0) for _ in range(3))
        assert not bucket.try_acquire(0.0)

    def test_refills_with_simulated_time(self):
        bucket = TokenBucket(rate_per_s=1_000.0, burst=2.0)
        bucket.try_acquire(0.0)
        bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)
        assert bucket.try_acquire(1.0)  # 1ms at 1000/s = 1 token back

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate_per_s=1_000.0, burst=2.0)
        assert bucket.fill_fraction(10_000.0) == 1.0

    def test_validation(self):
        with pytest.raises(ServingError):
            TokenBucket(rate_per_s=0.0, burst=1.0)
        with pytest.raises(ServingError):
            TokenBucket(rate_per_s=1.0, burst=0.0)


class TestAdmissionController:
    def test_admits_within_rate(self):
        admission = AdmissionController(rate_per_s=1_000.0, burst=10.0)
        decision = admission.admit(0.0)
        assert decision.admitted and decision.reason == "ok"

    def test_sheds_everyone_when_dry(self):
        admission = AdmissionController(rate_per_s=1.0, burst=2.0)
        admission.admit(0.0)
        admission.admit(0.0)
        decision = admission.admit(0.0)
        assert not decision.admitted and decision.reason == "shed_overload"

    def test_low_priority_sheds_at_watermark(self):
        admission = AdmissionController(
            rate_per_s=1.0, burst=10.0, shed_low_watermark=0.5
        )
        for _ in range(6):  # drain below the 50% watermark
            admission.admit(0.0)
        low = admission.admit(0.0, priority="low")
        assert not low.admitted and low.reason == "shed_low"
        normal = admission.admit(0.0, priority="normal")
        assert normal.admitted

    def test_over_rate_client_sheds_outright(self):
        admission = AdmissionController(
            rate_per_s=10_000.0, burst=100.0,
            client_rate_per_s=1_000.0, client_burst=2.0,
        )
        assert admission.admit(0.0, client_id="bot").admitted
        assert admission.admit(0.0, client_id="bot").admitted
        third = admission.admit(0.0, client_id="bot")
        assert not third.admitted and third.reason == "client_rate"
        # An innocent client is untouched by the abuser's bucket.
        assert admission.admit(0.0, client_id="user").admitted

    def test_high_priority_immune_to_client_demotion(self):
        admission = AdmissionController(
            rate_per_s=10_000.0, burst=100.0,
            client_rate_per_s=1_000.0, client_burst=1.0,
        )
        admission.admit(0.0, client_id="ops")
        decision = admission.admit(0.0, client_id="ops", priority="high")
        assert decision.admitted

    def test_unknown_priority_raises(self):
        admission = AdmissionController(rate_per_s=1.0, burst=1.0)
        with pytest.raises(ServingError):
            admission.admit(0.0, priority="urgent")


class TestCircuitBreaker:
    def make(self, **kwargs) -> CircuitBreaker:
        defaults = dict(
            window=8, failure_threshold=0.5, min_samples=4, cooldown_ms=100.0
        )
        defaults.update(kwargs)
        return CircuitBreaker(**defaults)

    def test_trips_at_failure_threshold(self):
        breaker = self.make()
        for _ in range(4):
            breaker.record_failure(0.0)
        assert breaker.state(0.0) == "open"
        assert not breaker.allow(0.0)

    def test_needs_min_samples_before_tripping(self):
        breaker = self.make()
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        assert breaker.state(0.0) == "closed"

    def test_successes_dilute_failures(self):
        breaker = self.make()
        for _ in range(6):
            breaker.record_success(0.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        assert breaker.state(0.0) == "closed"  # 2/8 < 0.5

    def test_half_open_after_cooldown_probe_success_closes(self):
        breaker = self.make()
        for _ in range(4):
            breaker.record_failure(0.0)
        assert not breaker.allow(50.0)  # still cooling down
        assert breaker.state(100.0) == "half_open"
        assert breaker.allow(100.0)  # the probe
        assert not breaker.allow(100.0)  # only one probe at a time
        breaker.record_success(100.0)
        assert breaker.state(100.0) == "closed"
        assert breaker.allow(100.0)

    def test_half_open_probe_failure_reopens(self):
        breaker = self.make()
        for _ in range(4):
            breaker.record_failure(0.0)
        assert breaker.allow(100.0)
        breaker.record_failure(100.0)
        assert breaker.state(100.0) == "open"
        assert breaker.state(150.0) == "open"  # fresh cooldown from 100
        assert breaker.state(200.0) == "half_open"

    def test_transitions_recorded(self):
        breaker = self.make()
        for _ in range(4):
            breaker.record_failure(0.0)
        breaker.allow(100.0)
        breaker.record_success(100.0)
        assert breaker.transitions == [
            ("closed", "open"), ("open", "half_open"), ("half_open", "closed")
        ]


class TestBreakerBoard:
    def test_per_node_isolation(self):
        board = BreakerBoard(window=4, min_samples=2, failure_threshold=0.5)
        for _ in range(2):
            board.record_failure(0, 0.0)
        assert not board.allow(0, 0.0)
        assert board.allow(1, 0.0)

    def test_transition_callback_carries_node_id(self):
        seen = []
        board = BreakerBoard(window=4, min_samples=2, failure_threshold=0.5)
        board.on_transition = lambda node, old, new: seen.append((node, old, new))
        board.record_failure(3, 0.0)
        board.record_failure(3, 0.0)
        assert seen == [(3, "closed", "open")]
        assert board.transition_count() == 1


class TestServerQueue:
    def test_no_wait_when_idle(self):
        queue = ServerQueue(n_servers=2)
        assert queue.wait_time(0.0) == 0.0
        assert queue.occupy(0.0, 5.0) == 0.0

    def test_backlog_builds_past_capacity(self):
        queue = ServerQueue(n_servers=1)
        assert queue.occupy(0.0, 10.0) == 0.0
        wait = queue.occupy(0.0, 10.0)
        assert wait == 10.0
        assert queue.wait_time(0.0) == 20.0
        assert queue.max_wait_ms == 10.0

    def test_wait_time_matches_occupy_charge(self):
        queue = ServerQueue(n_servers=2)
        queue.occupy(0.0, 4.0)
        queue.occupy(0.0, 6.0)
        predicted = queue.wait_time(1.0)
        assert queue.occupy(1.0, 1.0) == predicted


class TestDeadlinePolicy:
    def test_backoff_doubles(self):
        policy = DeadlinePolicy(retry_backoff_ms=0.5)
        assert policy.backoff_for(0) == 0.5
        assert policy.backoff_for(1) == 1.0

    def test_validation(self):
        with pytest.raises(ServingError):
            DeadlinePolicy(deadline_ms=0.0)
        with pytest.raises(ServingError):
            DeadlinePolicy(max_retries=-1)

    def test_impossible_deadline_rejected_at_frontend_construction(self):
        cluster = make_cluster()
        cluster.load_batch("shop", table(), version=1)
        protection = OverloadProtection(deadline=DeadlinePolicy(deadline_ms=1.0))
        with pytest.raises(ServingError):
            ServingFrontend(cluster, protection=protection)


class TestProtectedFrontend:
    def make_frontend(self, cluster=None, **protection_kwargs):
        if cluster is None:
            cluster = make_cluster()
            cluster.load_batch("shop", table(), version=1)
        protection = OverloadProtection(**protection_kwargs)
        return ServingFrontend(
            cluster, fallback=make_fallback(), protection=protection,
            metrics=MetricsRegistry(),
        )

    def test_shed_serves_popularity_page(self):
        frontend = self.make_frontend(
            admission_rate_qps=1_000.0, admission_burst=1.0
        )
        frontend.request("shop", ctx(1), now_ms=0.0)
        shed = frontend.request("shop", ctx(2), now_ms=0.0)
        assert shed.served_from == "shed"
        assert shed.latency_ms == pytest.approx(SHED_LATENCY_MS)
        assert len(shed.recommendations) == 10
        assert frontend.stats.shed == 1
        assert frontend.stats.shed_by_reason == {"shed_overload": 1}
        snapshot = frontend.metrics.snapshot()
        assert snapshot.counter(
            "frontend_shed_total", reason="shed_overload"
        ) == 1.0

    def test_shed_requests_never_occupy_the_queue(self):
        cluster = make_cluster()
        cluster.load_batch("shop", table(), version=1)
        queue = ServerQueue(n_servers=1)
        frontend = ServingFrontend(
            cluster, fallback=make_fallback(),
            protection=OverloadProtection(
                admission_rate_qps=1_000.0, admission_burst=1.0
            ),
            queue=queue,
        )
        frontend.request("shop", ctx(1), now_ms=0.0)
        busy_after_first = list(queue._busy_until)
        frontend.request("shop", ctx(2), now_ms=0.0)  # shed
        assert list(queue._busy_until) == busy_after_first

    def test_open_breaker_skips_dead_replica_for_free(self):
        cluster = make_cluster(n_nodes=3, n_shards=3, replication=2,
                               hot_fraction=1.0)
        cluster.load_batch("shop", table(), version=1)
        shard = cluster.shard_of("shop", 5)
        primary = cluster.replica_nodes(shard)[0].node_id
        cluster.fail_node(primary)
        frontend = self.make_frontend(
            cluster=cluster,
            breaker_min_samples=2, breaker_window=4,
            breaker_cooldown_ms=10_000.0,
        )
        # First requests pay the failover penalty and feed the breaker.
        warmup = frontend.request("shop", ctx(5), now_ms=0.0)
        assert warmup.latency_ms > 0.0
        frontend.request("shop", ctx(5, 4), now_ms=1.0)
        skips_before = cluster.breaker_skips
        # Unique contexts avoid the cache; the open breaker now routes
        # straight to the healthy replica with zero penalty.
        response = frontend.request("shop", ctx(5, 3), now_ms=2.0)
        assert cluster.breaker_skips > skips_before
        assert frontend.stats.breaker_transitions >= 1
        # No failover penalty component: latency is tier + blend only.
        assert response.latency_ms < warmup.latency_ms + FAILOVER_PENALTY_MS

    def test_breaker_transitions_metered(self):
        cluster = make_cluster(n_nodes=3, n_shards=3, replication=2)
        cluster.load_batch("shop", table(), version=1)
        cluster.fail_node(0)
        frontend = self.make_frontend(
            cluster=cluster, breaker_min_samples=1, breaker_window=2
        )
        for item in range(10):
            frontend.request("shop", ctx(item), now_ms=float(item))
        snapshot = frontend.metrics.snapshot()
        assert snapshot.counter(
            "serving_breaker_transitions_total", to_state="open"
        ) >= 1.0

    def test_deadline_never_exceeded_with_all_nodes_down(self):
        cluster = make_cluster()
        cluster.load_batch("shop", table(), version=1)
        for node in cluster.nodes:
            node.alive = False
        frontend = self.make_frontend(cluster=cluster)
        deadline = frontend.protection.deadline.deadline_ms
        for item in range(20):
            response = frontend.request("shop", ctx(item, item + 1),
                                        now_ms=float(item))
            assert response.latency_ms <= deadline + 1e-9
            assert response.served_from in ("fallback", "cache", "shed")

    def test_retries_charged_with_backoff(self):
        cluster = make_cluster(n_nodes=2, n_shards=2, replication=2)
        cluster.load_batch("shop", table(), version=1)
        for node in cluster.nodes:
            node.alive = False
        frontend = self.make_frontend(cluster=cluster)
        frontend.request("shop", ctx(1), now_ms=0.0)
        assert frontend.stats.retries >= 1
        assert frontend.protection.stats.retries == frontend.stats.retries

    def test_unprotected_path_unchanged(self):
        cluster_a = make_cluster()
        cluster_a.load_batch("shop", table(), version=1)
        cluster_b = make_cluster()
        cluster_b.load_batch("shop", table(), version=1)
        plain = ServingFrontend(cluster_a, fallback=make_fallback())
        protected = ServingFrontend(
            cluster_b, fallback=make_fallback(),
            protection=OverloadProtection(),
        )
        for item in range(10):
            a = plain.request("shop", ctx(item), now_ms=float(item))
            b = protected.request("shop", ctx(item), now_ms=float(item))
            assert a.latency_ms == b.latency_ms
            assert a.served_from == b.served_from
            assert [r.item_index for r in a.recommendations] == [
                r.item_index for r in b.recommendations
            ]


class TestServingBucketConservation:
    def test_buckets_sum_to_requests_across_modes(self):
        cluster = make_cluster(n_nodes=3, n_shards=6, replication=2)
        cluster.load_batch("shop", table(), version=1)
        frontend = ServingFrontend(
            cluster, fallback=make_fallback(("shop", "ghost")),
            protection=OverloadProtection(
                admission_rate_qps=2_000.0, admission_burst=5.0
            ),
            queue=ServerQueue(n_servers=1),
        )
        frontend.expect_version("shop", 2)  # everything serves stale
        now = 0.0
        for item in range(15):
            frontend.request("shop", ctx(item % N_ITEMS), now_ms=now)
            now += 0.25
        frontend.request("shop", ctx(1), now_ms=now)  # cache hit or shed
        frontend.request("ghost", ctx(2), now_ms=now)  # unserved -> fallback
        frontend.request("missing", UserContext((), ()), now_ms=now)  # empty
        cluster.fail_node(0)
        for item in range(10):
            frontend.request("shop", ctx(item + 20), now_ms=now)
            now += 0.25
        buckets = frontend.stats.serving_buckets()
        assert sum(buckets.values()) == frontend.stats.requests

    def test_empty_and_fallback_are_exclusive(self):
        cluster = make_cluster()
        frontend = ServingFrontend(cluster, fallback=PopularityFallback())
        response = frontend.request("nobody", ctx(1))
        assert response.served_from == "empty"
        assert frontend.stats.empty_responses == 1
        assert frontend.stats.fallbacks == 0


# ----------------------------------------------------------------------
# Satellite: the frontend never raises and never blows its deadline,
# under arbitrary replica-failure masks × breaker states × cache states.
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    failure_mask=st.lists(st.booleans(), min_size=4, max_size=4),
    flips=st.lists(
        st.tuples(st.integers(0, 3), st.booleans()), max_size=6
    ),
    requests=st.lists(
        st.tuples(
            st.sampled_from(["shop", "ghost", "missing"]),
            st.lists(st.integers(0, N_ITEMS - 1), max_size=4),
        ),
        min_size=1,
        max_size=25,
    ),
    pre_trip=st.lists(st.integers(0, 3), max_size=3),
)
def test_request_never_raises_never_blows_deadline(
    failure_mask, flips, requests, pre_trip
):
    cluster = make_cluster()
    cluster.load_batch("shop", table(), version=1)
    fallback = make_fallback(("shop", "ghost"))
    protection = OverloadProtection(
        admission_rate_qps=10_000.0,
        admission_burst=16.0,
        breaker_min_samples=2,
        breaker_window=4,
        breaker_cooldown_ms=3.0,
        deadline=DeadlinePolicy(deadline_ms=12.0, max_retries=1),
    )
    frontend = ServingFrontend(
        cluster, fallback=fallback, protection=protection,
        queue=ServerQueue(n_servers=2),
    )
    for node_id, dead in enumerate(failure_mask):
        if dead:
            cluster.fail_node(node_id)
    # Arbitrary pre-existing breaker state: trip some breakers open.
    for node_id in pre_trip:
        protection.breakers.record_failure(node_id, 0.0)
        protection.breakers.record_failure(node_id, 0.0)
    now = 0.0
    deadline = protection.deadline.deadline_ms
    for step, (retailer, items) in enumerate(requests):
        # Mid-stream node flips exercise breaker recovery paths.
        if step < len(flips):
            node_id, alive = flips[step]
            cluster.nodes[node_id].alive = alive
        context = ctx(*items) if items else UserContext((), ())
        response = frontend.request(retailer, context, now_ms=now)
        assert response.latency_ms <= deadline + 1e-9, (
            f"deadline blown: {response.latency_ms} > {deadline} "
            f"(served_from={response.served_from})"
        )
        now += 0.4
    buckets = frontend.stats.serving_buckets()
    assert sum(buckets.values()) == frontend.stats.requests
