"""Tests for the online serving frontend (cache, coalescing, fallback chain)."""

from __future__ import annotations

import pytest

from repro.data.events import EventType
from repro.data.sessions import UserContext
from repro.models.base import ScoredItem
from repro.obs import MetricsRegistry
from repro.serving.cluster import MEMORY_LATENCY_MS, ServingCluster
from repro.serving.frontend import (
    BLEND_LATENCY_MS,
    CACHE_HIT_LATENCY_MS,
    COALESCED_LATENCY_MS,
    FALLBACK_LATENCY_MS,
    FrontendResponse,
    PopularityFallback,
    ServingFrontend,
)

N_ITEMS = 60


def table(n_items: int = N_ITEMS, n_recs: int = 5):
    """Item -> recs; low item indices have the strongest scores."""
    return {
        item: [
            ScoredItem((item + j + 1) % n_items, float(n_items - item - j))
            for j in range(n_recs)
        ]
        for item in range(n_items)
    }


def make_cluster(**kwargs) -> ServingCluster:
    defaults = dict(n_nodes=4, n_shards=16, replication=2, hot_fraction=0.2)
    defaults.update(kwargs)
    return ServingCluster(**defaults)


def make_fallback(retailers=("shop",)) -> PopularityFallback:
    fallback = PopularityFallback()
    for rid in retailers:
        fallback.load_view_counts(rid, {i: float(N_ITEMS - i) for i in range(N_ITEMS)})
    return fallback


def ctx(*items, event=EventType.VIEW) -> UserContext:
    return UserContext(tuple(items), tuple(event for _ in items))


@pytest.fixture()
def frontend() -> ServingFrontend:
    cluster = make_cluster()
    cluster.load_batch("shop", table(), version=1)
    return ServingFrontend(cluster, fallback=make_fallback())


class TestRequestPath:
    def test_fresh_serve_matches_server_semantics(self, frontend):
        response = frontend.request("shop", ctx(1, 2), k=10)
        assert response.served_from == "fresh"
        assert not response.stale and not response.cache_hit
        assert response.version == 1
        items = [r.item_index for r in response.recommendations]
        assert 1 not in items and 2 not in items  # context excluded
        assert len(items) == 10

    def test_latency_sums_cluster_tiers_plus_blend(self):
        cluster = make_cluster(hot_fraction=1.0)  # everything in memory
        cluster.load_batch("shop", table(), version=1)
        frontend = ServingFrontend(cluster, context_lookups=3)
        response = frontend.request("shop", ctx(1, 2, 3), k=20)
        assert response.latency_ms == pytest.approx(
            3 * MEMORY_LATENCY_MS + BLEND_LATENCY_MS
        )

    def test_failover_penalty_charged_to_request(self):
        cluster = make_cluster(n_nodes=3, n_shards=3, replication=2,
                               hot_fraction=1.0)
        cluster.load_batch("shop", table(), version=1)
        frontend = ServingFrontend(cluster, context_lookups=1)
        baseline = frontend.request("shop", ctx(5), k=5).latency_ms
        shard = cluster.shard_of("shop", 5)
        cluster.fail_node(cluster.replica_nodes(shard)[0].node_id)
        degraded = ServingFrontend(cluster, context_lookups=1)
        assert degraded.request("shop", ctx(5), k=5).latency_ms > baseline

    def test_k_and_context_respected(self, frontend):
        assert len(frontend.request("shop", ctx(0), k=3).recommendations) == 3


class TestCache:
    def test_identical_context_hits_cache(self, frontend):
        first = frontend.request("shop", ctx(1, 2), k=10)
        second = frontend.request("shop", ctx(1, 2), k=10)
        assert second.cache_hit and second.served_from == "cache"
        assert second.latency_ms == pytest.approx(CACHE_HIT_LATENCY_MS)
        assert second.latency_ms < first.latency_ms
        assert second.recommendations == first.recommendations
        assert frontend.stats.cache_hits == 1

    def test_cache_keyed_on_recent_trail_only(self, frontend):
        # Older context beyond context_lookups does not change the key.
        long_ctx = ctx(50, 51, 1, 2, 3)
        short_ctx = ctx(40, 1, 2, 3)
        frontend.request("shop", long_ctx, k=10)
        response = frontend.request("shop", short_ctx, k=10)
        assert response.cache_hit  # same 3 most recent (1, 2, 3)

    def test_different_k_different_entry(self, frontend):
        frontend.request("shop", ctx(1), k=5)
        assert not frontend.request("shop", ctx(1), k=6).cache_hit

    def test_ttl_expires_entries(self):
        cluster = make_cluster()
        cluster.load_batch("shop", table(), version=1)
        frontend = ServingFrontend(cluster, cache_ttl_ms=100.0)
        frontend.request("shop", ctx(1), k=5, now_ms=0.0)
        assert frontend.request("shop", ctx(1), k=5, now_ms=50.0).cache_hit
        late = frontend.request("shop", ctx(1), k=5, now_ms=200.0)
        assert not late.cache_hit
        assert frontend.stats.cache_expirations == 1

    def test_lru_eviction_bounds_size(self):
        cluster = make_cluster()
        cluster.load_batch("shop", table(), version=1)
        frontend = ServingFrontend(cluster, cache_capacity=10)
        for item in range(30):
            frontend.request("shop", ctx(item), k=5)
        assert frontend.cache_size() <= 10
        assert frontend.stats.cache_evictions == 20

    def test_invalidate_retailer_drops_entries(self, frontend):
        frontend.request("shop", ctx(1), k=5)
        frontend.request("shop", ctx(2), k=5)
        assert frontend.invalidate_retailer("shop") == 2
        assert not frontend.request("shop", ctx(1), k=5).cache_hit

    def test_zero_capacity_disables_cache(self):
        cluster = make_cluster()
        cluster.load_batch("shop", table(), version=1)
        frontend = ServingFrontend(cluster, cache_capacity=0)
        frontend.request("shop", ctx(1), k=5)
        assert not frontend.request("shop", ctx(1), k=5).cache_hit


class TestCoalescing:
    def test_identical_inflight_requests_coalesce(self, frontend):
        responses = frontend.request_batch(
            [("shop", ctx(1, 2)), ("shop", ctx(1, 2)), ("shop", ctx(3))], k=10
        )
        leader, follower, other = responses
        assert not leader.coalesced
        assert follower.coalesced
        assert not other.coalesced
        assert follower.recommendations == leader.recommendations
        assert follower.latency_ms == pytest.approx(
            leader.latency_ms + COALESCED_LATENCY_MS
        )
        assert frontend.stats.coalesced == 1

    def test_coalesced_not_counted_as_cache_hit(self, frontend):
        frontend.request_batch([("shop", ctx(7)), ("shop", ctx(7))], k=5)
        assert frontend.stats.cache_hits == 0
        assert frontend.stats.coalesced == 1

    def test_batch_leader_populates_cache(self, frontend):
        frontend.request_batch([("shop", ctx(9))], k=5)
        assert frontend.request("shop", ctx(9), k=5).cache_hit


# ----------------------------------------------------------------------
# The fallback chain, parametrized over freshness x node failures
# ----------------------------------------------------------------------

FRESHNESS = ("fresh", "stale", "unserved")
FAILURES = ("none", "one_node", "all_nodes")


@pytest.mark.parametrize("freshness", FRESHNESS)
@pytest.mark.parametrize("failure", FAILURES)
class TestFallbackChain:
    def build(self, freshness: str, failure: str) -> ServingFrontend:
        cluster = make_cluster(n_nodes=3, n_shards=6, replication=2)
        if freshness != "unserved":
            cluster.load_batch("shop", table(), version=1)
        frontend = ServingFrontend(cluster, fallback=make_fallback())
        if freshness == "stale":
            frontend.expect_version("shop", 2)
        elif freshness == "fresh":
            frontend.expect_version("shop", 1)
        if failure == "one_node":
            cluster.fail_node(0)
        elif failure == "all_nodes":
            for node in cluster.nodes:
                cluster.fail_node(node.node_id)
        return frontend

    def test_never_raises_and_always_answers(self, freshness, failure):
        frontend = self.build(freshness, failure)
        response = frontend.request("shop", ctx(1, 2), k=5)
        assert isinstance(response, FrontendResponse)
        # Chain invariant: a fallback table exists, so the only empty
        # answer would be a retailer the fallback has never heard of.
        assert response.recommendations
        assert response.served_from in ("fresh", "stale", "fallback")

    def test_chain_stage_is_correct(self, freshness, failure):
        frontend = self.build(freshness, failure)
        response = frontend.request("shop", ctx(1, 2), k=5)
        if freshness == "unserved":
            assert response.served_from == "fallback"
            assert response.fallback_stage == "unserved"
            assert frontend.stats.fallbacks == 1
        elif failure == "all_nodes":
            assert response.served_from == "fallback"
            assert response.fallback_stage == "degraded"
        elif freshness == "stale":
            assert response.served_from == "stale"
            assert response.stale
            assert frontend.stats.stale_serves == 1
        else:
            assert response.served_from == "fresh"
            assert not response.stale

    def test_empty_context_uses_fallback(self, freshness, failure):
        frontend = self.build(freshness, failure)
        response = frontend.request("shop", UserContext.empty(), k=5)
        assert response.recommendations
        assert response.served_from == "fallback"


class TestFallbackTerminal:
    def test_unserved_without_fallback_table_returns_empty(self):
        frontend = ServingFrontend(make_cluster(), fallback=PopularityFallback())
        response = frontend.request("ghost", ctx(1), k=5)
        assert response.served_from == "empty"
        assert response.recommendations == ()
        assert frontend.stats.empty_responses == 1

    def test_no_fallback_source_at_all(self):
        frontend = ServingFrontend(make_cluster())
        response = frontend.request("ghost", ctx(1), k=5)
        assert response.served_from == "empty"

    def test_fallback_latency_charged(self):
        frontend = ServingFrontend(make_cluster(), fallback=make_fallback())
        response = frontend.request("shop", ctx(1), k=5)
        assert response.served_from == "fallback"
        assert response.latency_ms == pytest.approx(FALLBACK_LATENCY_MS)


class TestHybridTailAugmentation:
    def test_thin_results_topped_up_from_fallback(self):
        cluster = make_cluster()
        # Item 0 recommends only items 1 and 2: a tail context.
        cluster.load_batch(
            "shop",
            {0: [ScoredItem(1, 2.0), ScoredItem(2, 1.0)]},
            version=1,
        )
        frontend = ServingFrontend(cluster, fallback=make_fallback())
        response = frontend.request("shop", ctx(0), k=6)
        assert response.served_from == "fresh"
        assert response.tail_augmented == 4
        assert len(response.recommendations) == 6
        # Personalized recs stay ranked above every fallback item.
        assert [r.item_index for r in response.recommendations[:2]] == [1, 2]
        assert all(r.source_item == -1 for r in response.recommendations[2:])
        scores = [r.score for r in response.recommendations]
        assert scores == sorted(scores, reverse=True)

    def test_head_context_not_augmented(self, frontend):
        response = frontend.request("shop", ctx(1, 2), k=5)
        assert response.tail_augmented == 0


class TestMetricsWiring:
    def test_counters_flow_into_registry(self):
        metrics = MetricsRegistry()
        cluster = make_cluster(n_nodes=3, n_shards=6, replication=2)
        cluster.load_batch("shop", table(), version=1)
        frontend = ServingFrontend(
            cluster, fallback=make_fallback(("shop", "ghost")), metrics=metrics
        )
        frontend.expect_version("shop", 2)  # stale
        frontend.request("shop", ctx(1), k=5)
        frontend.request("shop", ctx(1), k=5)          # cache hit
        frontend.request("ghost", ctx(1), k=5)         # unserved -> fallback
        frontend.request_batch(
            [("shop", ctx(2)), ("shop", ctx(2))], k=5  # coalesced
        )
        snapshot = metrics.snapshot()
        assert snapshot.counter_total("frontend_requests_total") == 5
        assert snapshot.counter("frontend_requests_total", retailer="shop") == 4
        assert snapshot.counter_total("frontend_cache_hits_total") == 1
        assert snapshot.counter_total("frontend_stale_serves_total") == 2
        assert snapshot.counter("frontend_fallback_total", stage="unserved") == 1
        assert snapshot.counter_total("frontend_coalesced_total") == 1

    def test_stats_mirror_registry(self):
        metrics = MetricsRegistry()
        cluster = make_cluster()
        cluster.load_batch("shop", table(), version=1)
        frontend = ServingFrontend(cluster, metrics=metrics)
        for item in range(5):
            frontend.request("shop", ctx(item), k=5)
            frontend.request("shop", ctx(item), k=5)
        snapshot = metrics.snapshot()
        assert frontend.stats.requests == 10
        assert snapshot.counter_total("frontend_requests_total") == 10
        assert frontend.stats.cache_hits == 5
        assert frontend.stats.cache_hit_rate == pytest.approx(0.5)


class TestValidation:
    def test_bad_cache_settings_rejected(self):
        from repro.exceptions import ServingError
        with pytest.raises(ServingError):
            ServingFrontend(make_cluster(), cache_capacity=-1)
        with pytest.raises(ServingError):
            ServingFrontend(make_cluster(), cache_ttl_ms=0.0)


class TestCacheInvalidationOnPublish:
    """Regression: the response cache survived publishes and rollbacks.

    A cached entry pinned the version it was computed from, but nothing
    compared that pin against the cluster's current version — so after a
    ``load_batch`` (daily publish) or a rollback, requests kept serving
    recommendations from the *retired* table until the TTL happened to
    expire.  Both paths must observe the new version immediately.
    """

    def shifted_table(self):
        return {
            item: [
                ScoredItem((item + j + 7) % N_ITEMS, float(N_ITEMS - j))
                for j in range(5)
            ]
            for item in range(N_ITEMS)
        }

    def test_publish_invalidates_cached_entries(self):
        cluster = make_cluster()
        cluster.load_batch("shop", table(), version=1)
        frontend = ServingFrontend(cluster, fallback=make_fallback())
        first = frontend.request("shop", ctx(3), k=5)
        assert frontend.request("shop", ctx(3), k=5).cache_hit

        cluster.load_batch("shop", self.shifted_table(), version=2)
        after = frontend.request("shop", ctx(3), k=5)
        assert not after.cache_hit
        assert after.version == 2
        assert [r.item_index for r in after.recommendations] != [
            r.item_index for r in first.recommendations
        ]
        assert frontend.stats.cache_invalidations > 0

    def test_version_pin_caught_even_without_subscription(self):
        """The belt (per-read version check) works on clusters that do
        not offer the invalidation-listener suspenders."""
        cluster = make_cluster()
        cluster.load_batch("shop", table(), version=1)
        frontend = ServingFrontend(cluster, fallback=make_fallback())
        frontend.request("shop", ctx(3), k=5)
        # Simulate a listener-less publish: bump the stored entries
        # behind the frontend's back.
        cluster._versions["shop"] = 2
        response = frontend.request("shop", ctx(3), k=5)
        assert not response.cache_hit
        assert frontend.stats.cache_invalidations > 0

    def test_unrelated_retailer_cache_survives_publish(self):
        cluster = make_cluster()
        cluster.load_batch("shop", table(), version=1)
        cluster.load_batch("other", table(), version=1)
        frontend = ServingFrontend(cluster, fallback=make_fallback())
        frontend.request("other", ctx(3), k=5)
        cluster.load_batch("shop", self.shifted_table(), version=2)
        assert frontend.request("other", ctx(3), k=5).cache_hit


class TestRetrievalTopup:
    def make_index(self):
        import numpy as np

        from repro.retrieval import ExactRetrieval, ModelRetrieval
        from repro.retrieval.harness import synthetic_embeddings

        vectors, bias = synthetic_embeddings(N_ITEMS, 8, seed=5)
        return ModelRetrieval(ExactRetrieval(vectors, bias), vectors)

    def test_thin_results_topped_up_from_index_before_popularity(self):
        from repro.serving.frontend import RETRIEVAL_LATENCY_MS

        cluster = make_cluster()
        cluster.load_batch(
            "shop",
            {0: [ScoredItem(1, 2.0), ScoredItem(2, 1.0)]},
            version=1,
        )
        frontend = ServingFrontend(cluster, fallback=make_fallback())
        frontend.load_retrieval_index("shop", self.make_index())
        response = frontend.request("shop", ctx(0), k=6)
        assert len(response.recommendations) == 6
        assert frontend.stats.retrieval_topups == 4  # slots filled
        # Personalized results keep their rank above every extra.
        assert [r.item_index for r in response.recommendations[:2]] == [1, 2]
        items = [r.item_index for r in response.recommendations]
        assert len(set(items)) == 6 and 0 not in items
        baseline = frontend.request("shop", ctx(1), k=2)  # no top-up
        assert response.latency_ms >= baseline.latency_ms + RETRIEVAL_LATENCY_MS

    def test_no_index_is_byte_identical_to_fallback_only(self):
        cluster = make_cluster()
        cluster.load_batch(
            "shop",
            {0: [ScoredItem(1, 2.0), ScoredItem(2, 1.0)]},
            version=1,
        )
        plain = ServingFrontend(cluster, fallback=make_fallback())
        wired = ServingFrontend(cluster, fallback=make_fallback())
        wired.load_retrieval_index("shop", self.make_index())
        wired.drop_retrieval_index("shop")
        a = plain.request("shop", ctx(0), k=6)
        b = wired.request("shop", ctx(0), k=6)
        assert [
            (r.item_index, r.score) for r in a.recommendations
        ] == [(r.item_index, r.score) for r in b.recommendations]
        assert a.latency_ms == b.latency_ms


class _PublishDuringLookupCluster(ServingCluster):
    """Fires a queued publish from inside a lookup (mid-flight publish)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.publish_on_next_lookup = None

    def lookup(self, retailer_id, item_index, breakers=None, now_ms=0.0):
        result = super().lookup(
            retailer_id, item_index, breakers=breakers, now_ms=now_ms
        )
        if self.publish_on_next_lookup is not None:
            rid, recs, version = self.publish_on_next_lookup
            self.publish_on_next_lookup = None
            self.load_batch(rid, recs, version)
        return result


class TestCoalescingInvalidationFence:
    """A publish landing between leader start and follower join must
    fence the leader: the follower recomputes against the new table
    instead of inheriting a pre-publish result."""

    def make_racing_frontend(self):
        cluster = _PublishDuringLookupCluster(
            n_nodes=4, n_shards=16, replication=2, hot_fraction=0.2
        )
        cluster.load_batch("shop", table(), version=1)
        frontend = ServingFrontend(cluster, fallback=make_fallback())
        cluster.publish_on_next_lookup = ("shop", table(), 2)
        return cluster, frontend

    def test_follower_never_receives_pre_publish_result(self):
        _, frontend = self.make_racing_frontend()
        leader, follower = frontend.request_batch(
            [("shop", ctx(1, 2)), ("shop", ctx(1, 2))], k=5
        )
        # The leader computed against v1; the publish landed mid-flight.
        assert leader.version == 1
        assert not follower.coalesced
        assert follower.version == 2
        assert frontend.stats.coalesce_fenced == 1
        assert frontend.stats.coalesced == 0

    def test_fence_scoped_to_the_invalidated_retailer(self):
        cluster = _PublishDuringLookupCluster(
            n_nodes=4, n_shards=16, replication=2, hot_fraction=0.2
        )
        cluster.load_batch("shop", table(), version=1)
        cluster.load_batch("other", table(), version=1)
        frontend = ServingFrontend(
            cluster, fallback=make_fallback(("shop", "other"))
        )
        # The mid-flight publish hits "shop"; "other" coalesces freely.
        cluster.publish_on_next_lookup = ("shop", table(), 2)
        responses = frontend.request_batch(
            [("other", ctx(1)), ("shop", ctx(2)), ("other", ctx(1))], k=5
        )
        assert responses[2].coalesced
        assert frontend.stats.coalesce_fenced == 0

    def test_pre_publish_result_never_enters_the_cache(self):
        _, frontend = self.make_racing_frontend()
        frontend.request_batch([("shop", ctx(1, 2))], k=5)
        # The leader's v1 response must not be cached under v2.
        followup = frontend.request("shop", ctx(1, 2), k=5)
        assert not followup.cache_hit
        assert followup.version == 2

    def test_fenced_follower_becomes_new_leader(self):
        _, frontend = self.make_racing_frontend()
        responses = frontend.request_batch(
            [("shop", ctx(1, 2)), ("shop", ctx(1, 2)), ("shop", ctx(1, 2))],
            k=5,
        )
        # Request 2 re-led after the fence; request 3 coalesces onto it.
        assert responses[1].version == 2
        assert responses[2].coalesced and responses[2].version == 2
        assert frontend.stats.coalesce_fenced == 1
        assert frontend.stats.coalesced == 1
