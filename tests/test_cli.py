"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main

CATALOG_CSV = """item_id,category,brand,price
a,x/y,b1,10.0
b,x/y,b2,12.0
c,x/z,b1,8.0
"""

EVENTS_CSV = """user_id,item_id,event,timestamp
u1,a,view,1
u1,b,view,2
u1,c,purchase,3
u2,b,view,1
u2,a,cart,2
u2,c,view,3
"""


@pytest.fixture()
def csv_paths(tmp_path):
    catalog = tmp_path / "catalog.csv"
    catalog.write_text(CATALOG_CSV)
    events = tmp_path / "events.csv"
    events.write_text(EVENTS_CSV)
    return str(catalog), str(events)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.items == 300
        assert args.command == "demo"

    def test_service_overrides(self):
        args = build_parser().parse_args(
            ["service", "--retailers", "2", "--days", "1"]
        )
        assert args.retailers == 2
        assert args.days == 1

    def test_metrics_defaults(self):
        args = build_parser().parse_args(["metrics"])
        assert args.command == "metrics"
        assert args.retailers == 3
        assert args.days == 1
        assert args.indent == 2

    def test_serve_bench_defaults(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.command == "serve-bench"
        assert args.retailers == 4
        assert args.requests == 2000
        assert args.qps == 1000.0
        assert args.cache_ttl_ms == 60_000.0

    def test_run_day_defaults(self):
        args = build_parser().parse_args(["run-day"])
        assert args.command == "run-day"
        assert args.retailers == 3
        assert args.days == 2
        assert args.serial is False
        assert args.max_parallelism == 1
        assert args.blocks is None
        assert args.schedule is False
        assert args.seal_out is None

    def test_run_day_overrides(self):
        args = build_parser().parse_args(
            ["run-day", "--serial", "--max-parallelism", "4",
             "--blocks", "train,publish", "--schedule"]
        )
        assert args.serial is True
        assert args.max_parallelism == 4
        assert args.blocks == "train,publish"
        assert args.schedule is True


class TestCommands:
    def test_demo_runs(self, capsys):
        code = main(["demo", "--items", "60", "--users", "30",
                     "--events", "300", "--epochs", "2", "--factors", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MAP@10" in out
        assert "top-5" in out

    def test_service_runs(self, capsys):
        code = main(["service", "--retailers", "2", "--days", "2",
                     "--median-items", "40"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep=full" in out
        assert "sweep=incremental" in out
        assert "chargeback" in out

    def test_inspect_csv(self, csv_paths, capsys):
        catalog, events = csv_paths
        assert main(["inspect", catalog, events]) == 0
        out = capsys.readouterr().out
        assert "items: 3" in out

    def test_train_csv(self, csv_paths, capsys):
        catalog, events = csv_paths
        assert main(["train", catalog, events, "--epochs", "2",
                     "--factors", "4"]) == 0
        out = capsys.readouterr().out
        assert "map@10" in out

    def test_metrics_emits_valid_fleet_snapshot(self, capsys):
        code = main(["metrics", "--retailers", "2", "--days", "1",
                     "--median-items", "40"])
        assert code == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert set(snapshot) == {
            "schema_version", "day", "sweep_kind", "report", "fleet",
            "retailers", "metrics", "process",
        }
        assert snapshot["schema_version"] == 1
        assert snapshot["day"] == 0
        assert snapshot["sweep_kind"] == "full"
        assert len(snapshot["retailers"]) == 2
        for rollup in snapshot["retailers"].values():
            assert rollup["configs_trained"] > 0
            assert rollup["triples_per_second"] > 0
        assert snapshot["fleet"]["publishes_accepted"] == 2
        assert snapshot["metrics"]["counters"]
        assert snapshot["process"]["checkpoints"]["writes"] >= 0

    def test_run_day_dag_matches_serial_output(self, capsys):
        dag_args = ["run-day", "--retailers", "2", "--days", "2",
                    "--median-items", "40", "--max-parallelism", "4",
                    "--schedule"]
        assert main(dag_args) == 0
        dag_out = capsys.readouterr().out
        assert "sweep=full" in dag_out
        assert "sweep=incremental" in dag_out
        assert "infer_plan" in dag_out
        assert "makespan=" in dag_out

        serial_args = ["run-day", "--retailers", "2", "--days", "2",
                       "--median-items", "40", "--serial"]
        assert main(serial_args) == 0
        serial_out = capsys.readouterr().out
        # Per-day report lines are identical across orchestrators.
        day_lines = [l for l in dag_out.splitlines() if l.startswith("day ")]
        assert day_lines == [
            l for l in serial_out.splitlines() if l.startswith("day ")
        ]

    def test_run_day_partial_blocks_and_seal_out(self, tmp_path, capsys):
        seal_path = tmp_path / "seal.json"
        code = main(["run-day", "--retailers", "2", "--days", "1",
                     "--median-items", "40", "--blocks", "train",
                     "--seal-out", str(seal_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "partial (train)" in out
        assert "wrote day 0 seal" in out
        seal = json.loads(seal_path.read_text())
        assert seal["day"] == 0
        assert seal["fleet"]["publishes_accepted"] == 2

    def test_serve_bench_runs(self, capsys):
        code = main(["serve-bench", "--retailers", "2", "--items", "120",
                     "--requests", "300", "--users", "5000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cold: p50=" in out
        assert "warm: p50=" in out
        assert "cache_hit_rate=" in out
        assert "stale_serves=" in out
