"""Tests for catalogs, items, and global item ids."""

from __future__ import annotations

import math

import pytest

from repro.data.catalog import Catalog, Item, make_item_id, parse_item_id
from repro.exceptions import DataError


def build_catalog() -> Catalog:
    items = [
        Item("r:item0", 0, "phones", brand="acme", price=10.0),
        Item("r:item1", 1, "phones", brand=None, price=20.0),
        Item("r:item2", 2, "cases", brand="bolt", price=None, facets={"color": "red"}),
        Item("r:item3", 3, "cases", brand="acme", price=5.0, facets={"color": "red"}),
    ]
    return Catalog("r", items)


class TestCatalogBasics:
    def test_len_iter_getitem(self):
        catalog = build_catalog()
        assert len(catalog) == 4
        assert [item.index for item in catalog] == [0, 1, 2, 3]
        assert catalog[2].item_id == "r:item2"

    def test_by_id(self):
        catalog = build_catalog()
        assert catalog.by_id("r:item1").index == 1
        assert catalog.has_id("r:item1")
        assert not catalog.has_id("r:item99")

    def test_unknown_id_raises(self):
        with pytest.raises(DataError):
            build_catalog().by_id("nope")

    def test_misnumbered_items_rejected(self):
        with pytest.raises(DataError):
            Catalog("r", [Item("r:item5", 5, "c")])

    def test_duplicate_ids_rejected(self):
        items = [Item("dup", 0, "c"), Item("dup", 1, "c")]
        with pytest.raises(DataError):
            Catalog("r", items)


class TestAttributeViews:
    def test_brand_vocabulary_sorted_distinct(self):
        assert build_catalog().brand_vocabulary() == ["acme", "bolt"]

    def test_brand_coverage(self):
        assert build_catalog().brand_coverage() == pytest.approx(3 / 4)

    def test_price_coverage(self):
        assert build_catalog().price_coverage() == pytest.approx(3 / 4)

    def test_prices_has_nan_for_missing(self):
        prices = build_catalog().prices()
        assert prices[0] == 10.0
        assert math.isnan(prices[2])

    def test_empty_catalog_coverages(self):
        empty = Catalog("r", [])
        assert empty.brand_coverage() == 0.0
        assert empty.price_coverage() == 0.0

    def test_facets(self):
        catalog = build_catalog()
        assert catalog.facet_values("color") == [None, None, "red", "red"]
        assert catalog.items_with_facet("color", "red") == [2, 3]


class TestItemIds:
    def test_roundtrip(self):
        item_id = make_item_id("retailer_0042", 17)
        assert parse_item_id(item_id) == ("retailer_0042", 17)

    def test_ids_embed_retailer(self):
        """Paper IV-C: the same item sold by two retailers differs by id."""
        assert make_item_id("a", 0) != make_item_id("b", 0)

    @pytest.mark.parametrize("bad", ["noitem", "item5", ":item", "r:itemx"])
    def test_malformed_ids_rejected(self, bad):
        with pytest.raises(DataError):
            parse_item_id(bad)
