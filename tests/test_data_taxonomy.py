"""Unit and property tests for the taxonomy tree and LCA distances."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.taxonomy import ROOT_CATEGORY, Taxonomy, random_taxonomy
from repro.exceptions import TaxonomyError


def paper_taxonomy() -> Taxonomy:
    """The exact tree of paper Fig. 3 (cell phones)."""
    t = Taxonomy()
    t.add_category("cell_phones", ROOT_CATEGORY)
    t.add_category("smart_phones", "cell_phones")
    t.add_category("other", "cell_phones")
    t.add_category("android", "smart_phones")
    t.add_category("apple", "smart_phones")
    # Items: 0=Nexus 6P, 1=Nexus 5X, 2=iPhone 6, 3=other-phone
    t.assign_item(0, "android")
    t.assign_item(1, "android")
    t.assign_item(2, "apple")
    t.assign_item(3, "other")
    return t


class TestTreeConstruction:
    def test_root_exists_by_default(self):
        t = Taxonomy()
        assert ROOT_CATEGORY in list(t.categories())
        assert t.depth_of(ROOT_CATEGORY) == 0

    def test_add_category_tracks_depth_and_parent(self):
        t = Taxonomy()
        t.add_category("a")
        t.add_category("b", "a")
        assert t.depth_of("b") == 2
        assert t.parent_of("b") == "a"
        assert t.children_of("a") == ("b",)

    def test_duplicate_category_rejected(self):
        t = Taxonomy()
        t.add_category("a")
        with pytest.raises(TaxonomyError):
            t.add_category("a")

    def test_unknown_parent_rejected(self):
        t = Taxonomy()
        with pytest.raises(TaxonomyError):
            t.add_category("a", "nope")

    def test_assign_item_and_reassign(self):
        t = Taxonomy()
        t.add_category("a")
        t.add_category("b")
        t.assign_item(0, "a")
        assert t.category_of(0) == "a"
        t.assign_item(0, "b")
        assert t.category_of(0) == "b"
        assert 0 not in t.items_in("a")
        assert 0 in t.items_in("b")

    def test_assign_to_unknown_category_rejected(self):
        t = Taxonomy()
        with pytest.raises(TaxonomyError):
            t.assign_item(0, "missing")

    def test_item_without_category_raises(self):
        t = Taxonomy()
        with pytest.raises(TaxonomyError):
            t.category_of(5)

    def test_leaves(self):
        t = paper_taxonomy()
        assert set(t.leaves()) == {"android", "apple", "other"}


class TestAncestorsAndLca:
    def test_ancestors_path_to_root(self):
        t = paper_taxonomy()
        assert t.ancestors("android") == [
            "android",
            "smart_phones",
            "cell_phones",
            ROOT_CATEGORY,
        ]

    def test_ancestors_exclude_self(self):
        t = paper_taxonomy()
        assert t.ancestors("android", include_self=False)[0] == "smart_phones"

    def test_lca_siblings(self):
        t = paper_taxonomy()
        assert t.lca("android", "apple") == "smart_phones"

    def test_lca_with_self(self):
        t = paper_taxonomy()
        assert t.lca("android", "android") == "android"

    def test_lca_ancestor_descendant(self):
        t = paper_taxonomy()
        assert t.lca("cell_phones", "android") == "cell_phones"

    def test_paper_figure3_distances(self):
        """The exact numbers from paper Fig. 3: distance(Nexus 5X,
        Nexus 6P)=1, distance(5X, iPhone 6)=2, distance(5X, other)=3."""
        t = paper_taxonomy()
        assert t.lca_distance(1, 0) == 1
        assert t.lca_distance(1, 2) == 2
        assert t.lca_distance(1, 3) == 3
        assert t.lca_distance(0, 1) == 1  # symmetric

    def test_distance_zero_only_for_identical_items(self):
        t = paper_taxonomy()
        assert t.lca_distance(0, 0) == 0
        assert t.lca_distance(0, 1) == 1  # same category is distance 1

    def test_ancestor_at_distance_clamps_at_root(self):
        t = paper_taxonomy()
        assert t.ancestor_at_distance("android", 1) == "smart_phones"
        assert t.ancestor_at_distance("android", 99) == ROOT_CATEGORY


class TestLcaK:
    def test_lca0_is_the_item_itself(self):
        t = paper_taxonomy()
        assert t.lca_k(0, 0) == [0]

    def test_lca1_is_same_category(self):
        """Paper: 'items at lca1, i.e., other Android phones'."""
        t = paper_taxonomy()
        assert sorted(t.lca_k(0, 1)) == [0, 1]

    def test_lca2_is_all_smart_phones(self):
        t = paper_taxonomy()
        assert sorted(t.lca_k(0, 2)) == [0, 1, 2]

    def test_lca3_is_all_cell_phones(self):
        t = paper_taxonomy()
        assert sorted(t.lca_k(0, 3)) == [0, 1, 2, 3]

    def test_negative_k_rejected(self):
        t = paper_taxonomy()
        with pytest.raises(TaxonomyError):
            t.lca_k(0, -1)

    def test_lca_k_monotone_in_k(self):
        t = random_taxonomy(60, depth=3, fanout=3, seed=5)
        for item in (0, 10, 59):
            previous = set()
            for k in range(4):
                current = set(t.lca_k(item, k))
                assert previous <= current
                previous = current


class TestRandomTaxonomy:
    def test_all_items_assigned(self):
        t = random_taxonomy(100, depth=3, fanout=4, seed=1)
        assert t.num_items == 100
        for item in range(100):
            assert t.has_item(item)

    def test_items_attach_to_leaves(self):
        t = random_taxonomy(50, depth=2, fanout=3, seed=2)
        leaves = set(t.leaves())
        for item in range(50):
            assert t.category_of(item) in leaves

    def test_deterministic_per_seed(self):
        a = random_taxonomy(40, seed=9)
        b = random_taxonomy(40, seed=9)
        assert [a.category_of(i) for i in range(40)] == [
            b.category_of(i) for i in range(40)
        ]

    def test_invalid_shape_rejected(self):
        with pytest.raises(TaxonomyError):
            random_taxonomy(10, depth=0)
        with pytest.raises(TaxonomyError):
            random_taxonomy(10, fanout=0)

    def test_category_count(self):
        t = random_taxonomy(10, depth=2, fanout=3, seed=0)
        # root + 3 + 9
        assert t.num_categories == 13


@settings(max_examples=25, deadline=None)
@given(
    n_items=st.integers(min_value=2, max_value=60),
    depth=st.integers(min_value=1, max_value=3),
    fanout=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_lca_distance_is_metric_like(n_items, depth, fanout, seed):
    """LCA distance is symmetric, non-negative, bounded by depth, and
    zero only within one category."""
    t = random_taxonomy(n_items, depth=depth, fanout=fanout, seed=seed)
    import numpy as np

    rng = np.random.default_rng(seed)
    for _ in range(10):
        a, b = int(rng.integers(n_items)), int(rng.integers(n_items))
        d_ab = t.lca_distance(a, b)
        assert d_ab == t.lca_distance(b, a)
        assert 0 <= d_ab <= depth + 1
        if d_ab == 0:
            assert a == b


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    k=st.integers(min_value=0, max_value=3),
)
def test_property_lca_k_members_within_distance(seed, k):
    """Every member of lca_k(i) really is within LCA distance k of i."""
    t = random_taxonomy(40, depth=3, fanout=3, seed=seed)
    item = seed % 40
    for member in t.lca_k(item, k):
        assert t.lca_distance(item, member) <= k
