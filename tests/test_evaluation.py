"""Tests for ranking metrics, sampled estimation, and the evaluator."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.evaluator import HoldoutEvaluator
from repro.evaluation.metrics import (
    auc_from_rank,
    average_precision_at_k,
    mean_rank_metrics,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
)
from repro.evaluation.sampled import SampledRankEstimator
from repro.models.popularity import PopularityModel


class TestMetrics:
    def test_ap_reciprocal_rank(self):
        assert average_precision_at_k(1, 10) == 1.0
        assert average_precision_at_k(4, 10) == 0.25
        assert average_precision_at_k(11, 10) == 0.0

    def test_precision(self):
        assert precision_at_k(3, 10) == 0.1
        assert precision_at_k(11, 10) == 0.0

    def test_recall(self):
        assert recall_at_k(10, 10) == 1.0
        assert recall_at_k(11, 10) == 0.0

    def test_ndcg(self):
        assert ndcg_at_k(1, 10) == 1.0
        assert ndcg_at_k(3, 10) == pytest.approx(1.0 / math.log2(4))
        assert ndcg_at_k(11, 10) == 0.0

    def test_auc(self):
        assert auc_from_rank(1, 101) == 1.0
        assert auc_from_rank(101, 101) == 0.0
        assert auc_from_rank(51, 101) == 0.5

    def test_auc_bad_rank_rejected(self):
        with pytest.raises(ValueError):
            auc_from_rank(0, 10)
        with pytest.raises(ValueError):
            auc_from_rank(11, 10)

    def test_invalid_k_rejected(self):
        for fn in (average_precision_at_k, precision_at_k, recall_at_k, ndcg_at_k):
            with pytest.raises(ValueError):
                fn(1, 0)

    def test_mean_rank_metrics_batch(self):
        metrics = mean_rank_metrics([1, 2, 20], pool_size=100, k=10)
        assert metrics["map@10"] == pytest.approx((1.0 + 0.5 + 0.0) / 3)
        assert metrics["recall@10"] == pytest.approx(2 / 3)
        assert metrics["mean_rank"] == pytest.approx(23 / 3)
        assert metrics["examples"] == 3.0

    def test_mean_rank_metrics_empty(self):
        metrics = mean_rank_metrics([], pool_size=10)
        assert metrics["map@10"] == 0.0
        assert metrics["examples"] == 0.0

    def test_mean_rank_metrics_accepts_numpy_arrays(self):
        """Regression: a numpy ``ranks`` array used to raise 'truth value
        of an array is ambiguous' in the emptiness check."""
        import numpy as np

        metrics = mean_rank_metrics(np.array([1, 2, 20]), pool_size=100, k=10)
        assert metrics == mean_rank_metrics([1, 2, 20], pool_size=100, k=10)
        empty = mean_rank_metrics(np.zeros(0, dtype=np.int64), pool_size=10)
        assert empty["examples"] == 0.0


@settings(max_examples=40, deadline=None)
@given(
    rank=st.integers(min_value=1, max_value=500),
    k=st.integers(min_value=1, max_value=50),
)
def test_property_metric_bounds_and_monotonicity(rank, k):
    """All metrics live in [0,1]; better rank never hurts any metric."""
    for fn in (average_precision_at_k, precision_at_k, recall_at_k, ndcg_at_k):
        value = fn(rank, k)
        assert 0.0 <= value <= 1.0
        if rank > 1:
            assert fn(rank - 1, k) >= value
    assert 0.0 <= auc_from_rank(rank, 500) <= 1.0
    if rank > 1:
        assert auc_from_rank(rank - 1, 500) >= auc_from_rank(rank, 500)


class TestSampledEstimator:
    def test_full_sample_is_exact(self, trained_model, small_dataset):
        estimator = SampledRankEstimator(
            small_dataset.n_items, sample_fraction=1.0, seed=1
        )
        example = small_dataset.holdout[0]
        exact = trained_model.rank_of(example.context, example.held_out_item)
        assert estimator.estimate_rank(
            trained_model, example.context, example.held_out_item
        ) == pytest.approx(exact)

    def test_estimates_close_to_exact(self, trained_model, small_dataset):
        estimator = SampledRankEstimator(
            small_dataset.n_items, sample_fraction=0.5, min_sample=10, seed=2
        )
        errors = []
        for example in small_dataset.holdout[:30]:
            exact = trained_model.rank_of(example.context, example.held_out_item)
            estimate = estimator.estimate_rank(
                trained_model, example.context, example.held_out_item
            )
            errors.append(abs(estimate - exact))
        assert np.mean(errors) < small_dataset.n_items * 0.15

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            SampledRankEstimator(100, sample_fraction=0.0)

    def test_sample_size_respects_min(self):
        estimator = SampledRankEstimator(1000, sample_fraction=0.01, min_sample=50)
        assert estimator.sample_size == 50

    def test_rank_one_when_target_beats_sample(self, small_dataset):
        model = PopularityModel(small_dataset.n_items, small_dataset.train)
        top_item = int(model.popularity_rank()[0])
        estimator = SampledRankEstimator(
            small_dataset.n_items, sample_fraction=0.5, seed=3
        )
        from repro.data.sessions import UserContext

        estimate = estimator.estimate_rank(model, UserContext.empty(), top_item)
        assert estimate == pytest.approx(1.0)


class TestEvaluator:
    def test_exact_for_small_catalogs(self, trained_model, small_dataset):
        evaluator = HoldoutEvaluator(small_dataset)
        result = evaluator.evaluate(trained_model)
        assert not result.sampled
        assert 0.0 <= result.map_at_10 <= 1.0
        assert result.metrics["examples"] == len(small_dataset.holdout)

    def test_sampled_when_forced(self, trained_model, small_dataset):
        evaluator = HoldoutEvaluator(small_dataset)
        result = evaluator.evaluate(trained_model, force_sampled=True)
        assert result.sampled

    def test_sampled_vs_exact_agree_on_ordering(self, small_dataset, trained_model):
        """The paper's claim in miniature: sampling must preserve which of
        two models is better."""
        weak = PopularityModel(small_dataset.n_items, small_dataset.train)
        evaluator = HoldoutEvaluator(small_dataset)
        exact_good = evaluator.evaluate(trained_model, force_exact=True).map_at_10
        exact_weak = evaluator.evaluate(weak, force_exact=True).map_at_10
        sampled_good = evaluator.evaluate(trained_model, force_sampled=True).map_at_10
        sampled_weak = evaluator.evaluate(weak, force_sampled=True).map_at_10
        assert (exact_good > exact_weak) == (sampled_good > sampled_weak)

    def test_metric_accessor(self, trained_model, small_dataset):
        result = HoldoutEvaluator(small_dataset).evaluate(trained_model)
        assert result.metric("auc") == result.metrics["auc"]
        with pytest.raises(KeyError):
            result.metric("nope")
