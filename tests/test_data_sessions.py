"""Tests for user contexts and context-window construction (paper Fig. 2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.events import EventType, Interaction
from repro.data.sessions import (
    UserContext,
    all_context_windows,
    build_user_histories,
    context_windows,
    final_context,
)


def history(*items: int) -> list:
    return [
        Interaction(float(step), 1, item, EventType.VIEW)
        for step, item in enumerate(items)
    ]


class TestUserContext:
    def test_empty(self):
        context = UserContext.empty()
        assert len(context) == 0
        with pytest.raises(ValueError):
            _ = context.most_recent_item

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            UserContext((1, 2), (EventType.VIEW,))

    def test_extended_appends_and_truncates(self):
        context = UserContext.empty()
        for item in range(5):
            context = context.extended(item, EventType.VIEW, max_context=3)
        assert context.item_indices == (2, 3, 4)
        assert context.most_recent_item == 4

    def test_truncated_noop_when_short(self):
        context = UserContext((1,), (EventType.CART,))
        assert context.truncated(10) is context

    def test_from_pairs(self):
        context = UserContext.from_pairs(
            [(EventType.VIEW, 5), (EventType.CART, 6)]
        )
        assert context.item_indices == (5, 6)
        assert context.events == (EventType.VIEW, EventType.CART)


class TestContextWindows:
    def test_paper_figure2_shape(self):
        """Fig. 2: after (a, b) the positive at t2 is c, then (a,b,c) -> d."""
        windows = list(context_windows(history(0, 1, 2, 3)))
        contexts = [w[0].item_indices for w in windows]
        positives = [w[1].item_index for w in windows]
        assert contexts == [(0,), (0, 1), (0, 1, 2)]
        assert positives == [1, 2, 3]

    def test_first_action_only_seeds_context(self):
        windows = list(context_windows(history(9, 8)))
        assert len(windows) == 1
        assert windows[0][0].item_indices == (9,)

    def test_max_context_truncation(self):
        windows = list(context_windows(history(*range(10)), max_context=3))
        last_context = windows[-1][0]
        assert last_context.item_indices == (6, 7, 8)

    def test_empty_history(self):
        assert list(context_windows([])) == []

    def test_single_event_history_yields_nothing(self):
        assert list(context_windows(history(4))) == []


class TestHistories:
    def test_build_user_histories_groups_and_orders(self):
        log = [
            Interaction(2.0, 1, 10, EventType.VIEW),
            Interaction(1.0, 2, 11, EventType.VIEW),
            Interaction(1.0, 1, 12, EventType.VIEW),
        ]
        histories = build_user_histories(log)
        assert set(histories) == {1, 2}
        assert [it.item_index for it in histories[1]] == [12, 10]

    def test_all_context_windows_deterministic_user_order(self):
        log = [
            Interaction(0.0, 2, 1, EventType.VIEW),
            Interaction(1.0, 2, 2, EventType.VIEW),
            Interaction(0.0, 1, 3, EventType.VIEW),
            Interaction(1.0, 1, 4, EventType.VIEW),
        ]
        rows = list(all_context_windows(build_user_histories(log)))
        assert [user for user, _, _ in rows] == [1, 2]

    def test_final_context(self):
        context = final_context(history(1, 2, 3), max_context=2)
        assert context.item_indices == (2, 3)


@settings(max_examples=30, deadline=None)
@given(
    items=st.lists(st.integers(min_value=0, max_value=50), min_size=0, max_size=30),
    max_context=st.integers(min_value=1, max_value=10),
)
def test_property_windows_reconstruct_history(items, max_context):
    """Each window's context is exactly the (truncated) prefix before its
    positive, and window count is len(history) - 1 for non-trivial logs."""
    h = history(*items)
    windows = list(context_windows(h, max_context=max_context))
    assert len(windows) == max(0, len(items) - 1)
    for position, (context, positive) in enumerate(windows):
        prefix = tuple(items[: position + 1])[-max_context:]
        assert context.item_indices == prefix
        assert positive.item_index == items[position + 1]
