"""Tests for time-interval checkpointing and keep-latest GC."""

from __future__ import annotations

import pytest

from repro.core.checkpoint import CheckpointManager
from repro.exceptions import CheckpointError


class TestCheckpointManager:
    def test_interval_gating(self, fresh_model):
        manager = CheckpointManager(interval_seconds=100.0)
        assert manager.maybe_checkpoint("k", fresh_model, now=0.0, epoch=0)
        assert not manager.maybe_checkpoint("k", fresh_model, now=50.0, epoch=1)
        assert manager.maybe_checkpoint("k", fresh_model, now=100.0, epoch=2)
        assert manager.writes == 2

    def test_restore_roundtrip(self, fresh_model):
        manager = CheckpointManager()
        fresh_model.item_bias[0] = 7.0
        manager.write("k", fresh_model, now=0.0, epoch=3)
        fresh_model.item_bias[0] = -1.0
        epoch = manager.restore("k", fresh_model)
        assert epoch == 3
        assert fresh_model.item_bias[0] == 7.0
        assert manager.restores == 1

    def test_checkpoint_is_snapshot_not_reference(self, fresh_model):
        manager = CheckpointManager()
        manager.write("k", fresh_model, now=0.0, epoch=0)
        fresh_model.item_bias[0] = 123.0
        manager.restore("k", fresh_model)
        assert fresh_model.item_bias[0] != 123.0

    def test_keep_latest_only(self, fresh_model):
        """Paper: as soon as a new checkpoint is written, GC the previous."""
        manager = CheckpointManager(interval_seconds=1.0)
        manager.write("k", fresh_model, now=0.0, epoch=0)
        manager.write("k", fresh_model, now=10.0, epoch=5)
        assert manager.stored_count == 1
        assert manager.garbage_collected == 1
        assert manager.restore("k", fresh_model) == 5

    def test_restore_missing_raises(self, fresh_model):
        with pytest.raises(CheckpointError):
            CheckpointManager().restore("nope", fresh_model)

    def test_discard(self, fresh_model):
        manager = CheckpointManager()
        manager.write("k", fresh_model, now=0.0, epoch=0)
        manager.discard("k")
        assert not manager.has_checkpoint("k")
        manager.discard("k")  # idempotent

    def test_checkpoint_age(self, fresh_model):
        manager = CheckpointManager()
        assert manager.checkpoint_age("k", now=50.0) is None
        manager.write("k", fresh_model, now=10.0, epoch=0)
        assert manager.checkpoint_age("k", now=50.0) == pytest.approx(40.0)

    def test_keys_independent(self, fresh_model):
        manager = CheckpointManager(interval_seconds=100.0)
        assert manager.maybe_checkpoint("a", fresh_model, now=0.0, epoch=0)
        assert manager.maybe_checkpoint("b", fresh_model, now=1.0, epoch=0)
        assert manager.stored_count == 2

    def test_invalid_interval(self):
        with pytest.raises(CheckpointError):
            CheckpointManager(interval_seconds=0.0)
