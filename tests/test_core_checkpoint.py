"""Tests for durable time-interval checkpointing and keep-latest GC."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.checkpoint import (
    CheckpointFaultPlan,
    CheckpointManager,
    FilesystemCheckpointStorage,
    InMemoryCheckpointStorage,
)
from repro.exceptions import CheckpointCorruptionError, CheckpointError


class TestCheckpointManager:
    def test_interval_gating(self, fresh_model):
        manager = CheckpointManager(interval_seconds=100.0)
        assert manager.maybe_checkpoint("k", fresh_model, now=0.0, epoch=0)
        assert not manager.maybe_checkpoint("k", fresh_model, now=50.0, epoch=1)
        assert manager.maybe_checkpoint("k", fresh_model, now=100.0, epoch=2)
        assert manager.writes == 2

    def test_restore_roundtrip(self, fresh_model):
        manager = CheckpointManager()
        fresh_model.item_bias[0] = 7.0
        manager.write("k", fresh_model, now=0.0, epoch=3)
        fresh_model.item_bias[0] = -1.0
        epoch = manager.restore("k", fresh_model)
        assert epoch == 3
        assert fresh_model.item_bias[0] == 7.0
        assert manager.restores == 1

    def test_checkpoint_is_snapshot_not_reference(self, fresh_model):
        manager = CheckpointManager()
        manager.write("k", fresh_model, now=0.0, epoch=0)
        fresh_model.item_bias[0] = 123.0
        manager.restore("k", fresh_model)
        assert fresh_model.item_bias[0] != 123.0

    def test_keep_latest_only(self, fresh_model):
        """Paper: as soon as a new checkpoint is written, GC the previous."""
        manager = CheckpointManager(interval_seconds=1.0)
        manager.write("k", fresh_model, now=0.0, epoch=0)
        manager.write("k", fresh_model, now=10.0, epoch=5)
        assert manager.stored_count == 1
        assert manager.garbage_collected == 1
        assert manager.restore("k", fresh_model) == 5

    def test_restore_missing_raises(self, fresh_model):
        with pytest.raises(CheckpointError):
            CheckpointManager().restore("nope", fresh_model)

    def test_discard(self, fresh_model):
        manager = CheckpointManager()
        manager.write("k", fresh_model, now=0.0, epoch=0)
        manager.discard("k")
        assert not manager.has_checkpoint("k")
        manager.discard("k")  # idempotent

    def test_checkpoint_age(self, fresh_model):
        manager = CheckpointManager()
        assert manager.checkpoint_age("k", now=50.0) is None
        manager.write("k", fresh_model, now=10.0, epoch=0)
        assert manager.checkpoint_age("k", now=50.0) == pytest.approx(40.0)

    def test_keys_independent(self, fresh_model):
        manager = CheckpointManager(interval_seconds=100.0)
        assert manager.maybe_checkpoint("a", fresh_model, now=0.0, epoch=0)
        assert manager.maybe_checkpoint("b", fresh_model, now=1.0, epoch=0)
        assert manager.stored_count == 2

    def test_invalid_interval(self):
        with pytest.raises(CheckpointError):
            CheckpointManager(interval_seconds=0.0)

    def test_first_maybe_checkpoint_always_writes(self, fresh_model):
        """The interval clock starts ticking only once a checkpoint exists:
        the first call protects the task immediately."""
        manager = CheckpointManager(interval_seconds=1e9)
        assert manager.maybe_checkpoint("k", fresh_model, now=5.0, epoch=0)
        assert manager.writes == 1
        assert not manager.maybe_checkpoint("k", fresh_model, now=6.0, epoch=1)

    def test_discard_resets_interval_clock(self, fresh_model):
        """A re-issued key checkpoints promptly instead of inheriting the
        previous task's 'recently written' timestamp."""
        manager = CheckpointManager(interval_seconds=100.0)
        manager.write("k", fresh_model, now=50.0, epoch=3)
        manager.discard("k")
        # Well inside the old interval, yet the write happens immediately.
        assert manager.maybe_checkpoint("k", fresh_model, now=60.0, epoch=0)

    def test_try_restore_resets_interval_clock(self, fresh_model):
        """A resumed task re-checkpoints promptly: the pre-crash timestamp
        may be far in the resumed run's simulated future."""
        manager = CheckpointManager(interval_seconds=100.0)
        manager.write("k", fresh_model, now=500.0, epoch=2)
        assert manager.try_restore("k", fresh_model) == 2
        assert manager.maybe_checkpoint("k", fresh_model, now=0.0, epoch=3)


class TestRestoreAliasing:
    def test_training_past_restore_does_not_mutate_checkpoint(self, fresh_model):
        """The stored artifact is a byte string: a restored model can never
        alias it, so training past a restore re-restores byte-identically."""
        manager = CheckpointManager()
        fresh_model.item_bias[:] = 1.5
        snapshot = {k: v.copy() for k, v in fresh_model.get_state().items()}
        manager.write("k", fresh_model, now=0.0, epoch=4)

        # "Continue training" after a restore: in-place mutation of every
        # parameter the restore handed back.
        manager.restore("k", fresh_model)
        for array in fresh_model.get_state().values():
            array += 123.0

        assert manager.restore("k", fresh_model) == 4
        for name, array in fresh_model.get_state().items():
            np.testing.assert_array_equal(array, snapshot[name])

    def test_stored_blob_is_stable_across_restores(self, fresh_model):
        manager = CheckpointManager()
        manager.write("k", fresh_model, now=0.0, epoch=0)
        before = manager.storage.get("k")
        manager.restore("k", fresh_model)
        fresh_model.item_bias += 9.0
        manager.restore("k", fresh_model)
        assert manager.storage.get("k") == before


class TestStorageBackends:
    def test_in_memory_is_default(self):
        assert isinstance(CheckpointManager().storage, InMemoryCheckpointStorage)

    def test_filesystem_roundtrip(self, tmp_path, fresh_model):
        storage = FilesystemCheckpointStorage(str(tmp_path / "ckpts"))
        manager = CheckpointManager(storage=storage)
        fresh_model.item_bias[0] = 42.0
        manager.write("day0/retailer_1/m3", fresh_model, now=0.0, epoch=7)
        fresh_model.item_bias[0] = 0.0
        assert manager.restore("day0/retailer_1/m3", fresh_model) == 7
        assert fresh_model.item_bias[0] == 42.0
        # Slashed keys survive the path encoding round trip.
        assert storage.keys() == ["day0/retailer_1/m3"]

    def test_filesystem_delete_and_gc(self, tmp_path, fresh_model):
        storage = FilesystemCheckpointStorage(str(tmp_path))
        manager = CheckpointManager(storage=storage)
        manager.write("k", fresh_model, now=0.0, epoch=0)
        manager.write("k", fresh_model, now=10.0, epoch=1)
        assert manager.garbage_collected == 1
        assert manager.stored_count == 1
        manager.discard("k")
        assert storage.keys() == []

    def test_filesystem_atomicity_leaves_no_temp_files(self, tmp_path, fresh_model):
        root = tmp_path / "ckpts"
        storage = FilesystemCheckpointStorage(str(root))
        manager = CheckpointManager(storage=storage)
        for epoch in range(3):
            manager.write("k", fresh_model, now=float(epoch), epoch=epoch)
        leftovers = [p for p in root.iterdir() if p.suffix != ".ckpt"]
        assert leftovers == []


class TestFaultInjection:
    def test_torn_write_detected_on_restore(self, fresh_model):
        plan = CheckpointFaultPlan().torn_write()
        manager = CheckpointManager(fault_plan=plan)
        manager.write("k", fresh_model, now=0.0, epoch=0)
        with pytest.raises(CheckpointCorruptionError):
            manager.restore("k", fresh_model)
        assert manager.stats.corruptions_detected == 1
        assert manager.stats.corrupt_keys == ["k"]
        # The useless blob was deleted so the next writer starts clean.
        assert not manager.has_checkpoint("k")

    def test_bit_flip_detected_on_restore(self, fresh_model):
        plan = CheckpointFaultPlan().bit_flip(times=1)
        manager = CheckpointManager(fault_plan=plan)
        manager.write("k", fresh_model, now=0.0, epoch=0)
        with pytest.raises(CheckpointCorruptionError, match="checksum"):
            manager.restore("k", fresh_model)

    def test_drop_means_no_checkpoint(self, fresh_model):
        plan = CheckpointFaultPlan().drop()
        manager = CheckpointManager(fault_plan=plan)
        manager.write("k", fresh_model, now=0.0, epoch=0)
        assert not manager.has_checkpoint("k")
        with pytest.raises(CheckpointError):
            manager.restore("k", fresh_model)

    def test_corrupt_restore_leaves_model_untouched(self, fresh_model):
        plan = CheckpointFaultPlan().bit_flip()
        manager = CheckpointManager(fault_plan=plan)
        fresh_model.item_bias[0] = 3.0
        manager.write("k", fresh_model, now=0.0, epoch=0)
        fresh_model.item_bias[0] = -8.0
        with pytest.raises(CheckpointCorruptionError):
            manager.restore("k", fresh_model)
        assert fresh_model.item_bias[0] == -8.0

    def test_try_restore_cold_starts_on_corruption(self, fresh_model):
        plan = CheckpointFaultPlan().torn_write()
        manager = CheckpointManager(fault_plan=plan)
        manager.write("k", fresh_model, now=0.0, epoch=0)
        assert manager.try_restore("k", fresh_model) is None
        assert manager.stats.cold_starts == 1
        assert manager.stats.corruptions_detected == 1

    def test_try_restore_cold_starts_on_missing(self, fresh_model):
        manager = CheckpointManager()
        assert manager.try_restore("absent", fresh_model) is None
        assert manager.stats.cold_starts == 1

    def test_fault_rules_match_and_disarm(self, fresh_model):
        plan = CheckpointFaultPlan().bit_flip(
            match=lambda key: key.startswith("bad/"), times=1
        )
        manager = CheckpointManager(fault_plan=plan)
        manager.write("good/k", fresh_model, now=0.0, epoch=0)
        manager.write("bad/k", fresh_model, now=0.0, epoch=0)
        manager.write("bad/k2", fresh_model, now=0.0, epoch=0)
        assert manager.restore("good/k", fresh_model) == 0
        with pytest.raises(CheckpointCorruptionError):
            manager.restore("bad/k", fresh_model)
        # times=1: the second matching write was stored intact.
        assert manager.restore("bad/k2", fresh_model) == 0

    def test_faults_on_filesystem_backend(self, tmp_path, fresh_model):
        """Corruption detection is backend-independent."""
        storage = FilesystemCheckpointStorage(str(tmp_path))
        manager = CheckpointManager(
            storage=storage, fault_plan=CheckpointFaultPlan().torn_write()
        )
        manager.write("k", fresh_model, now=0.0, epoch=0)
        assert manager.try_restore("k", fresh_model) is None
        assert manager.stats.cold_starts == 1
